"""Utilization-driven replica scaling for the serving fabric.

The policy is deliberately boring — hysteresis thresholds plus a
cooldown — because the point of this layer is determinism, not
cleverness: the decision at every heartbeat is a pure function of the
replica states and loads at that tick, so an MMPP burst schedule maps to
exactly one scale-event schedule per seed.

* **utilization** = total in-flight over active replicas / their total
  worker slots (queue depth excluded: queued work is *pressure*, and
  counting it would double-trigger);
* utilization > ``high_water`` for one tick → wake the lowest-id
  ``standby`` replica (state transfer takes ``scale_delay`` simulated
  seconds before it turns ``active``);
* utilization < ``low_water`` → drain the highest-id ``active`` replica
  (never below ``min_replicas``); it finishes its in-flight queries and
  parks ``standby``;
* ``cooldown_ticks`` heartbeats must pass between decisions, so one
  burst edge produces one decision, not a flap per tick.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fabric.replica import ACTIVE, STANDBY

__all__ = ["ElasticEvent", "ElasticPolicy"]


@dataclass(frozen=True)
class ElasticEvent:
    """One scaling decision, for the report's audit trail."""

    at: float
    action: str  #: ``"scale_up"`` | ``"scale_down"``
    replica: int
    utilization: float


class ElasticPolicy:
    """Hysteresis + cooldown scaling over a replica set."""

    def __init__(
        self,
        *,
        min_replicas: int = 1,
        high_water: float = 0.8,
        low_water: float = 0.2,
        cooldown_ticks: int = 2,
        scale_delay: float = 0.02,
    ) -> None:
        if not 0.0 <= low_water < high_water <= 1.0:
            raise ValueError("need 0 <= low_water < high_water <= 1")
        if min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        self.min_replicas = min_replicas
        self.high_water = high_water
        self.low_water = low_water
        self.cooldown_ticks = cooldown_ticks
        self.scale_delay = scale_delay
        self._since_decision = cooldown_ticks  # allow a first-tick decision

    @staticmethod
    def utilization(replicas: dict, t: float) -> float:
        """Worker-slot utilization over active replicas at ``t``."""
        slots = 0
        busy = 0
        for rid in sorted(replicas):
            replica = replicas[rid]
            if replica.state == ACTIVE:
                slots += replica.workers
                busy += min(replica.load_at(t), replica.workers)
        return busy / slots if slots else 1.0

    def decide(self, replicas: dict, t: float) -> tuple[str, int] | None:
        """The decision for the heartbeat at ``t`` (``None`` = hold).

        Returns ``("scale_up", standby_id)`` or ``("scale_down",
        active_id)``.  The caller performs the transition; this method
        only picks it (and restarts the cooldown when it does).
        """
        self._since_decision += 1
        if self._since_decision <= self.cooldown_ticks:
            return None
        util = self.utilization(replicas, t)
        active = sorted(
            rid for rid, r in replicas.items() if r.state == ACTIVE
        )
        if util > self.high_water:
            standby = sorted(
                rid for rid, r in replicas.items() if r.state == STANDBY
            )
            if standby:
                self._since_decision = 0
                return ("scale_up", standby[0])
        elif util < self.low_water and len(active) > self.min_replicas:
            self._since_decision = 0
            return ("scale_down", active[-1])
        return None
