"""The serving fabric: replicated, sharded KSP serving that survives kills.

``repro.fabric`` composes the layers the previous milestones built —
deadline-aware :class:`~repro.serve.QueryServer` replicas (PR 4/7), the
BSP-accounted :class:`~repro.distributed.comm.SimComm` substrate with
seeded :class:`~repro.distributed.comm.FaultPlan` kills and the
checksummed :class:`~repro.distributed.checkpoint.CheckpointStore`
(PR 5), virtual-clock load generation (PR 8) and versioned live graphs
(PR 9) — into one coordination layer:

* :class:`~repro.fabric.ring.HashRing` /
  :class:`~repro.fabric.router.Router` — consistent-hash query placement
  with the bounded-load variant, so hot shards spill deterministically;
* :class:`~repro.fabric.replica.Replica` — one server plus its station
  bookkeeping and serving-state machine;
* :class:`~repro.fabric.supervisor.FabricSupervisor` — per-shard
  checkpoint/restore over the CRC-verified store;
* :class:`~repro.fabric.elastic.ElasticPolicy` — utilization-driven
  scale up/down under bursty (MMPP) load;
* :class:`~repro.fabric.fabric.ServingFabric` — the deterministic event
  loop tying heartbeats, kills, hedged retries, recoveries, mutations
  and queries onto one simulated timeline.

Everything is a pure function of the seeds: two runs of the same
configuration produce byte-identical reports (the CI ``fabric-faults``
job asserts this with ``cmp``).  See ``docs/fabric.md`` for the topology
and the recovery timeline.
"""

from repro.fabric.elastic import ElasticEvent, ElasticPolicy
from repro.fabric.fabric import (
    FabricConfig,
    FabricReport,
    KillRecord,
    ServingFabric,
    report_row,
    slo_text,
)
from repro.fabric.replica import REPLICA_STATES, Replica
from repro.fabric.ring import HashRing
from repro.fabric.router import Router, ShardMap
from repro.fabric.supervisor import FabricSupervisor

__all__ = [
    "HashRing",
    "ShardMap",
    "Router",
    "Replica",
    "REPLICA_STATES",
    "FabricSupervisor",
    "ElasticPolicy",
    "ElasticEvent",
    "FabricConfig",
    "KillRecord",
    "FabricReport",
    "ServingFabric",
    "report_row",
    "slo_text",
]
