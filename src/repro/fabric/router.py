"""Shard-aware query placement with consistent hashing and bounded load.

``ShardMap`` reuses the distributed layer's edge-balanced 1-D
:class:`~repro.distributed.partition.RowPartition` to assign every
vertex to a *shard*; a query belongs to the shard of its source vertex.
``Router`` then places the shard on a replica by walking the shard's
:class:`~repro.fabric.ring.HashRing` preference list under the
**bounded-load** rule (Mirrokni–Thorup–Zadimoghaddam, "consistent
hashing with bounded loads"): a replica may take the query only while
its in-flight count is below

    cap = ceil(load_factor · (total_in_flight + 1) / routable_replicas)

so a hot shard *spills* down its preference list — deterministically,
because the list, the loads, and the walk order are all pure functions
of the run's seeds — instead of melting its home replica while the rest
idle.  A second pass under each replica's hard capacity (workers +
queue depth) is the router-level admission control: when that fails too
the query is shed at the router, before any replica burns work on it.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributed.partition import RowPartition
from repro.fabric.ring import HashRing

__all__ = ["ShardMap", "Router"]


class ShardMap:
    """Vertex → shard assignment (an edge-balanced ``RowPartition``)."""

    def __init__(self, graph, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.partition = RowPartition.build(graph, num_shards)

    def shard_of(self, vertex: int) -> int:
        return int(
            self.partition.owner_of(np.asarray([vertex], dtype=np.int64))[0]
        )

    def shard_range(self, shard: int) -> tuple[int, int]:
        """The vertex range ``[lo, hi)`` shard ``shard`` covers."""
        return self.partition.local_range(shard)

    def shards_touching(self, vertices) -> list[int]:
        """Sorted shard ids owning any of ``vertices`` (mutation routing)."""
        vs = np.asarray(vertices, dtype=np.int64)
        if vs.size == 0:
            return []
        return sorted(set(self.partition.owner_of(vs).tolist()))


class Router:
    """Bounded-load consistent-hash placement over live replicas."""

    def __init__(
        self,
        ring: HashRing,
        replicas: dict,
        *,
        load_factor: float = 1.25,
    ) -> None:
        if load_factor < 1.0:
            raise ValueError("load_factor must be >= 1 (1 = perfectly even)")
        self.ring = ring
        #: replica id -> :class:`~repro.fabric.replica.Replica`
        self.replicas = replicas
        self.load_factor = load_factor
        #: placements that spilled past the shard's home replica
        self.spills = 0
        #: placements refused (router-level admission control)
        self.rejected = 0
        #: preference lists are static per ring membership — cache them
        self._pref: dict[int, list[int]] = {}

    def preference(self, shard: int) -> list[int]:
        pref = self._pref.get(shard)
        if pref is None:
            pref = self.ring.preference(f"shard{shard}")
            self._pref[shard] = pref
        return pref

    def place(self, shard: int, t: float) -> int | None:
        """Pick the replica to serve a ``shard`` query arriving at ``t``.

        Returns the replica id, or ``None`` to shed.  Walks the shard's
        preference list twice: first under the bounded-load cap (even
        spread, deterministic spill), then under hard capacity only (a
        loaded fabric still prefers queueing near home over shedding).
        """
        routable = [
            r for rid in self.preference(shard)
            if (r := self.replicas[rid]).routable
        ]
        if not routable:
            self.rejected += 1
            return None
        loads = [r.load_at(t) for r in routable]
        total = sum(loads)
        cap = math.ceil(self.load_factor * (total + 1) / len(routable))
        for pos, (replica, load) in enumerate(zip(routable, loads)):
            if load < min(cap, replica.slots):
                if pos > 0:
                    self.spills += 1
                return replica.id
        for pos, (replica, load) in enumerate(zip(routable, loads)):
            if load < replica.slots:
                if pos > 0:
                    self.spills += 1
                return replica.id
        self.rejected += 1
        return None
