"""One fabric replica: a ``QueryServer`` plus its serving-state machine.

A *replica* is the unit of serving failure — it owns one full graph copy
(every shard; the tiny-suite graphs fit in memory, so sharding buys
cache affinity and mutation routing rather than capacity), one
:class:`~repro.serve.QueryServer`, and the per-replica station
bookkeeping the router's bounded-load rule consults.  Contrast a *rank*,
the unit of BSP computation inside one distributed solve — the fabric
maps replica ``i`` onto rank ``i`` of its own
:class:`~repro.distributed.comm.SimComm`, but the two namespaces stay
distinct in the fault grammar (``@RANK`` vs ``@R<N>``; see
``docs/parallel_model.md``).

States::

    standby ──scale up──▶ recovering ──ready──▶ active
       ▲                                          │  ▲
       │  drained                        scale    │  │   restore +
       └───────────── draining ◀──down────┘  kill │  │   replay done
                                                  ▼  │
                                                 dead

Only ``active`` replicas take new placements; ``draining`` finishes its
in-flight queries; ``dead`` replicas had their in-flight hedged away.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.serve.query import Query
from repro.serve.server import QueryServer, ServeResult

__all__ = ["ACTIVE", "DRAINING", "DEAD", "RECOVERING", "STANDBY",
           "REPLICA_STATES", "Flight", "Replica"]

ACTIVE = "active"
DRAINING = "draining"
DEAD = "dead"
RECOVERING = "recovering"
STANDBY = "standby"

REPLICA_STATES = (ACTIVE, DRAINING, DEAD, RECOVERING, STANDBY)


@dataclass
class Flight:
    """One in-flight query on one replica.

    The simulation serves eagerly (the result is computed at dispatch),
    but the *response instant* is ``finish`` — a kill observed before
    ``finish`` means the client never saw this result, so it is discarded
    and the query hedged to a survivor.
    """

    query: Query
    replica: int
    issued_at: float
    start: float
    finish: float
    result: ServeResult
    hedges: int = 0


class Replica:
    """Station bookkeeping + state machine around one ``QueryServer``."""

    def __init__(
        self,
        replica_id: int,
        server: QueryServer | None,
        *,
        queue_depth: int = 0,
        state: str = STANDBY,
    ) -> None:
        if state not in REPLICA_STATES:
            raise ValueError(f"unknown replica state {state!r}")
        self.id = replica_id
        self.server = server
        self.queue_depth = queue_depth
        self.state = state
        self.workers = server.max_in_flight if server is not None else 0
        #: next-free instant per worker slot (a heap)
        self.worker_free: list[float] = [0.0] * self.workers
        #: in-flight queries keyed by request id
        self.inflight: dict[str, Flight] = {}
        #: completion instants of in-flight queries (a heap of
        #: (finish, request_id) so pruning stays deterministic)
        self._outstanding: list[tuple[float, str]] = []
        #: committed (client-visible) responses across the replica's life
        self.served = 0

    # -- capacity -------------------------------------------------------
    @property
    def slots(self) -> int:
        """Hard capacity: workers plus wait-queue depth."""
        return self.workers + self.queue_depth

    @property
    def routable(self) -> bool:
        return self.state == ACTIVE and self.server is not None

    def commit_until(self, t: float) -> list[Flight]:
        """Retire flights whose response instant has passed; returns them."""
        done: list[Flight] = []
        while self._outstanding and self._outstanding[0][0] <= t:
            _, rid = heapq.heappop(self._outstanding)
            flight = self.inflight.pop(rid, None)
            if flight is not None:
                done.append(flight)
                self.served += 1
        return done

    def load_at(self, t: float) -> int:
        """In-flight count at ``t`` (the bounded-load rule's input)."""
        self.commit_until(t)
        return len(self.inflight)

    def next_start(self, t: float) -> float:
        """Earliest instant a worker slot frees for an arrival at ``t``."""
        return max(t, self.worker_free[0]) if self.worker_free else t

    def occupy(self, flight: Flight) -> None:
        """Record a dispatched flight (caller already ran the server)."""
        heapq.heapreplace(self.worker_free, flight.finish)
        heapq.heappush(self._outstanding, (flight.finish, flight.query.request_id))
        self.inflight[flight.query.request_id] = flight

    # -- lifecycle ------------------------------------------------------
    def lose_inflight(self) -> list[Flight]:
        """Take every uncommitted flight (the kill path); empties the set.

        Returned in request-id order so the hedging loop is deterministic.
        """
        lost = [self.inflight[rid] for rid in sorted(self.inflight)]
        self.inflight.clear()
        self._outstanding.clear()
        return lost

    def reset(self, server: QueryServer, *, at: float, state: str = ACTIVE) -> None:
        """Mount a (re)built server: fresh slots, all free at ``at``."""
        self.server = server
        self.workers = server.max_in_flight
        self.worker_free = [float(at)] * self.workers
        self.inflight.clear()
        self._outstanding.clear()
        self.state = state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Replica(id={self.id}, state={self.state}, "
            f"inflight={len(self.inflight)})"
        )
