"""``peek-fabric`` — one seeded fabric run from the command line.

The CI ``fabric-faults`` job runs the same invocation twice and ``cmp``'s
the JSON outputs — byte identity is the contract::

    peek-fabric --graph LJ --replicas 3 --workload mmpp \\
        --inject "fabric.heartbeat:rankfail:3@R1" --json fabric.json

``--inject`` takes the shared fault grammar
``STAGE:KIND[:AT_HIT][@RANK | @R<N>]`` (see
:func:`repro.serve.faults.parse_fault_spec`); ``@R<N>`` targets a
*replica*.  ``--mutations`` adds a seeded incident stream so kills race
live-graph updates; ``--elastic`` enables the scaling policy.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.distributed.comm import FaultPlan
from repro.dyn.stream import IncidentStream
from repro.fabric.elastic import ElasticPolicy
from repro.fabric.fabric import FabricConfig, ServingFabric, report_row, slo_text
from repro.graph.suite import SCALES, suite_graph
from repro.load.arrivals import arrival_process
from repro.load.mixes import make_mix

__all__ = ["main", "build_parser"]

#: the "medium MMPP" workload of the acceptance criteria: bursts to 4x
#: the floor rate, mean offered load sized for a 3-replica tiny fabric
MMPP_SPEC = {
    "kind": "mmpp",
    "rate_low": 200.0,
    "rate_high": 800.0,
    "dwell_low": 0.15,
    "dwell_high": 0.05,
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="peek-fabric",
        description="Replicated, sharded KSP serving with seeded kills.",
    )
    p.add_argument("--graph", default="LJ", help="suite graph name")
    p.add_argument("--scale", default="tiny", choices=SCALES)
    p.add_argument("--replicas", type=int, default=3, help="serving replicas")
    p.add_argument(
        "--max-replicas",
        type=int,
        default=None,
        help="provisioned replica slots (default: --replicas, +2 with --elastic)",
    )
    p.add_argument("--shards", type=int, default=8, help="graph shards")
    p.add_argument(
        "--workload",
        default="mmpp",
        choices=("steady", "mmpp"),
        help="steady poisson or the bursty medium-MMPP pattern",
    )
    p.add_argument("--rate", type=float, default=300.0, help="steady rate (qps)")
    p.add_argument("--horizon", type=float, default=1.0, help="simulated seconds")
    p.add_argument("--max-queries", type=int, default=2000)
    p.add_argument("--timeout", type=float, default=0.5, help="per-query budget")
    p.add_argument(
        "--inject",
        action="append",
        default=[],
        metavar="SPEC",
        help="fault spec STAGE:KIND[:AT_HIT][@RANK | @R<N>] (repeatable)",
    )
    p.add_argument(
        "--mutations",
        action="store_true",
        help="race a seeded incident stream against the queries",
    )
    p.add_argument(
        "--elastic", action="store_true", help="enable the scaling policy"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", default=None, help="write the report payload here")
    p.add_argument("--out", default=None, help="write the SLO text here")
    p.add_argument("--quiet", action="store_true", help="suppress the SLO table")
    return p


def run_from_args(args: argparse.Namespace) -> dict:
    """Build the fabric from parsed args and run it; returns the payload."""
    graph = suite_graph(args.graph, args.scale)
    # scc: every sampled pair is reachable, so availability measures the
    # fabric, not the topology's holes
    mix = make_mix(
        graph,
        {"kind": "hotspot", "scc": True, "k": {"dist": "small_heavy", "k_max": 8}},
    )
    max_replicas = args.max_replicas
    if max_replicas is None:
        max_replicas = args.replicas + (2 if args.elastic else 0)
    config = FabricConfig(
        replicas=args.replicas,
        max_replicas=max_replicas,
        min_replicas=max(1, args.replicas - 1),
        shards=args.shards,
        timeout=args.timeout,
        elastic=ElasticPolicy(min_replicas=max(1, args.replicas - 1))
        if args.elastic
        else None,
        seed=args.seed,
    )
    plan = (
        FaultPlan.from_specs(args.inject, seed=args.seed)
        if args.inject
        else None
    )
    fabric = ServingFabric(graph, mix, config=config, fault_plan=plan)
    spec = (
        dict(MMPP_SPEC)
        if args.workload == "mmpp"
        else {"kind": "poisson", "rate": args.rate}
    )
    mutations = None
    if args.mutations:
        mutations = IncidentStream(seed=args.seed, rate=40.0).batches(
            fabric.authority, args.horizon
        )
    report = fabric.run(
        arrival_process(spec),
        horizon=args.horizon,
        max_queries=args.max_queries,
        mutations=mutations,
    )
    row = report_row(args.workload + ("+kill" if args.inject else ""), report)
    return {
        "benchmark": "fabric",
        "graph": args.graph,
        "scale": args.scale,
        "seed": args.seed,
        "horizon": args.horizon,
        "workload": spec,
        "inject": list(args.inject),
        "config": {
            "replicas": args.replicas,
            "max_replicas": max_replicas,
            "shards": args.shards,
            "timeout": args.timeout,
            "heartbeat_interval": config.heartbeat_interval,
            "recovery_budget_heartbeats": config.recovery_budget_heartbeats,
            "elastic": bool(args.elastic),
        },
        "rows": [row],
    }


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # graph cloning in ServingFabric.__init__ is not query-driven; every
    # query still validates inside QueryServer.serve
    payload = run_from_args(args)  # contracts: disable=CTR501 (validated in serve)
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")
    text = slo_text(
        payload["rows"],
        title=(
            f"fabric SLO — graph={args.graph} scale={args.scale} "
            f"seed={args.seed} horizon={args.horizon}s"
        ),
    )
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
    if not args.quiet:
        print(text)
    row = payload["rows"][0]
    print(
        f"\navailability={row['availability']:.4f} kills={row['kills']} "
        f"ttr_max={row['ttr_max']} recovery_within_budget="
        f"{row['recovery_within_budget']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
