"""Consistent hashing for shard → replica placement.

The ring maps every provisioned replica to ``vnodes`` pseudo-random
positions on a 32-bit circle; a shard's *preference list* is the
sequence of distinct replicas encountered walking clockwise from the
shard's own position.  Two properties the router relies on:

* **stability** — adding or removing one replica moves only the shards
  whose preference prefix passed through that replica's vnodes, so a
  scale event does not reshuffle the whole placement (and therefore
  does not cold-start every replica's SSSP cache);
* **determinism** — positions are ``zlib.crc32`` of printable keys, not
  Python's salted ``hash()``, so the placement is identical across
  processes and runs (the byte-identity contract of every report).

The ring itself is membership-only: it never knows which replicas are
alive.  Liveness filtering and the bounded-load capacity rule live in
:class:`~repro.fabric.router.Router`, which walks the preference list.
"""

from __future__ import annotations

import bisect
import zlib

__all__ = ["HashRing"]


def _position(key: str) -> int:
    return zlib.crc32(key.encode("utf-8"))


class HashRing:
    """A consistent-hash ring over integer replica ids."""

    def __init__(self, members, *, vnodes: int = 64) -> None:
        members = sorted(set(int(m) for m in members))
        if not members:
            raise ValueError("a hash ring needs at least one member")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.members = members
        points: list[tuple[int, int]] = []
        for m in members:  # contracts: disable=CTR201 (bounded)
            for v in range(vnodes):
                points.append((_position(f"replica{m}#{v}"), m))
        # CRC collisions between vnode keys are possible in principle;
        # the member id tiebreak keeps the walk order total and stable
        points.sort()
        self._points = points
        self._positions = [p for p, _ in points]

    def __len__(self) -> int:
        return len(self.members)

    def preference(self, key: str, limit: int | None = None) -> list[int]:
        """Distinct members in clockwise order from ``key``'s position.

        The full list is a permutation of ``members``; ``limit`` truncates
        it.  This is the classic "walk the ring" successor list — entry 0
        is the shard's home replica, the rest are its spill order.
        """
        want = len(self.members) if limit is None else min(limit, len(self.members))
        start = bisect.bisect_right(self._positions, _position(key))
        seen: set[int] = set()
        order: list[int] = []
        n = len(self._points)
        for i in range(n):
            member = self._points[(start + i) % n][1]
            if member not in seen:
                seen.add(member)
                order.append(member)
                if len(order) == want:
                    break
        return order

    def owner(self, key: str) -> int:
        """The home member for ``key`` (preference entry 0)."""
        return self.preference(key, limit=1)[0]
