"""Per-shard checkpoint/restore for fabric replicas.

:class:`FabricSupervisor` specialises the distributed layer's
:class:`~repro.distributed.supervisor.DistSupervisor` for the serving
fabric: the unit of checkpointing is a *shard* (a contiguous vertex
range of the :class:`~repro.fabric.router.ShardMap`'s partition) of the
fabric's authoritative :class:`~repro.dyn.live.LiveGraph`, not a rank's
algorithm-state slice.  Each shard's payload is its CSR rows (row
pointer slice, targets, weights), its vertex-liveness slice, and the
graph version — everything needed to reassemble a bitwise-identical
snapshot.  Payloads live in the same CRC32-checksummed
:class:`~repro.distributed.checkpoint.CheckpointStore` (keyed by shard
id in the store's rank slot), so a corrupted checkpoint surfaces as a
:class:`~repro.errors.SanitizerError` at restore rather than silently
rebuilding a replica from garbage; checkpoint bytes and recovery time
are charged through the communicator's BSP model exactly like the
distributed solvers charge theirs.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.distributed.supervisor import DistSupervisor
from repro.errors import SanitizerError
from repro.graph.csr import CSRGraph
from repro.obs.tracer import get_tracer

__all__ = ["FabricSupervisor"]


class FabricSupervisor(DistSupervisor):
    """Checkpoint/restore of the authoritative graph, one shard per slot."""

    def __init__(self, comm, shard_map, *, store=None, max_recoveries: int = 8):
        super().__init__(
            comm,
            policy="restart",
            checkpoint_interval=1,
            max_recoveries=max_recoveries,
            store=store,
        )
        self.shard_map = shard_map

    # ------------------------------------------------------------------
    def save_shards(self, live) -> list[int]:
        """Coordinated snapshot of ``live`` (the authority), per shard.

        Returns per-shard payload sizes; the write is charged through
        :meth:`SimComm.charge_checkpoint
        <repro.distributed.comm.SimComm.charge_checkpoint>` so the BSP
        accounting sees it.
        """
        graph = live.graph
        alive = live.alive
        version = live.version
        indptr = graph.indptr
        shard_bytes: list[int] = []
        for shard in range(self.shard_map.num_shards):
            lo, hi = self.shard_map.shard_range(shard)
            e_lo, e_hi = int(indptr[lo]), int(indptr[hi])
            payload = pickle.dumps(
                {
                    "version": version,
                    "range": (lo, hi),
                    "indptr": indptr[lo : hi + 1].copy(),
                    "indices": graph.indices[e_lo:e_hi].copy(),
                    "weights": graph.weights[e_lo:e_hi].copy(),
                    "alive": alive[lo:hi].copy(),
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            shard_bytes.append(self.store.save_rank(version, shard, payload))
        self.comm.charge_checkpoint(shard_bytes)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add("fabric.checkpoints")
        return shard_bytes

    def restore_shards(self) -> tuple[CSRGraph, np.ndarray, int]:
        """Reassemble the checkpointed graph: ``(csr, alive, version)``.

        Every shard's CRC is verified by the store on load; a version
        skew between shards (a torn, non-coordinated snapshot) raises
        :class:`~repro.errors.SanitizerError` — restarting a replica from
        a frankengraph is the failure mode this check exists for.
        """
        parts = [
            pickle.loads(self.store.load_rank(shard))
            for shard in range(self.shard_map.num_shards)
        ]
        versions = {p["version"] for p in parts}
        if len(versions) != 1:
            raise SanitizerError(
                f"torn fabric checkpoint: shard versions {sorted(versions)} "
                "disagree (coordinated snapshots must share one version)"
            )
        degrees = [np.diff(p["indptr"]) for p in parts]
        indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64)]
            + [d.astype(np.int64) for d in degrees]
        ).cumsum()
        csr = CSRGraph(
            indptr,
            np.concatenate([p["indices"] for p in parts]),
            np.concatenate([p["weights"] for p in parts]),
        )
        alive = np.concatenate([p["alive"] for p in parts])
        return csr, alive, versions.pop()

    def checkpoint_bytes(self) -> list[int]:
        """Per-shard payload sizes of the latest snapshot."""
        return self.store.rank_bytes()
