"""``ServingFabric`` — the deterministic replicated-serving event loop.

One fabric run interleaves five event streams on a single simulated
timeline, in a fixed priority order at equal instants (recoveries →
heartbeats → mutations → query arrivals):

* **queries** — open-loop arrivals (or a replayed trace) routed by
  shard through the bounded-load consistent-hash
  :class:`~repro.fabric.router.Router` and served *eagerly* on the
  shared :class:`~repro.load.simclock.SimClock` (the same
  jump-and-advance discipline as :class:`~repro.load.harness.
  LoadHarness`, so a one-replica fabric reproduces the single-server
  harness exactly);
* **heartbeats** — every ``heartbeat_interval`` simulated seconds the
  fabric's :class:`~repro.distributed.comm.SimComm` runs a barrier
  (stage ``fabric.heartbeat``); a seeded
  :class:`~repro.distributed.comm.FaultPlan` kill surfaces here as
  :class:`~repro.errors.RankFailure`, exactly like the distributed
  solvers observe node loss;
* **kills** — the dead replica is drained: responses already delivered
  stand, uncommitted flights are *hedged* — re-dispatched to a
  surviving replica under the query's original deadline (wait burns
  budget, so a hedge can still expire honestly);
* **recoveries** — :class:`~repro.fabric.supervisor.FabricSupervisor`
  restores the shard snapshots from the CRC-checked store, the replica
  replays the mutation batches it missed, its rebuilt state is verified
  byte-equal to the authority, and it rejoins the ring (time-to-recovery
  is deterministic: restore latency + bytes + per-batch replay);
* **mutations** — each :class:`~repro.dyn.stream.MutationBatch` is
  applied to the authoritative :class:`~repro.dyn.live.LiveGraph` and
  broadcast (stage ``fabric.mutate``) to every serving replica holding a
  touched shard — under full replication that is every ``active`` /
  ``draining`` replica; dead or recovering replicas catch up from the
  batch log during recovery.

Everything downstream of the seeds is deterministic, so a fabric
report — availability, latency percentiles under failure, disposition
counts, time-to-recovery per kill — is reproducible byte-for-byte.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from random import Random
from typing import Any, Iterable, Iterator

import numpy as np

from repro.distributed.comm import CommModel, FaultPlan, SimComm
from repro.dyn.live import LiveGraph
from repro.dyn.terrace import TerraceGraph
from repro.errors import RankFailure, SanitizerError
from repro.fabric.elastic import ElasticEvent, ElasticPolicy
from repro.fabric.replica import (
    ACTIVE,
    DEAD,
    DRAINING,
    RECOVERING,
    STANDBY,
    Flight,
    Replica,
)
from repro.fabric.ring import HashRing
from repro.fabric.router import Router, ShardMap
from repro.fabric.supervisor import FabricSupervisor
from repro.load.arrivals import ArrivalProcess, ClosedLoop
from repro.load.harness import (
    EXPIRED,
    MIX_STREAM_OFFSET,
    SHED,
    LoadReport,
    QueryLog,
    disposition_summary,
)
from repro.load.simclock import CostModel, SimClock, virtual_time
from repro.obs.tracer import get_tracer
from repro.serve.query import Query
from repro.serve.server import QueryServer, RetryPolicy

__all__ = [
    "FabricConfig",
    "KillRecord",
    "FabricReport",
    "ServingFabric",
    "report_row",
    "slo_text",
]


@dataclass(frozen=True)
class FabricConfig:
    """Everything one fabric needs besides the graph and the traffic."""

    #: replicas serving at t=0
    replicas: int = 3
    #: provisioned replica slots (ring membership; extras start standby)
    max_replicas: int | None = None
    #: elastic floor
    min_replicas: int = 1
    #: shard count (vertex ranges of the RowPartition)
    shards: int = 8
    #: per-query client budget (anchored at arrival; wait burns it)
    timeout: float | None = 0.5
    #: worker slots per replica
    max_in_flight: int = 4
    #: per-replica wait-queue depth
    queue_depth: int = 4
    tier1_budget_fraction: float | None = None
    kernel: str = "delta"
    cache_size: int = 64
    sanitize: bool | None = None
    #: bounded-load factor c (1 = perfectly even; Google's canonical 1.25)
    load_factor: float = 1.25
    #: simulated seconds between health heartbeats
    heartbeat_interval: float = 0.02
    #: coordinated authority checkpoints every N heartbeats
    checkpoint_every: int = 5
    #: maximum hedged re-dispatches per query
    max_hedges: int = 2
    #: recovery = latency + bytes·per_byte + missed_batches·per_batch
    recovery_latency: float = 0.01
    recovery_seconds_per_byte: float = 1e-9
    replay_seconds_per_batch: float = 1e-4
    #: SLO: a kill must be recovered within this many heartbeats
    recovery_budget_heartbeats: int = 10
    #: scaling policy (None = fixed fleet)
    elastic: ElasticPolicy | None = None
    seed: int = 0


@dataclass
class KillRecord:
    """One replica kill and its recovery, for the report."""

    replica: int
    at: float
    stage: str
    in_flight_lost: int
    recovered_at: float | None = None
    ttr: float | None = None
    missed_batches: int = 0
    checkpoint_version: int = 0
    within_budget: bool | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "replica": self.replica,
            "at": round(self.at, 6),
            "stage": self.stage,
            "in_flight_lost": self.in_flight_lost,
            "recovered_at": round(self.recovered_at, 6)
            if self.recovered_at is not None
            else None,
            "ttr": round(self.ttr, 6) if self.ttr is not None else None,
            "missed_batches": self.missed_batches,
            "checkpoint_version": self.checkpoint_version,
            "within_budget": self.within_budget,
        }


@dataclass
class FabricReport:
    """Everything one fabric run produced."""

    logs: list[QueryLog]
    horizon: float
    kills: list[KillRecord]
    elastic_events: list[ElasticEvent]
    peak_in_flight: int = 0
    clock_ticks: int = 0
    mutation_batches: int = 0
    heartbeats: int = 0
    spills: int = 0
    router_rejected: int = 0
    #: merged per-outcome counters across every replica server mounted
    server_counters: dict[str, int] = field(default_factory=dict)
    #: final replica states, id-ordered
    replica_states: dict[int, str] = field(default_factory=dict)
    #: BSP accounting of the fabric communicator
    dist: dict[str, float] = field(default_factory=dict)
    #: request_id -> ((vertices, distance), ...) when ``keep_results``
    results: dict[str, tuple] | None = None

    def dispositions(self) -> dict:
        """Unified SLO ledger (:func:`~repro.load.harness.
        disposition_summary`) — the same code path ``bench_serving``
        uses, so single-server and fabric availability are comparable."""
        return disposition_summary(self.logs, self.server_counters)

    def recovery_window_dispositions(self) -> dict[str, int]:
        """Disposition counts of queries issued while a replica was down."""
        windows = [
            (k.at, k.recovered_at if k.recovered_at is not None else self.horizon)
            for k in self.kills
        ]
        counts: dict[str, int] = {}
        for log in self.logs:
            if any(lo <= log.issued_at <= hi for lo, hi in windows):
                counts[log.disposition] = counts.get(log.disposition, 0) + 1
        return dict(sorted(counts.items()))

    def metrics(self) -> dict[str, Any]:
        """A superset of :meth:`LoadReport.metrics
        <repro.load.harness.LoadReport.metrics>` — run-table cells with a
        ``replicas`` axis stay schema-compatible with single-server
        cells — plus the fabric-only availability/recovery columns."""
        base = LoadReport(
            logs=self.logs,
            horizon=self.horizon,
            peak_in_flight=self.peak_in_flight,
            clock_ticks=self.clock_ticks,
            mutation_batches=self.mutation_batches,
        ).metrics()
        summary = self.dispositions()
        ttrs = [k.ttr for k in self.kills if k.ttr is not None]
        base.update(
            {
                "availability": summary["availability"],
                "answered": summary["answered"],
                "hedged": summary["hedged"],
                "kills": len(self.kills),
                "ttr_max": round(max(ttrs), 6) if ttrs else None,
                "ttr_mean": round(sum(ttrs) / len(ttrs), 6) if ttrs else None,
                "recovery_within_budget": all(
                    k.within_budget for k in self.kills
                )
                if self.kills
                else True,
                "heartbeats": self.heartbeats,
                "spills": self.spills,
                "router_rejected": self.router_rejected,
                "elastic_events": len(self.elastic_events),
            }
        )
        return base


class _FabricFeed:
    """Lazy, time-ordered mutation feed (fabric twin of ``_MutationFeed``)."""

    def __init__(self, batches, fabric: "ServingFabric") -> None:
        self._it = iter(batches) if batches is not None else iter(())
        self._fabric = fabric
        self._next = next(self._it, None)

    def peek(self) -> float | None:
        return self._next.at if self._next is not None else None

    def pop_apply(self) -> None:
        batch = self._next
        self._next = next(self._it, None)
        self._fabric._apply_batch(batch)


class ServingFabric:
    """N replicas, one router, one supervisor, one timeline.

    Parameters
    ----------
    graph:
        The initial graph (a static CSR; the fabric owns the
        authoritative :class:`~repro.dyn.live.LiveGraph` built over it,
        and every replica serves an independent clone).
    mix:
        Query-content sampler for open-loop traffic (optional when every
        run replays a trace).
    config:
        The :class:`FabricConfig`.
    cost_model:
        Per-checkpoint simulated costs (default :class:`CostModel`).
    fault_plan:
        Seeded :class:`~repro.distributed.comm.FaultPlan`; ``@R<N>``
        rules target replicas (identity-mapped onto the fabric's ranks).
    """

    def __init__(
        self,
        graph,
        mix=None,
        *,
        config: FabricConfig | None = None,
        cost_model: CostModel | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        cfg = config if config is not None else FabricConfig()
        if cfg.replicas < 1:
            raise ValueError("need at least one replica")
        provisioned = (
            cfg.max_replicas if cfg.max_replicas is not None else cfg.replicas
        )
        if provisioned < cfg.replicas:
            raise ValueError("max_replicas must cover the initial replicas")
        self.config = cfg
        self.mix = mix
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.authority = LiveGraph(graph)
        self.shard_map = ShardMap(graph, cfg.shards)
        self.comm = SimComm(
            provisioned,
            CommModel().scaled_for(graph.num_edges),
            fault_plan=fault_plan,
        )
        self.supervisor = FabricSupervisor(self.comm, self.shard_map)
        self.ring = HashRing(range(provisioned))
        self.replicas: dict[int, Replica] = {}
        for rid in range(provisioned):  # contracts: disable=CTR201 (bounded)
            if rid < cfg.replicas:
                server = self._clone_server()
                self.replicas[rid] = Replica(
                    rid, server, queue_depth=cfg.queue_depth, state=ACTIVE
                )
            else:
                self.replicas[rid] = Replica(
                    rid, None, queue_depth=cfg.queue_depth, state=STANDBY
                )
        self.router = Router(
            self.ring, self.replicas, load_factor=cfg.load_factor
        )
        #: (version_after, batch) per applied batch — the recovery replay log
        self._batch_log: list[tuple[int, Any]] = []
        #: pending timed events: (at, seq, kind, replica_id, kill_record)
        self._pending: list[tuple[float, int, str, int, KillRecord | None]] = []
        self._seq = 0
        self._known_dead: set[int] = set()
        self._ticks_done = 0
        self._mutations_applied = 0
        self.kills: list[KillRecord] = []
        self.elastic_events: list[ElasticEvent] = []
        self._logs: dict[str, QueryLog] = {}
        self._results: dict[str, tuple] | None = None
        self._outstanding: list[float] = []
        self._peak = 0
        self._clock = SimClock()

    # -- construction helpers -------------------------------------------
    def _clone_server(self) -> QueryServer:
        """A fresh server over an independent clone of the authority."""
        cfg = self.config
        snap = self.authority.snapshot()
        terrace = TerraceGraph.from_csr(snap.graph)
        alive = self.authority.alive
        dead = np.flatnonzero(~alive)
        if dead.size:
            terrace.delete_vertices(dead)
        live = LiveGraph(terrace, version=snap.version)
        server = QueryServer(
            live,
            kernel=cfg.kernel,
            cache_size=cfg.cache_size,
            default_timeout=cfg.timeout,
            max_in_flight=cfg.max_in_flight,
            tier1_budget_fraction=cfg.tier1_budget_fraction,
            retry=RetryPolicy(),
            sanitize=cfg.sanitize,
        )
        server.batch.version = snap.version
        return server

    # -- the run --------------------------------------------------------
    def run(
        self,
        traffic: ArrivalProcess | Iterable[Query],
        *,
        horizon: float,
        max_queries: int | None = None,
        mutations=None,
        keep_results: bool = False,
    ) -> FabricReport:
        """Run one fabric experiment; see the module docstring.

        ``traffic`` is an open-loop arrival process or a query trace —
        closed-loop populations are rejected because a hedge shifts the
        response instant the user's next think time would anchor on,
        which would make the population's schedule depend on failure
        timing (use the single-server harness for closed-loop studies).
        """
        if isinstance(traffic, ClosedLoop):
            raise ValueError(
                "the fabric serves open-loop traffic (or traces) only; "
                "closed-loop populations couple think times to failover "
                "timing — run those through LoadHarness"
            )
        self._results = {} if keep_results else None
        feed = _FabricFeed(mutations, self)
        if isinstance(traffic, ArrivalProcess):
            queries: Iterable[Query] = self._generate(
                traffic, horizon, max_queries
            )
        else:
            queries = self._cap(iter(traffic), max_queries)
        with virtual_time(self._clock, self.cost_model):
            restore = [
                (r, r.server._sleep) for r in self.replicas.values()
                if r.server is not None
            ]
            for r, _ in restore:
                r.server._sleep = self._clock.sleep
            try:
                # t=0 coordinated checkpoint: recovery always has a base
                self.supervisor.save_shards(self.authority)
                for q in queries:
                    self._advance_to(q.issued_at, feed)
                    self._dispatch(q)
                self._advance_to(horizon, feed)
            finally:
                for r, sleep in restore:
                    r.server._sleep = sleep
        for rid in sorted(self.replicas):
            self.replicas[rid].commit_until(float("inf"))
        return self._report(horizon)

    # -- traffic --------------------------------------------------------
    def _generate(
        self, process: ArrivalProcess, horizon: float, max_queries: int | None
    ) -> Iterator[Query]:
        if self.mix is None:
            raise ValueError("an open-loop fabric run needs a query mix")
        cfg = self.config
        rng_arrivals = Random(cfg.seed)
        rng_mix = Random(cfg.seed + MIX_STREAM_OFFSET)
        for i, t in enumerate(process.arrivals(rng_arrivals, horizon)):
            if max_queries is not None and i >= max_queries:
                return
            source, target, k = self.mix.sample(rng_mix)
            yield Query(
                source=source,
                target=target,
                k=k,
                timeout=cfg.timeout,
                request_id=f"q{i:06d}",
                issued_at=t,
            )

    @staticmethod
    def _cap(queries: Iterator[Query], max_queries: int | None) -> Iterator[Query]:
        for i, q in enumerate(queries):
            if max_queries is not None and i >= max_queries:
                return
            yield q

    # -- the event loop --------------------------------------------------
    def _advance_to(self, t: float, feed: _FabricFeed) -> None:
        """Process every timed event at or before ``t``, in time order.

        Equal-instant priority: recoveries, then heartbeats, then
        mutations — a replica that recovers exactly when a batch lands
        receives that batch like any other survivor.
        """
        hb = self.config.heartbeat_interval
        while True:
            next_recover = self._pending[0][0] if self._pending else None
            next_tick = (self._ticks_done + 1) * hb
            if next_tick > t:
                next_tick = None
            next_mut = feed.peek()
            if next_mut is not None and next_mut > t:
                next_mut = None
            candidates = [
                v
                for v in (next_recover, next_tick, next_mut)
                if v is not None and v <= t
            ]
            if not candidates:
                return
            at = min(candidates)
            if next_recover is not None and next_recover <= at:
                self._process_pending()
            elif next_tick is not None and next_tick <= at:
                self._ticks_done += 1
                self._heartbeat(self._ticks_done * hb)
            else:
                feed.pop_apply()

    def _process_pending(self) -> None:
        at, _, kind, rid, kill = heapq.heappop(self._pending)
        if kind == "recover":
            self._finish_recovery(at, rid, kill)
        else:  # "scaleup"
            replica = self.replicas[rid]
            replica.reset(self._clone_server(), at=at, state=ACTIVE)
            replica.server._sleep = self._clock.sleep

    def _schedule(self, at: float, kind: str, rid: int, kill) -> None:
        self._seq += 1
        heapq.heappush(self._pending, (at, self._seq, kind, rid, kill))

    # -- heartbeats ------------------------------------------------------
    def _heartbeat(self, tb: float) -> None:
        cfg = self.config
        try:
            self.comm.barrier(stage="fabric.heartbeat")
        except RankFailure:
            pass  # kill surfaced; membership handled from comm.dead below
        for rid in sorted(self.comm.dead - self._known_dead):
            self._known_dead.add(rid)
            self._process_kill(rid, tb)
        for rid in sorted(self.replicas):
            replica = self.replicas[rid]
            replica.commit_until(tb)
            if replica.state == DRAINING and not replica.inflight:
                replica.state = STANDBY
        if self._ticks_done % cfg.checkpoint_every == 0:
            self.supervisor.save_shards(self.authority)
        if cfg.elastic is not None:
            decision = cfg.elastic.decide(self.replicas, tb)
            if decision is not None:
                action, rid = decision
                util = cfg.elastic.utilization(self.replicas, tb)
                self.elastic_events.append(
                    ElasticEvent(
                        at=round(tb, 9),
                        action=action,
                        replica=rid,
                        utilization=round(util, 6),
                    )
                )
                if action == "scale_up":
                    self.replicas[rid].state = RECOVERING
                    self._schedule(
                        tb + cfg.elastic.scale_delay, "scaleup", rid, None
                    )
                else:
                    self.replicas[rid].state = DRAINING
                get_tracer().add(f"fabric.{action}")

    # -- kills and hedging ----------------------------------------------
    def _process_kill(self, rid: int, tk: float) -> None:
        cfg = self.config
        replica = self.replicas[rid]
        replica.commit_until(tk)  # delivered responses survive the kill
        lost = replica.lose_inflight()
        was_serving = replica.state in (ACTIVE, DRAINING)
        replica.state = DEAD
        kill = KillRecord(
            replica=rid,
            at=tk,
            stage="fabric.heartbeat",
            in_flight_lost=len(lost),
        )
        self.kills.append(kill)
        tracer = get_tracer()
        tracer.add("fabric.kills")
        # BSP accounting: one restore read, like the distributed layer
        shard_bytes = self.supervisor.checkpoint_bytes()
        model = self.comm.model
        self.comm.charge_recovery(
            model.latency
            + model.per_byte * (max(shard_bytes) if shard_bytes else 0)
        )
        self.comm.report.failures += 1
        if was_serving:
            ready = (
                tk
                + cfg.recovery_latency
                + sum(shard_bytes) * cfg.recovery_seconds_per_byte
            )
            self._schedule(ready, "recover", rid, kill)
        else:
            # a standby/recovering victim has nothing to restore; it is
            # simply marked dead until an operator (or scale-up) revives it
            kill.within_budget = True
        for flight in lost:
            self._hedge(flight, tk)

    def _hedge(self, flight: Flight, tk: float) -> None:
        q = flight.query
        hedges = flight.hedges + 1
        tracer = get_tracer()
        tracer.add("fabric.hedges")
        if hedges > self.config.max_hedges:
            self._log(
                QueryLog(
                    request_id=q.request_id,
                    source=q.source,
                    target=q.target,
                    k=q.k,
                    issued_at=q.issued_at,
                    disposition=SHED,
                    queue_time=tk - q.issued_at,
                    replica=flight.replica,
                    hedges=hedges,
                )
            )
            return
        shard = self.shard_map.shard_of(q.source)
        rid = self.router.place(shard, tk)
        if rid is None:
            self._log(
                QueryLog(
                    request_id=q.request_id,
                    source=q.source,
                    target=q.target,
                    k=q.k,
                    issued_at=q.issued_at,
                    disposition=SHED,
                    queue_time=tk - q.issued_at,
                    replica=flight.replica,
                    hedges=hedges,
                )
            )
            return
        self._serve_on(self.replicas[rid], q, tk, hedges)

    # -- dispatch --------------------------------------------------------
    def _dispatch(self, q: Query) -> None:
        t = q.issued_at
        shard = self.shard_map.shard_of(q.source)
        rid = self.router.place(shard, t)
        if rid is None:
            self._log(
                QueryLog(
                    request_id=q.request_id,
                    source=q.source,
                    target=q.target,
                    k=q.k,
                    issued_at=t,
                    disposition=SHED,
                )
            )
            return
        self._serve_on(self.replicas[rid], q, t, 0)

    def _serve_on(
        self, replica: Replica, q: Query, now_t: float, hedges: int
    ) -> None:
        start = replica.next_start(now_t)
        queue_time = start - q.issued_at  # total wait since *issue*
        timeout = q.timeout
        if timeout is not None and queue_time >= timeout:
            self._log(
                QueryLog(
                    request_id=q.request_id,
                    source=q.source,
                    target=q.target,
                    k=q.k,
                    issued_at=q.issued_at,
                    disposition=EXPIRED,
                    queue_time=queue_time,
                    replica=replica.id,
                    hedges=hedges,
                )
            )
            return
        budget = None if timeout is None else timeout - queue_time
        self._clock.jump_to(start)
        res = replica.server.serve(q.with_timeout(budget), queue_time=queue_time)
        finish = self._clock.now()
        flight = Flight(
            query=q,
            replica=replica.id,
            issued_at=q.issued_at,
            start=start,
            finish=finish,
            result=res,
            hedges=hedges,
        )
        replica.occupy(flight)
        while self._outstanding and self._outstanding[0] <= start:
            heapq.heappop(self._outstanding)
        heapq.heappush(self._outstanding, finish)
        self._peak = max(self._peak, len(self._outstanding))
        self._log(
            QueryLog(
                request_id=q.request_id,
                source=q.source,
                target=q.target,
                k=q.k,
                issued_at=q.issued_at,
                disposition=res.outcome,
                tier=res.tier,
                queue_time=queue_time,
                service_time=res.service_time,
                latency=finish - q.issued_at,
                attempts=res.attempts,
                paths=len(res.paths),
                replica=replica.id,
                hedges=hedges,
            )
        )
        if self._results is not None:
            self._results[q.request_id] = tuple(
                (p.vertices, p.distance) for p in res.paths
            )

    def _log(self, log: QueryLog) -> None:
        self._logs[log.request_id] = log
        if self._results is not None and log.disposition in (SHED, EXPIRED):
            self._results.pop(log.request_id, None)

    # -- mutations -------------------------------------------------------
    def _apply_batch(self, batch) -> None:
        touched_shards = self.shard_map.shards_touching(
            batch.touched_vertices()
        )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add("fabric.mutate.batches")
            tracer.add("fabric.mutate.touched_shards", len(touched_shards))
        try:
            self.comm.bcast(int(batch.size), stage="fabric.mutate")
        except RankFailure:
            # a kill mid-apply: process membership first, then apply the
            # batch to the *survivors* — they all land on the same version
            # (the failover-consistency contract tests/dyn asserts)
            for rid in sorted(self.comm.dead - self._known_dead):
                self._known_dead.add(rid)
                self._process_kill(rid, batch.at)
        snap = self.authority.apply(batch)
        self._batch_log.append((snap.version, batch))
        # full replication: every serving replica holds every touched
        # shard, so the recipient set is the active + draining fleet;
        # dead/recovering replicas replay from the batch log instead
        for rid in sorted(self.replicas):
            replica = self.replicas[rid]
            if replica.state in (ACTIVE, DRAINING):
                replica.server.apply_mutations(batch)
        self._mutations_applied += 1

    # -- recovery --------------------------------------------------------
    def _finish_recovery(self, tr: float, rid: int, kill: KillRecord) -> None:
        cfg = self.config
        csr, alive, version = self.supervisor.restore_shards()
        terrace = TerraceGraph.from_csr(csr)
        dead_vertices = np.flatnonzero(~alive)
        if dead_vertices.size:
            terrace.delete_vertices(dead_vertices)
        live = LiveGraph(terrace, version=version)
        server = QueryServer(
            live,
            kernel=cfg.kernel,
            cache_size=cfg.cache_size,
            default_timeout=cfg.timeout,
            max_in_flight=cfg.max_in_flight,
            tier1_budget_fraction=cfg.tier1_budget_fraction,
            retry=RetryPolicy(),
            sanitize=cfg.sanitize,
        )
        server.batch.version = version
        missed = 0
        for batch_version, batch in self._batch_log:
            if batch_version > version:
                server.apply_mutations(batch)
                missed += 1
        self._verify_restored(server, rid)
        self.comm.revive(rid)
        self._known_dead.discard(rid)
        ready = tr + missed * cfg.replay_seconds_per_batch
        replica = self.replicas[rid]
        replica.reset(server, at=ready, state=ACTIVE)
        replica.server._sleep = self._clock.sleep
        if kill is not None:
            kill.recovered_at = ready
            kill.ttr = ready - kill.at
            kill.missed_batches = missed
            kill.checkpoint_version = version
            kill.within_budget = (
                kill.ttr
                <= cfg.recovery_budget_heartbeats * cfg.heartbeat_interval
            )
        get_tracer().add("fabric.recoveries")

    def _verify_restored(self, server: QueryServer, rid: int) -> None:
        """Restored-equals-authority audit (the point of the checksums)."""
        mine = server.live.graph
        truth = self.authority.graph
        same = (
            server.live.version == self.authority.version
            and np.array_equal(mine.indptr, truth.indptr)
            and np.array_equal(mine.indices, truth.indices)
            and np.array_equal(mine.weights, truth.weights)
            and np.array_equal(server.live.alive, self.authority.alive)
        )
        if not same:
            raise SanitizerError(
                f"replica {rid} restored state diverges from the authority "
                f"(version {server.live.version} vs {self.authority.version})"
            )

    # -- reporting -------------------------------------------------------
    def _report(self, horizon: float) -> FabricReport:
        logs = [
            self._logs[rid]
            for rid in sorted(
                self._logs, key=lambda r: (self._logs[r].issued_at, r)
            )
        ]
        counters: dict[str, int] = {}
        for rid in sorted(self.replicas):
            server = self.replicas[rid].server
            if server is None:
                continue
            for key, value in server.counters.items():
                counters[key] = counters.get(key, 0) + value
        rep = self.comm.report
        return FabricReport(
            logs=logs,
            horizon=horizon,
            kills=self.kills,
            elastic_events=self.elastic_events,
            peak_in_flight=self._peak,
            clock_ticks=self._clock.ticks,
            mutation_batches=self._mutations_applied,
            heartbeats=self._ticks_done,
            spills=self.router.spills,
            router_rejected=self.router.rejected,
            server_counters=dict(sorted(counters.items())),
            replica_states={
                rid: self.replicas[rid].state for rid in sorted(self.replicas)
            },
            dist={
                "failures": rep.failures,
                "supersteps": rep.supersteps,
                "checkpoint_units": round(rep.checkpoint_units, 6),
                "recovery_units": round(rep.recovery_units, 6),
                "checkpoint_bytes": rep.checkpoint_bytes,
            },
            results=self._results,
        )


def report_row(scenario: str, report: FabricReport) -> dict[str, Any]:
    """One JSON-ready row per fabric run — the shared shape of
    ``peek-fabric`` payloads and ``BENCH_fabric.json``."""
    return {
        "scenario": scenario,
        **report.metrics(),
        "dispositions": report.dispositions(),
        "recovery_window": report.recovery_window_dispositions(),
        "kill_records": [k.as_dict() for k in report.kills],
        "replica_states": {
            str(rid): state for rid, state in report.replica_states.items()
        },
        "dist": report.dist,
    }


def slo_text(rows: list[dict[str, Any]], *, title: str = "fabric SLO") -> str:
    """Human-readable SLO table over scenario rows (``metrics()`` dicts
    extended with ``scenario`` and ``kill_records`` keys) — shared by
    ``peek-fabric`` and ``benchmarks/bench_fabric.py``."""

    def ms(value) -> str:
        return f"{value * 1e3:8.2f}" if value is not None else f"{'-':>8}"

    lines = [
        title,
        "",
        f"{'scenario':>20} {'queries':>7} {'avail':>7} {'p50 ms':>8} "
        f"{'p99 ms':>8} {'p999 ms':>8} {'shed%':>6} {'degr%':>6} "
        f"{'kills':>5} {'ttr ms':>8} {'hedged':>6}",
    ]
    for row in rows:
        lines.append(
            f"{row.get('scenario', '-'):>20} {row['queries']:>7} "
            f"{row['availability']:>7.4f} {ms(row['latency_p50'])} "
            f"{ms(row['latency_p99'])} {ms(row['latency_p999'])} "
            f"{row['shed_rate']:>6.1%} {row['degraded_rate']:>6.1%} "
            f"{row['kills']:>5} {ms(row['ttr_max'])} {row['hedged']:>6}"
        )
    lines.append("")
    for row in rows:
        for kill in row.get("kill_records", ()):
            budget = "ok" if kill["within_budget"] else "OVER BUDGET"
            lines.append(
                f"  kill: scenario={row.get('scenario', '-')} "
                f"replica={kill['replica']} at={kill['at']:.3f}s "
                f"lost={kill['in_flight_lost']} "
                f"ttr={kill['ttr'] * 1e3:.2f}ms "
                f"missed_batches={kill['missed_batches']} [{budget}]"
                if kill["ttr"] is not None
                else f"  kill: scenario={row.get('scenario', '-')} "
                f"replica={kill['replica']} at={kill['at']:.3f}s "
                f"(not recovered)"
            )
    return "\n".join(lines)
