"""Workload generation and capacity experiments on simulated time.

The load layer answers "what happens to this serving configuration
under *that* traffic?" reproducibly: arrival processes and query mixes
(:mod:`~repro.load.arrivals`, :mod:`~repro.load.mixes`) feed a
discrete-event harness (:mod:`~repro.load.harness`) that drives a real
:class:`~repro.serve.QueryServer` on a :class:`~repro.load.simclock.SimClock`,
and the experiment runner (:mod:`~repro.load.runner`) sweeps run tables
into ``BENCH_serving.json``.  See ``docs/load_testing.md``.
"""

from repro.load.arrivals import (
    ArrivalProcess,
    ClosedLoop,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    arrival_process,
)
from repro.load.harness import LoadHarness, LoadReport, QueryLog
from repro.load.mixes import HotspotMix, KSampler, QueryMix, UniformMix, make_mix
from repro.load.runner import RunTable, ServerConfig, capacity_summary, run_table
from repro.load.simclock import CostModel, SimClock, virtual_time
from repro.load.trace import dump_trace, load_trace, record_open_loop

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "DiurnalArrivals",
    "ClosedLoop",
    "arrival_process",
    "QueryMix",
    "UniformMix",
    "HotspotMix",
    "KSampler",
    "make_mix",
    "SimClock",
    "CostModel",
    "virtual_time",
    "LoadHarness",
    "LoadReport",
    "QueryLog",
    "RunTable",
    "ServerConfig",
    "run_table",
    "capacity_summary",
    "dump_trace",
    "load_trace",
    "record_open_loop",
]
