"""``peek-load`` — workload generation and capacity experiments.

Three subcommands:

* ``run`` — execute a stock run table (``tiny`` or ``medium``) and write
  the ``BENCH_serving.json`` payload plus the capacity summary::

      peek-load run --table tiny --json BENCH_serving.json \\
          --summary results/serving_capacity.txt

* ``record`` — materialize an open-loop workload as a JSONL trace::

      peek-load record --pattern poisson --rate 200 --graph LJ \\
          --horizon 0.5 --seed 7 --out trace.jsonl

* ``replay`` — drive a server with a recorded trace and print the
  metrics row::

      peek-load replay --trace trace.jsonl --graph LJ --timeout 0.05

Everything runs on simulated time; the same seed always produces the
same bytes (see ``docs/load_testing.md``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.graph.suite import SCALES, suite_graph
from repro.load.arrivals import arrival_process
from repro.load.harness import LoadHarness
from repro.load.mixes import make_mix
from repro.load.runner import TABLES, ServerConfig, run_table, write_outputs
from repro.load.trace import dump_trace, load_trace, record_open_loop

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="peek-load",
        description="Seeded workload generation and serving-capacity experiments.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a stock run table")
    run.add_argument(
        "--table", default="tiny", choices=sorted(TABLES), help="stock run table"
    )
    run.add_argument("--seed", type=int, default=0, help="table master seed")
    run.add_argument("--json", default="BENCH_serving.json", help="payload path")
    run.add_argument(
        "--summary",
        default="results/serving_capacity.txt",
        help="capacity-table path ('' to skip)",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )

    rec = sub.add_parser("record", help="record an open-loop workload trace")
    rec.add_argument("--pattern", default="poisson", choices=("poisson", "mmpp", "diurnal"))
    rec.add_argument("--rate", type=float, default=100.0, help="poisson rate (qps)")
    rec.add_argument("--rate-low", type=float, default=50.0, help="mmpp low rate")
    rec.add_argument("--rate-high", type=float, default=500.0, help="mmpp high rate")
    rec.add_argument("--dwell-low", type=float, default=0.2, help="mmpp low dwell mean")
    rec.add_argument("--dwell-high", type=float, default=0.05, help="mmpp high dwell mean")
    rec.add_argument("--amplitude", type=float, default=0.8, help="diurnal amplitude")
    rec.add_argument("--period", type=float, default=1.0, help="diurnal period (s)")
    rec.add_argument("--mix", default="uniform", choices=("uniform", "hotspot"))
    rec.add_argument("--graph", default="LJ", help="suite graph name")
    rec.add_argument("--scale", default="tiny", choices=SCALES)
    rec.add_argument("--horizon", type=float, default=1.0, help="simulated seconds")
    rec.add_argument("--timeout", type=float, default=None, help="per-query budget")
    rec.add_argument("--max-queries", type=int, default=None)
    rec.add_argument("--seed", type=int, default=0)
    rec.add_argument("--out", required=True, help="trace output path (JSONL)")

    rep = sub.add_parser("replay", help="replay a trace against a server")
    rep.add_argument("--trace", required=True, help="trace path (JSONL)")
    rep.add_argument("--graph", default="LJ", help="suite graph name")
    rep.add_argument("--scale", default="tiny", choices=SCALES)
    rep.add_argument("--timeout", type=float, default=None, help="budget override")
    rep.add_argument("--max-in-flight", type=int, default=4)
    rep.add_argument("--queue-depth", type=int, default=0)
    rep.add_argument(
        "--tier1-budget-fraction", type=float, default=None, help="budget split"
    )
    rep.add_argument("--seed", type=int, default=0)
    return p


def _pattern_spec(args: argparse.Namespace) -> dict:
    if args.pattern == "poisson":
        return {"kind": "poisson", "rate": args.rate}
    if args.pattern == "mmpp":
        return {
            "kind": "mmpp",
            "rate_low": args.rate_low,
            "rate_high": args.rate_high,
            "dwell_low": args.dwell_low,
            "dwell_high": args.dwell_high,
        }
    return {
        "kind": "diurnal",
        "base_rate": args.rate,
        "amplitude": args.amplitude,
        "period": args.period,
    }


def _cmd_run(args: argparse.Namespace) -> int:
    table = TABLES[args.table](seed=args.seed)
    progress = None if args.quiet else lambda line: print(line)
    payload = run_table(table, progress=progress)
    write_outputs(
        payload,
        json_path=args.json,
        summary_path=args.summary or None,
    )
    shed = sum(1 for r in payload["rows"] if r["shed_rate"] > 0)
    degraded = sum(1 for r in payload["rows"] if r["degraded_rate"] > 0)
    print(
        f"\n{len(payload['rows'])} cells -> {args.json}"
        f" ({shed} with shedding, {degraded} with degradation)"
    )
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    spec = _pattern_spec(args)
    graph = suite_graph(args.graph, args.scale)
    mix_spec = {"kind": args.mix}
    queries = record_open_loop(
        arrival_process(spec),
        make_mix(graph, mix_spec),
        horizon=args.horizon,
        seed=args.seed,
        timeout=args.timeout,
        max_queries=args.max_queries,
    )
    dump_trace(
        queries,
        args.out,
        source={
            "pattern": spec,
            "mix": mix_spec,
            "graph": args.graph,
            "scale": args.scale,
            "horizon": args.horizon,
            "seed": args.seed,
        },
    )
    print(f"{len(queries)} queries -> {args.out}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    queries = load_trace(args.trace)
    graph = suite_graph(args.graph, args.scale)
    config = ServerConfig(
        name="replay",
        timeout=args.timeout,
        max_in_flight=args.max_in_flight,
        queue_depth=args.queue_depth,
        tier1_budget_fraction=args.tier1_budget_fraction,
    )
    harness = LoadHarness(
        config.build(graph, seed=args.seed),
        mix=None,  # trace replay carries its own query content
        timeout=args.timeout,
        queue_depth=args.queue_depth,
        seed=args.seed,
    )
    horizon = max((q.issued_at for q in queries), default=0.0) + 1e-9
    report = harness.run(queries, horizon=horizon)
    print(json.dumps(report.metrics(), indent=2))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        # replicated cells clone graphs in ServingFabric.__init__; every
        # query still validates inside QueryServer.serve
        return _cmd_run(args)  # contracts: disable=CTR501 (validated in serve)
    if args.command == "record":
        return _cmd_record(args)
    return _cmd_replay(args)


if __name__ == "__main__":
    sys.exit(main())
