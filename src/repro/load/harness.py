"""The closed/open-loop load harness: a discrete-event driver over
:class:`~repro.serve.QueryServer`, entirely on simulated time.

The model is a G/G/c/K queueing station in front of the real server:

* ``c = server.max_in_flight`` worker slots (the server's own admission
  bound, so the simulated concurrency matches what the live server
  would admit);
* a FIFO wait queue of at most ``queue_depth`` requests (0 by default —
  exactly the live server's shed-don't-queue semantics);
* arrivals from an :class:`~repro.load.arrivals.ArrivalProcess`, a
  replayed trace, or a :class:`~repro.load.arrivals.ClosedLoop` user
  population.

Each admitted query is *actually served* — the full PeeK → OptYen →
partial degradation chain runs, with the per-query deadline anchored at
the arrival instant — but on a :class:`~repro.load.simclock.SimClock`
that advances per cooperative checkpoint.  A run may also carry a
*mutation feed* (``run(..., mutations=...)``): timed
:class:`~repro.dyn.stream.MutationBatch` values applied through
:meth:`QueryServer.apply_mutations <repro.serve.QueryServer.apply_mutations>`
before dispatching any query issued at or after each batch's ``at``
instant, so live-graph serving runs on the same deterministic timeline
as the queries themselves.  Queries overlap in simulated
time while executing sequentially in real time: the harness jumps the
clock to each query's start instant and lets the pipeline advance it,
then schedules the completion back into the event heap.  Everything
downstream of the seeds is deterministic, so a run's entire metrics
table is reproducible byte-for-byte.

Why a simulated station rather than threads: real threads would put
wall-clock jitter in every latency and make overload behavior a race;
the simulated station makes "p999 under 2× overload" a *fact* about the
configuration, not about the test machine (and lets one process model a
million-user population).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from random import Random
from typing import Iterable, Iterator

from repro.load.arrivals import ArrivalProcess, ClosedLoop
from repro.load.mixes import QueryMix
from repro.load.simclock import CostModel, SimClock, virtual_time
from repro.serve.query import Query
from repro.serve.server import OUTCOMES, QueryServer

__all__ = [
    "SHED",
    "EXPIRED",
    "DISPOSITIONS",
    "QueryLog",
    "LoadReport",
    "LoadHarness",
    "percentile",
    "disposition_summary",
]

#: harness-level dispositions, beyond the server's four outcomes
SHED = "shed"  #: no worker and no queue room at arrival
EXPIRED = "expired"  #: budget ran out while waiting in the queue

DISPOSITIONS = OUTCOMES + (SHED, EXPIRED)

#: the mix RNG is decorrelated from the arrival RNG by this offset so one
#: cell seed drives both streams (see docs/load_testing.md)
MIX_STREAM_OFFSET = 0x9E3779B9
THINK_STREAM_OFFSET = 0x6A09E667


def percentile(sorted_values: list[float], q: float) -> float | None:
    """Nearest-rank percentile (inclusive), ``None`` on empty input.

    Nearest-rank rather than interpolated: every reported quantile is a
    latency that actually happened, and the arithmetic is exact — no
    float blending to vary across BLAS builds.
    """
    if not sorted_values:
        return None
    if not 0.0 < q <= 100.0:
        raise ValueError("q must be in (0, 100]")
    rank = max(1, -(-int(q * len(sorted_values)) // 100))  # ceil without floats
    return sorted_values[rank - 1]


@dataclass(frozen=True)
class QueryLog:
    """One request's journey through the station, in simulated seconds."""

    request_id: str
    source: int
    target: int
    k: int
    issued_at: float
    #: a server outcome, or :data:`SHED` / :data:`EXPIRED`
    disposition: str
    tier: str = ""
    queue_time: float = 0.0
    service_time: float = 0.0
    #: issue → response (queue + service); 0 for shed/expired
    latency: float = 0.0
    attempts: int = 0
    paths: int = 0
    #: serving-fabric replica that answered (-1 = single-server harness)
    replica: int = -1
    #: hedged re-dispatches after a replica died mid-flight
    hedges: int = 0

    @property
    def served(self) -> bool:
        return self.disposition in OUTCOMES


def disposition_summary(
    logs: Iterable[QueryLog], server_counters: dict | None = None
) -> dict:
    """The unified SLO ledger: every request accounted for, in one place.

    Counts every :data:`DISPOSITIONS` member over ``logs`` (zero-filled,
    so the schema is stable across runs), plus:

    ``issued``
        total requests;
    ``answered``
        requests that got *some* response — ``complete`` + ``degraded``
        + ``partial`` (``failed`` responses carry no paths, so they do
        not count as answered);
    ``availability``
        ``answered / issued`` (1.0 on an empty run — an idle service is
        up);
    ``hedged``
        requests that needed at least one hedged re-dispatch.

    ``server_counters`` merges a server's own counter dict (e.g.
    :attr:`QueryServer.counters <repro.serve.server.QueryServer.counters>`):
    queries shed *inside* the server by admission control raise
    ``ServerOverloadError`` and bump its ``"shed"`` counter without ever
    producing a harness log entry, so they would otherwise vanish from
    the SLO accounting.  Both :mod:`benchmarks.bench_serving` and the
    fabric report consume this summary, so single-server and fabric SLOs
    are computed by literally the same code.
    """
    counts = {d: 0 for d in DISPOSITIONS}
    issued = 0
    hedged = 0
    for log in logs:
        issued += 1
        counts[log.disposition] += 1
        if log.hedges:
            hedged += 1
    if server_counters:
        extra_shed = int(server_counters.get("shed", 0))
        counts[SHED] += extra_shed
        issued += extra_shed
    answered = counts["complete"] + counts["degraded"] + counts["partial"]
    out = dict(counts)
    out["issued"] = issued
    out["answered"] = answered
    out["availability"] = round(answered / issued, 6) if issued else 1.0
    out["hedged"] = hedged
    return out


@dataclass
class LoadReport:
    """Everything one harness run produced."""

    logs: list[QueryLog]
    horizon: float
    #: highest number of simultaneously in-flight queries observed
    peak_in_flight: int = 0
    #: checkpoint ticks the clock advanced through (work proxy)
    clock_ticks: int = 0
    #: mutation batches applied from the run's mutation feed
    mutation_batches: int = 0

    def count(self, disposition: str) -> int:
        return sum(1 for log in self.logs if log.disposition == disposition)

    def dispositions(self, server_counters: dict | None = None) -> dict:
        """Unified disposition ledger — see :func:`disposition_summary`."""
        return disposition_summary(self.logs, server_counters)

    def metrics(self) -> dict:
        """The aggregate table one run-table cell reports.

        Latency percentiles are over *served* queries (shed and expired
        requests never got a response; their rates are reported
        separately so they cannot hide in a truncated latency
        distribution).  All values are exact functions of the seeds.
        """
        logs = self.logs
        issued = len(logs)
        counts = {d: 0 for d in DISPOSITIONS}
        for log in logs:
            counts[log.disposition] += 1
        served = [log for log in logs if log.served]
        latencies = sorted(log.latency for log in served)
        queue_times = sorted(log.queue_time for log in served)
        completed = counts["complete"]
        out = {
            "queries": issued,
            "served": len(served),
            "horizon": round(self.horizon, 6),
            "throughput_qps": round(len(served) / self.horizon, 6)
            if self.horizon > 0
            else 0.0,
            "goodput_qps": round(completed / self.horizon, 6)
            if self.horizon > 0
            else 0.0,
            "latency_p50": _round(percentile(latencies, 50)),
            "latency_p99": _round(percentile(latencies, 99)),
            "latency_p999": _round(percentile(latencies, 99.9)),
            "queue_p50": _round(percentile(queue_times, 50)),
            "queue_p99": _round(percentile(queue_times, 99)),
            "peak_in_flight": self.peak_in_flight,
            "mutation_batches": self.mutation_batches,
        }
        for disposition in DISPOSITIONS:
            out[f"{disposition}_rate"] = (
                round(counts[disposition] / issued, 6) if issued else 0.0
            )
        return out


def _round(value: float | None) -> float | None:
    return round(value, 6) if value is not None else None


class _MutationFeed:
    """Applies a time-ordered mutation stream as the run reaches it."""

    def __init__(self, batches, server: QueryServer) -> None:
        self._it = iter(batches) if batches is not None else iter(())
        self._server = server
        self._next = next(self._it, None)
        self.applied = 0

    def advance_to(self, t: float) -> None:
        """Apply every pending batch with ``at <= t``, in order.

        Lazy: the next batch is only pulled from the stream after the
        previous one was applied, so generators that sample the *current*
        graph state (:meth:`~repro.dyn.stream.IncidentStream.batches`)
        see exactly the state their batch will apply to.
        """
        while self._next is not None and self._next.at <= t:
            self._server.apply_mutations(self._next)
            self.applied += 1
            self._next = next(self._it, None)


class _Station:
    """The G/G/c/K bookkeeping: worker slots, wait queue, in-flight set."""

    def __init__(self, workers: int, queue_depth: int) -> None:
        self.capacity = workers + queue_depth
        #: next-free instant per worker slot (a heap)
        self.worker_free = [0.0] * workers
        #: completion instants of in-flight queries (a heap)
        self.outstanding: list[float] = []
        self.peak = 0

    def in_flight_at(self, t: float) -> int:
        outstanding = self.outstanding
        while outstanding and outstanding[0] <= t:
            heapq.heappop(outstanding)
        return len(outstanding)

    def admit(self, t: float) -> float | None:
        """Start instant for an arrival at ``t``, or None to shed."""
        if self.in_flight_at(t) >= self.capacity:
            return None
        free_at = self.worker_free[0]
        return max(t, free_at)

    def occupy(self, start: float, finish: float) -> None:
        heapq.heapreplace(self.worker_free, finish)
        heapq.heappush(self.outstanding, finish)
        self.peak = max(self.peak, len(self.outstanding))


class LoadHarness:
    """Drive one :class:`~repro.serve.QueryServer` with simulated traffic.

    Parameters
    ----------
    server:
        The server under test.  Its ``max_in_flight`` is the worker-slot
        count of the simulated station; pass ``sleep=clock.sleep`` when
        constructing it only if you build the clock yourself — by
        default the harness rebinds the server's backoff sleep to the
        simulated clock for the duration of each run.
    mix:
        Query-content sampler (required unless every run replays a
        trace).
    timeout:
        Per-query budget in simulated seconds, anchored at the *arrival*
        instant — queue wait burns budget, exactly like a client-side
        deadline.  ``None`` = no deadline.
    queue_depth:
        Wait-queue length in front of the workers (0 = shed on busy,
        the live server's semantics).
    cost_model:
        Per-checkpoint simulated costs; default :class:`CostModel`.
    seed:
        Master seed for the run; arrival times, query content, think
        times, and retry jitter all derive from it (docs/load_testing.md,
        "The seeding contract").
    injector:
        Optional :class:`~repro.serve.faults.FaultInjector` chained into
        the checkpoint hook, so fault campaigns run under virtual time.
    """

    def __init__(
        self,
        server: QueryServer,
        mix: QueryMix | None = None,
        *,
        timeout: float | None = None,
        queue_depth: int = 0,
        cost_model: CostModel | None = None,
        seed: int = 0,
        injector=None,
    ) -> None:
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        self.server = server
        self.mix = mix
        self.timeout = timeout
        self.queue_depth = queue_depth
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.seed = seed
        self.injector = injector

    # -- entry points ---------------------------------------------------
    def run(
        self,
        traffic: ArrivalProcess | ClosedLoop | Iterable[Query],
        *,
        horizon: float,
        max_queries: int | None = None,
        mutations=None,
    ) -> LoadReport:
        """Run one experiment: ``traffic`` may be an open-loop arrival
        process, a closed-loop population, or a query list (trace).

        ``mutations`` is an optional time-ordered iterable of
        :class:`~repro.dyn.stream.MutationBatch` (e.g.
        :meth:`IncidentStream.batches
        <repro.dyn.stream.IncidentStream.batches>`); each batch is
        applied via :meth:`QueryServer.apply_mutations
        <repro.serve.QueryServer.apply_mutations>` before dispatching any
        query issued at or after its ``at`` instant.  Requires a server
        built over a :class:`~repro.dyn.live.LiveGraph`.
        """
        feed = _MutationFeed(mutations, self.server)
        if isinstance(traffic, ClosedLoop):
            return self._run_closed(traffic, horizon, max_queries, feed)
        if isinstance(traffic, ArrivalProcess):
            return self._run_open(
                self._generate(traffic, horizon, max_queries), horizon, feed
            )
        return self._run_open(
            self._cap(iter(traffic), max_queries), horizon, feed
        )

    # -- open loop ------------------------------------------------------
    def _generate(
        self,
        process: ArrivalProcess,
        horizon: float,
        max_queries: int | None,
    ) -> Iterator[Query]:
        if self.mix is None:
            raise ValueError("an open-loop run needs a query mix")
        rng_arrivals = Random(self.seed)
        rng_mix = Random(self.seed + MIX_STREAM_OFFSET)
        for i, t in enumerate(process.arrivals(rng_arrivals, horizon)):
            if max_queries is not None and i >= max_queries:
                return
            source, target, k = self.mix.sample(rng_mix)
            yield Query(
                source=source,
                target=target,
                k=k,
                timeout=self.timeout,
                request_id=f"q{i:06d}",
                issued_at=t,
            )

    @staticmethod
    def _cap(queries: Iterator[Query], max_queries: int | None) -> Iterator[Query]:
        for i, q in enumerate(queries):
            if max_queries is not None and i >= max_queries:
                return
            yield q

    def _run_open(
        self,
        queries: Iterable[Query],
        horizon: float,
        feed: _MutationFeed,
    ) -> LoadReport:
        station = _Station(self.server.max_in_flight, self.queue_depth)
        clock = SimClock()
        logs: list[QueryLog] = []
        with virtual_time(clock, self.cost_model, hook=self.injector):
            prev_sleep = self._bind_clock(clock)
            try:
                for q in queries:
                    feed.advance_to(q.issued_at)
                    logs.append(self._dispatch(q, station, clock))
            finally:
                self.server._sleep = prev_sleep
        return LoadReport(
            logs=logs,
            horizon=horizon,
            peak_in_flight=station.peak,
            clock_ticks=clock.ticks,
            mutation_batches=feed.applied,
        )

    # -- closed loop ----------------------------------------------------
    def _run_closed(
        self,
        population: ClosedLoop,
        horizon: float,
        max_queries: int | None,
        feed: _MutationFeed,
    ) -> LoadReport:
        if self.mix is None:
            raise ValueError("a closed-loop run needs a query mix")
        rng_think = Random(self.seed + THINK_STREAM_OFFSET)
        rng_mix = Random(self.seed + MIX_STREAM_OFFSET)
        ramp = (
            population.ramp
            if population.ramp is not None
            else population.think_mean
        )
        # Initial wake-ups, uniformly over the ramp window.  For a
        # million-user population this is one float per user — the event
        # heap never holds more than one entry per user, which is what
        # keeps closed-loop in-flight <= population by construction.
        events = [rng_think.random() * ramp for _ in range(population.users)]
        heapq.heapify(events)

        station = _Station(self.server.max_in_flight, self.queue_depth)
        clock = SimClock()
        logs: list[QueryLog] = []
        issued = 0
        with virtual_time(clock, self.cost_model, hook=self.injector):
            prev_sleep = self._bind_clock(clock)
            try:
                while events:
                    t = heapq.heappop(events)
                    if t >= horizon:
                        continue  # this user retires
                    if max_queries is not None and issued >= max_queries:
                        break
                    source, target, k = self.mix.sample(rng_mix)
                    q = Query(
                        source=source,
                        target=target,
                        k=k,
                        timeout=self.timeout,
                        request_id=f"q{issued:06d}",
                        issued_at=t,
                    )
                    issued += 1
                    feed.advance_to(t)
                    log = self._dispatch(q, station, clock)
                    logs.append(log)
                    # the user's next wake: after the response (or the
                    # failed attempt) plus one think time
                    response_at = t + log.latency if log.served else t
                    think = rng_think.expovariate(1.0 / population.think_mean)
                    heapq.heappush(events, response_at + think)
            finally:
                self.server._sleep = prev_sleep
        report = LoadReport(
            logs=logs,
            horizon=horizon,
            peak_in_flight=station.peak,
            clock_ticks=clock.ticks,
            mutation_batches=feed.applied,
        )
        assert report.peak_in_flight <= population.users, (
            "closed-loop invariant violated: in-flight exceeded population"
        )
        return report

    # -- the station ----------------------------------------------------
    def _bind_clock(self, clock: SimClock):
        """Point the server's backoff sleep at simulated time; returns
        the previous sleep for restoration."""
        prev = self.server._sleep
        self.server._sleep = clock.sleep
        return prev

    def _dispatch(
        self, q: Query, station: _Station, clock: SimClock
    ) -> QueryLog:
        t = q.issued_at
        start = station.admit(t)
        if start is None:
            return QueryLog(
                request_id=q.request_id,
                source=q.source,
                target=q.target,
                k=q.k,
                issued_at=t,
                disposition=SHED,
            )
        queue_time = start - t
        timeout = q.timeout
        if timeout is not None and queue_time >= timeout:
            # the budget died while queueing: never reaches a worker
            return QueryLog(
                request_id=q.request_id,
                source=q.source,
                target=q.target,
                k=q.k,
                issued_at=t,
                disposition=EXPIRED,
                queue_time=queue_time,
            )
        budget = None if timeout is None else timeout - queue_time
        clock.jump_to(start)
        res = self.server.serve(q.with_timeout(budget), queue_time=queue_time)
        finish = clock.now()
        station.occupy(start, finish)
        return QueryLog(
            request_id=q.request_id,
            source=q.source,
            target=q.target,
            k=q.k,
            issued_at=t,
            disposition=res.outcome,
            tier=res.tier,
            queue_time=queue_time,
            service_time=res.service_time,
            latency=(finish - t),
            attempts=res.attempts,
            paths=len(res.paths),
        )
