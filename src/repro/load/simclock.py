"""Virtual time for load experiments: the clock *is* the work done.

Reproducible load experiments cannot read the wall clock — two runs of
the same seed would time out differently and the metrics tables would
never be byte-identical.  Instead the harness runs the serving stack on
a :class:`SimClock`, installed through :func:`repro.cancel.clock_scope`,
and advances it at every cooperative cancellation checkpoint by a
per-stage cost from a :class:`CostModel`.

Checkpoint counts are a deterministic function of the algorithmic work
(settled vertices, bucket phases, scan blocks, deviation iterations), so
simulated service time — and therefore every deadline expiry, every
degradation, every queue wait — is a pure function of (graph, query
stream, cost model).  No wall-clock enters the loop anywhere.

The default cost constants are calibrated so a tiny-suite PeeK query
lands in the low milliseconds of simulated time — the same order as the
real wall times in ``BENCH_hot_path.json`` scaled down to tiny graphs —
but their *absolute* scale is irrelevant to the experiments: only the
ratios between stages and between service time and arrival rate matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from contextlib import contextmanager

from repro.cancel import clock_scope, fault_scope

__all__ = [
    "SimClock",
    "CostModel",
    "DEFAULT_COSTS",
    "virtual_time",
]


class SimClock:
    """A settable monotonic-per-query virtual clock.

    Implements the zero-argument-callable protocol
    :mod:`repro.cancel` expects from a clock, so ``clock_scope(clock)``
    routes every deadline comparison through it.  The harness *jumps*
    the clock to each query's start time (which may move backward
    relative to the previous query's finish — queries overlap in
    simulated time even though they execute one after another in real
    time) and the checkpoint hook advances it as the pipeline works.
    """

    __slots__ = ("_now", "ticks")

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        #: checkpoint-advance count (diagnostics; deterministic)
        self.ticks = 0

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward (negative advances are a bug, so rejected)."""
        if seconds < 0:
            raise ValueError("SimClock cannot advance backwards")
        self._now += seconds

    def sleep(self, seconds: float) -> None:
        """Drop-in for ``time.sleep`` (the server's backoff sleeps)."""
        self.advance(max(0.0, seconds))

    def jump_to(self, t: float) -> None:
        """Set absolute time (the harness aligning to a query's start)."""
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(t={self._now:.6f}, ticks={self.ticks})"


#: Per-checkpoint simulated cost (seconds) by stage-label prefix.  The
#: checkpoint cadence differs per stage (dijkstra: per 256 settles;
#: delta: per bucket phase; scan: per 1024 inspections; deviation loop:
#: per iteration + per spur search), so these are costs *per visit*, not
#: per unit of work — see docs/load_testing.md for the calibration note.
DEFAULT_COSTS: dict[str, float] = {
    "sssp": 2e-4,
    "prune.scan": 1e-4,
    "prune.masks": 4e-4,
    "compact": 4e-4,
    "serve.attempt": 5e-5,
    "dist": 2e-4,
}


@dataclass(frozen=True)
class CostModel:
    """Stage-label prefix → simulated seconds per checkpoint visit.

    Lookup is longest-dotted-prefix (the same matching rule as
    :class:`~repro.serve.faults.FaultRule`): ``"prune.scan"`` beats
    ``"prune"`` beats the ``default``.  Frozen so a cost model can be a
    run-table cell key.
    """

    costs: tuple[tuple[str, float], ...] = field(
        default_factory=lambda: tuple(sorted(DEFAULT_COSTS.items()))
    )
    #: cost for any stage no prefix matches (e.g. the per-iteration
    #: checkpoints of the deviation loop, labelled by algorithm name)
    default: float = 1e-4

    @staticmethod
    def from_dict(costs: dict[str, float], default: float = 1e-4) -> "CostModel":
        return CostModel(costs=tuple(sorted(costs.items())), default=default)

    def cost(self, stage: str) -> float:
        best_len = -1
        best = self.default
        for prefix, cost in self.costs:
            if stage == prefix or stage.startswith(prefix + "."):
                if len(prefix) > best_len:
                    best_len = len(prefix)
                    best = cost
        return best


class _CheckpointAdvance:
    """The fault hook that turns checkpoints into time: advance, then
    delegate to the wrapped hook (a FaultInjector, usually)."""

    __slots__ = ("clock", "model", "inner")

    def __init__(
        self,
        clock: SimClock,
        model: CostModel,
        inner: Callable[[str], None] | None,
    ) -> None:
        self.clock = clock
        self.model = model
        self.inner = inner

    def __call__(self, stage: str) -> None:
        self.clock.advance(self.model.cost(stage))
        self.clock.ticks += 1
        if self.inner is not None:
            self.inner(stage)


@contextmanager
def virtual_time(
    clock: SimClock,
    model: CostModel | None = None,
    hook: Callable[[str], None] | None = None,
) -> Iterator[SimClock]:
    """Run the block on simulated time.

    Installs ``clock`` as the library clock (deadlines, budgets, server
    timing) *and* a checkpoint hook that advances it by ``model`` costs.
    Installing a hook also flips :func:`repro.cancel.cancellation_active`
    on, so kernels take their in-loop checkpoints even on deadline-less
    queries — otherwise deadline-less work would be free.

    ``hook`` chains an inner fault hook (e.g. a
    :class:`~repro.serve.faults.FaultInjector`) so seeded fault campaigns
    compose with virtual time.
    """
    model = model if model is not None else CostModel()
    with clock_scope(clock), fault_scope(_CheckpointAdvance(clock, model, hook)):
        yield clock
