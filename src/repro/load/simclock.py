"""Virtual time for load experiments: the clock *is* the work done.

Reproducible load experiments cannot read the wall clock — two runs of
the same seed would time out differently and the metrics tables would
never be byte-identical.  Instead the harness runs the serving stack on
a :class:`SimClock`, installed through :func:`repro.cancel.clock_scope`,
and advances it at every cooperative cancellation checkpoint by a
per-stage cost from a :class:`CostModel`.

Checkpoint counts are a deterministic function of the algorithmic work
(settled vertices, bucket phases, scan blocks, deviation iterations), so
simulated service time — and therefore every deadline expiry, every
degradation, every queue wait — is a pure function of (graph, query
stream, cost model).  No wall-clock enters the loop anywhere.

The default cost constants are calibrated so a tiny-suite PeeK query
lands in the low milliseconds of simulated time — the same order as the
real wall times in ``BENCH_hot_path.json`` scaled down to tiny graphs —
but their *absolute* scale is irrelevant to the experiments: only the
ratios between stages and between service time and arrival rate matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from contextlib import contextmanager

from repro.cancel import clock_scope, fault_scope

__all__ = [
    "SimClock",
    "CostModel",
    "DEFAULT_COSTS",
    "virtual_time",
]


class SimClock:
    """A settable monotonic-per-query virtual clock.

    Implements the zero-argument-callable protocol
    :mod:`repro.cancel` expects from a clock, so ``clock_scope(clock)``
    routes every deadline comparison through it.  The harness *jumps*
    the clock to each query's start time (which may move backward
    relative to the previous query's finish — queries overlap in
    simulated time even though they execute one after another in real
    time) and the checkpoint hook advances it as the pipeline works.
    """

    __slots__ = ("_now", "ticks")

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        #: checkpoint-advance count (diagnostics; deterministic)
        self.ticks = 0

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward (negative advances are a bug, so rejected)."""
        if seconds < 0:
            raise ValueError("SimClock cannot advance backwards")
        self._now += seconds

    def sleep(self, seconds: float) -> None:
        """Drop-in for ``time.sleep`` (the server's backoff sleeps)."""
        self.advance(max(0.0, seconds))

    def jump_to(self, t: float) -> None:
        """Set absolute time (the harness aligning to a query's start)."""
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(t={self._now:.6f}, ticks={self.ticks})"


#: Per-checkpoint simulated cost (seconds) by stage-label prefix.  The
#: checkpoint cadence differs per stage (dijkstra: per 256 settles;
#: delta: per bucket phase; scan: per 1024 inspections; deviation loop:
#: per iteration + per spur search), so these are costs *per visit*, not
#: per unit of work — see docs/load_testing.md for the calibration note.
DEFAULT_COSTS: dict[str, float] = {
    "sssp": 2e-4,
    "prune.scan": 1e-4,
    "prune.masks": 4e-4,
    "compact": 4e-4,
    "serve.attempt": 5e-5,
    "dist": 2e-4,
}


#: vertices settled between Dijkstra cancellation checkpoints — the
#: cadence :func:`CostModel.calibrate` converts per-edge wall time into a
#: per-checkpoint cost with (see ``repro/sssp/dijkstra.py``)
SETTLES_PER_CHECKPOINT = 256


@dataclass(frozen=True)
class CostModel:
    """Stage-label prefix → simulated seconds per checkpoint visit.

    Lookup is longest-dotted-prefix (the same matching rule as
    :class:`~repro.serve.faults.FaultRule`): ``"prune.scan"`` beats
    ``"prune"`` beats the ``default``.  Frozen so a cost model can be a
    run-table cell key.

    A model built by :meth:`calibrate` additionally carries the fitted
    wall-time law (``per_edge_seconds``/``per_query_seconds``) so
    :meth:`predict_seconds` can round-trip the fit against the measured
    rows it came from.
    """

    costs: tuple[tuple[str, float], ...] = field(
        default_factory=lambda: tuple(sorted(DEFAULT_COSTS.items()))
    )
    #: cost for any stage no prefix matches (e.g. the per-iteration
    #: checkpoints of the deviation loop, labelled by algorithm name)
    default: float = 1e-4
    #: fitted seconds per relaxed edge (None until :meth:`calibrate`)
    per_edge_seconds: float | None = None
    #: fitted fixed seconds per query (intercept of the calibration fit)
    per_query_seconds: float | None = None

    @staticmethod
    def from_dict(costs: dict[str, float], default: float = 1e-4) -> "CostModel":
        return CostModel(costs=tuple(sorted(costs.items())), default=default)

    @classmethod
    def calibrate(
        cls,
        payload: dict,
        *,
        graph: str,
        variant: str | None = "workspace",
        algos: tuple[str, ...] = ("Yen", "OptYen"),
        settle_batch: int = SETTLES_PER_CHECKPOINT,
    ) -> "CostModel":
        """Fit the per-stage constants to measured ``BENCH_hot_path.json``.

        ``payload`` is the parsed benchmark file (top-level ``rows`` with
        ``graph``/``algo``/``variant``/``wall_seconds``/``edges_relaxed``
        keys, the ``bench_hot_path.py`` schema).  The fit is the affine
        law ``wall ≈ a·edges_relaxed + b`` over the deviation-algorithm
        rows of one graph family (``algos`` defaults to Yen/OptYen, whose
        wall time *is* edge relaxation; PeeK rows are excluded because
        their wall is dominated by pruning SSSPs whose relaxations are
        not counted in ``edges_relaxed``).  ``a`` becomes the per-edge
        wall cost; every stage constant is then the default ratio table
        rescaled so one SSSP checkpoint (``settle_batch`` settles at the
        family's mean degree) costs ``a · settle_batch · degree`` — the
        measured machine's speed expressed in this clock's units.

        Returns a new frozen model; :meth:`predict_seconds` applies the
        fitted law, and the round-trip contract (fit → predict within
        tolerance on the fitting rows) is tested in
        ``tests/load/test_calibrate.py``.
        """
        rows = [
            r
            for r in payload.get("rows", ())
            if r.get("graph") == graph
            and r.get("algo") in algos
            and (variant is None or r.get("variant", variant) == variant)
            and r.get("edges_relaxed")
            and r.get("wall_seconds") is not None
        ]
        if len(rows) < 2:
            raise ValueError(
                f"calibrate needs >= 2 {algos} rows for graph {graph!r} "
                f"(variant={variant!r}); payload has {len(rows)}"
            )
        edges = [float(r["edges_relaxed"]) for r in rows]
        walls = [float(r["wall_seconds"]) for r in rows]
        n = len(rows)
        mean_e = sum(edges) / n
        mean_w = sum(walls) / n
        var_e = sum((e - mean_e) ** 2 for e in edges)
        if var_e <= 0.0:
            raise ValueError(
                f"calibrate needs rows with distinct edges_relaxed for "
                f"graph {graph!r}"
            )
        cov = sum((e - mean_e) * (w - mean_w) for e, w in zip(edges, walls))
        a = cov / var_e
        b = max(0.0, mean_w - a * mean_e)
        if a <= 0.0:
            raise ValueError(
                f"calibration fit for graph {graph!r} has non-positive "
                f"per-edge cost ({a:.3e}); rows are not edge-dominated"
            )
        degree = sum(r["m"] / max(r["n"], 1) for r in rows if "m" in r and "n" in r)
        degree = degree / n if degree else 8.0
        scale = (a * settle_batch * degree) / DEFAULT_COSTS["sssp"]
        return cls(
            costs=tuple(
                (stage, cost * scale) for stage, cost in sorted(DEFAULT_COSTS.items())
            ),
            default=1e-4 * scale,
            per_edge_seconds=a,
            per_query_seconds=b,
        )

    def predict_seconds(self, edges_relaxed: float) -> float:
        """Wall seconds the calibration law predicts for one query."""
        if self.per_edge_seconds is None:
            raise ValueError(
                "predict_seconds requires a calibrated model "
                "(build one with CostModel.calibrate)"
            )
        return self.per_edge_seconds * float(edges_relaxed) + (
            self.per_query_seconds or 0.0
        )

    def cost(self, stage: str) -> float:
        best_len = -1
        best = self.default
        for prefix, cost in self.costs:
            if stage == prefix or stage.startswith(prefix + "."):
                if len(prefix) > best_len:
                    best_len = len(prefix)
                    best = cost
        return best


class _CheckpointAdvance:
    """The fault hook that turns checkpoints into time: advance, then
    delegate to the wrapped hook (a FaultInjector, usually)."""

    __slots__ = ("clock", "model", "inner")

    def __init__(
        self,
        clock: SimClock,
        model: CostModel,
        inner: Callable[[str], None] | None,
    ) -> None:
        self.clock = clock
        self.model = model
        self.inner = inner

    def __call__(self, stage: str) -> None:
        self.clock.advance(self.model.cost(stage))
        self.clock.ticks += 1
        if self.inner is not None:
            self.inner(stage)


@contextmanager
def virtual_time(
    clock: SimClock,
    model: CostModel | None = None,
    hook: Callable[[str], None] | None = None,
) -> Iterator[SimClock]:
    """Run the block on simulated time.

    Installs ``clock`` as the library clock (deadlines, budgets, server
    timing) *and* a checkpoint hook that advances it by ``model`` costs.
    Installing a hook also flips :func:`repro.cancel.cancellation_active`
    on, so kernels take their in-loop checkpoints even on deadline-less
    queries — otherwise deadline-less work would be free.

    ``hook`` chains an inner fault hook (e.g. a
    :class:`~repro.serve.faults.FaultInjector`) so seeded fault campaigns
    compose with virtual time.
    """
    model = model if model is not None else CostModel()
    with clock_scope(clock), fault_scope(_CheckpointAdvance(clock, model, hook)):
        yield clock
