"""Query mixes: *what* the arriving queries ask for.

A mix is a seeded sampler of ``(source, target, k)`` triples over a
fixed graph.  Two endpoint distributions —

* :class:`UniformMix` — endpoints uniform over the vertex set (every
  query distinct, cache-hostile: the worst case for the BatchPeeK LRU);
* :class:`HotspotMix` — targets drawn degree-biased (weight
  ``(in_degree + 1) ** exponent``), sources uniform: the "everyone
  routes to the hub" traffic shape, cache-friendly and skew-heavy;

crossed with two ``k`` distributions —

* ``uniform`` over ``[k_min, k_max]``;
* ``small_heavy`` — geometric with success probability ``1 - p``,
  clipped to ``k_max``: most users want a handful of alternatives, a
  tail wants many (mean ≈ ``1 / (1 - p)`` before clipping).

All draws come from the caller's ``random.Random``; the mixes hold no
seed state of their own.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from itertools import accumulate
from random import Random

import numpy as np

__all__ = [
    "KSampler",
    "QueryMix",
    "UniformMix",
    "HotspotMix",
    "largest_scc",
    "make_mix",
]


def largest_scc(graph) -> np.ndarray:
    """Vertex ids of the graph's largest strongly connected component.

    Every (source, target) pair inside it is mutually reachable, so a
    mix restricted to it (``{"scc": true}`` in the spec) never produces
    a query whose only honest answer is ``failed``-unreachable — the
    sampling convention of the paper's KSP experiments, and what an
    availability SLO needs (a fabric can't be penalised for paths that
    do not exist).
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components

    n = graph.num_vertices
    mat = csr_matrix(
        (
            np.ones(graph.indices.size, dtype=np.int8),
            graph.indices,
            graph.indptr,
        ),
        shape=(n, n),
    )
    _, labels = connected_components(mat, directed=True, connection="strong")
    counts = np.bincount(labels)
    return np.flatnonzero(labels == int(counts.argmax()))


@dataclass(frozen=True)
class KSampler:
    """The ``k`` marginal: ``"uniform"`` on [k_min, k_max] or
    ``"small_heavy"`` (clipped geometric, continue-probability ``p``)."""

    dist: str = "small_heavy"
    k_min: int = 1
    k_max: int = 8
    p: float = 0.5

    def __post_init__(self) -> None:
        if self.dist not in ("uniform", "small_heavy"):
            raise ValueError(f"unknown k distribution {self.dist!r}")
        if not 1 <= self.k_min <= self.k_max:
            raise ValueError("need 1 <= k_min <= k_max")
        if not 0.0 <= self.p < 1.0:
            raise ValueError("p must be in [0, 1)")

    def sample(self, rng: Random) -> int:
        # `dist` is the distribution *name*, not a path cost
        if self.dist == "uniform":  # repro-lint: disable=RPR004
            return rng.randint(self.k_min, self.k_max)
        k = self.k_min
        while k < self.k_max and rng.random() < self.p:
            k += 1
        return k


class QueryMix:
    """Base: a sampler of ``(source, target, k)`` with ``source != target``."""

    def sample(self, rng: Random) -> tuple[int, int, int]:
        raise NotImplementedError


class UniformMix(QueryMix):
    """Endpoints uniform over the vertex set (or a ``vertices`` subset)."""

    def __init__(self, graph, k: KSampler | None = None, vertices=None) -> None:
        self._ids = (
            [int(v) for v in vertices]
            if vertices is not None
            else list(range(graph.num_vertices))
        )
        self.n = len(self._ids)
        if self.n < 2:
            raise ValueError("graph too small for source != target queries")
        self.k_sampler = k if k is not None else KSampler()

    def sample(self, rng: Random) -> tuple[int, int, int]:
        source = rng.randrange(self.n)
        target = rng.randrange(self.n - 1)
        if target >= source:  # uniform over the n-1 non-source vertices
            target += 1
        return self._ids[source], self._ids[target], self.k_sampler.sample(rng)


class HotspotMix(QueryMix):
    """Degree-biased targets: hub vertices soak up the traffic.

    Target weight is ``(in_degree + 1) ** exponent`` (+1 keeps sinks
    reachable by the sampler; ``exponent`` sharpens or flattens the
    skew).  Sources stay uniform — the many-clients-few-destinations
    shape.  Sampling is one binary search over the cumulative weights.
    """

    def __init__(
        self,
        graph,
        k: KSampler | None = None,
        exponent: float = 1.0,
        vertices=None,
    ) -> None:
        self._ids = (
            [int(v) for v in vertices]
            if vertices is not None
            else list(range(graph.num_vertices))
        )
        self.n = len(self._ids)
        if self.n < 2:
            raise ValueError("graph too small for source != target queries")
        self.k_sampler = k if k is not None else KSampler()
        in_degree = np.bincount(graph.indices, minlength=graph.num_vertices)
        weights = (in_degree.astype(np.float64)[self._ids] + 1.0) ** float(exponent)
        # cumulative weights as plain floats: bisect-friendly and
        # platform-stable (no BLAS in sight)
        self._cum = list(accumulate(weights.tolist()))

    def sample(self, rng: Random) -> tuple[int, int, int]:
        total = self._cum[-1]
        while True:
            source = rng.randrange(self.n)
            target = bisect.bisect_right(self._cum, rng.random() * total)
            if target >= self.n:  # guard the r == total edge draw
                target = self.n - 1
            if target != source:
                return (
                    self._ids[source],
                    self._ids[target],
                    self.k_sampler.sample(rng),
                )


def make_mix(graph, spec: dict) -> QueryMix:
    """Build a mix from a plain-dict spec (run tables, ``peek-load``).

    ``{"kind": "hotspot", "exponent": 1.5, "k": {"dist": "small_heavy",
    "k_max": 8}}`` — the ``k`` sub-dict maps to :class:`KSampler`.
    ``"scc": true`` restricts both endpoints to the largest strongly
    connected component (see :func:`largest_scc`), guaranteeing every
    sampled pair is reachable.
    """
    spec = dict(spec)
    kind = spec.pop("kind", "uniform")
    k_spec = spec.pop("k", None)
    k_sampler = KSampler(**k_spec) if k_spec is not None else KSampler()
    if spec.pop("scc", False):
        spec["vertices"] = largest_scc(graph)
    if kind == "uniform":
        return UniformMix(graph, k=k_sampler, **spec)
    if kind == "hotspot":
        return HotspotMix(graph, k=k_sampler, **spec)
    raise ValueError(f"unknown mix kind {kind!r}; choose from ['uniform', 'hotspot']")
