"""JSONL query traces: record a workload once, replay it anywhere.

A trace file is newline-delimited JSON in the same spirit as the obs
trace format (``repro/obs/export.py``): one ``meta`` record first, then
one ``query`` record per request, sorted by ``at``:

.. code-block:: json

    {"type": "meta", "version": 1, "queries": 2, "source": {...}}
    {"type": "query", "at": 0.013, "source": 5, "target": 91, "k": 4,
     "timeout": 0.05, "request_id": "q000000"}
    {"type": "query", "at": 0.021, "source": 17, "target": 91, "k": 2,
     "timeout": 0.05, "request_id": "q000001"}

``at`` is the simulated issue instant; the other fields are exactly the
:class:`~repro.serve.Query` fields.  Floats survive the round trip
bit-for-bit (``json`` emits shortest-repr floats), so *generate → dump →
load → replay* reproduces the per-query schedule identically — the
round-trip property the trace tests pin down.
"""

from __future__ import annotations

import json
from pathlib import Path
from random import Random
from typing import Any, Iterable

from repro.load.arrivals import ArrivalProcess
from repro.load.mixes import QueryMix
from repro.serve.query import Query

__all__ = [
    "dump_trace",
    "load_trace",
    "record_open_loop",
]

TRACE_VERSION = 1


def dump_trace(
    queries: Iterable[Query],
    path: str | Path,
    *,
    source: dict[str, Any] | None = None,
) -> Path:
    """Write ``queries`` as a JSONL trace; ``source`` annotates the meta
    record (e.g. the generating pattern/mix specs) and is purely
    descriptive."""
    path = Path(path)
    queries = list(queries)
    meta = {
        "type": "meta",
        "version": TRACE_VERSION,
        "queries": len(queries),
        "source": source or {},
    }
    with path.open("w") as fh:
        fh.write(json.dumps(meta) + "\n")
        for q in queries:
            fh.write(
                json.dumps(
                    {
                        "type": "query",
                        "at": q.issued_at,
                        "source": q.source,
                        "target": q.target,
                        "k": q.k,
                        "timeout": q.timeout,
                        "request_id": q.request_id,
                    }
                )
                + "\n"
            )
    return path


def load_trace(path: str | Path) -> list[Query]:
    """Read a trace back as :class:`~repro.serve.Query` objects.

    Validates the header version and returns queries in file order
    (which :func:`dump_trace` keeps sorted by ``at``).
    """
    out: list[Query] = []
    with Path(path).open() as fh:
        header = json.loads(fh.readline())
        if header.get("type") != "meta" or header.get("version") != TRACE_VERSION:
            raise ValueError(
                f"{path}: not a version-{TRACE_VERSION} query trace"
            )
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("type") != "query":
                continue
            out.append(
                Query(
                    source=rec["source"],
                    target=rec["target"],
                    k=rec["k"],
                    timeout=rec.get("timeout"),
                    request_id=rec.get("request_id", ""),
                    issued_at=rec["at"],
                )
            )
    return out


def record_open_loop(
    process: ArrivalProcess,
    mix: QueryMix,
    *,
    horizon: float,
    seed: int,
    timeout: float | None = None,
    max_queries: int | None = None,
) -> list[Query]:
    """Materialize an open-loop workload as a query list.

    Uses the same two seeded RNG streams as the live harness (one for
    arrival times, one for query content — see
    :class:`~repro.load.harness.LoadHarness`), so recording a workload
    and replaying the trace drives the server with the identical
    schedule the live generator would have produced.
    """
    rng_arrivals = Random(seed)
    rng_mix = Random(seed + 0x9E3779B9)  # decorrelated stream, same seed
    out: list[Query] = []
    for i, t in enumerate(process.arrivals(rng_arrivals, horizon)):
        if max_queries is not None and i >= max_queries:
            break
        source, target, k = mix.sample(rng_mix)
        out.append(
            Query(
                source=source,
                target=target,
                k=k,
                timeout=timeout,
                request_id=f"q{i:06d}",
                issued_at=t,
            )
        )
    return out
