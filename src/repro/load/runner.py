"""The experiment runner: run tables → ``BENCH_serving.json``.

A :class:`RunTable` is the cross product *traffic pattern × graph ×
server config × repetition*; :func:`run_table` drives every cell through
a fresh :class:`~repro.serve.QueryServer` on simulated time and collects
one metrics row per cell (the :meth:`~repro.load.harness.LoadReport.metrics`
dict plus the cell key).  The output payload follows the repo's bench
convention (``BENCH_hot_path.json``): a top-level descriptor plus a flat
``rows`` list, so downstream tooling can treat every benchmark file
alike.

Reproducibility: each cell's seed is a CRC32 of the table seed and the
cell key, so (a) every cell is independently reproducible, (b) cells
don't share RNG streams, and (c) adding a row to the table never
reshuffles the seeds of existing rows.  Two runs of the same table are
byte-identical — CI asserts this with ``cmp``.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field, fields
from pathlib import Path
from random import Random
from typing import Any, Callable

from repro.graph.suite import suite_graph
from repro.load.arrivals import arrival_process
from repro.load.harness import DISPOSITIONS, LoadHarness
from repro.load.mixes import make_mix
from repro.load.simclock import CostModel
from repro.obs.tracer import Tracer, use_tracer
from repro.serve.server import QueryServer, RetryPolicy

__all__ = [
    "ServerConfig",
    "RunTable",
    "cell_seed",
    "run_table",
    "capacity_summary",
    "write_outputs",
    "tiny_table",
    "medium_table",
]

SCHEMA_VERSION = 2  # v2: rows carry "replicas" + unified "dispositions"

#: decorrelates the server-jitter RNG from the harness streams
JITTER_STREAM_OFFSET = 0xB7E15162


@dataclass(frozen=True)
class ServerConfig:
    """One server configuration under test (a run-table axis value).

    ``timeout`` is the *client-side* budget the harness stamps on every
    query (anchored at arrival, so queue wait burns it); the remaining
    fields go straight to :class:`~repro.serve.QueryServer`.
    """

    name: str
    timeout: float | None = None
    max_in_flight: int = 4
    #: harness wait-queue depth (0 = shed on busy, live-server semantics)
    queue_depth: int = 0
    tier1_budget_fraction: float | None = None
    kernel: str = "delta"
    cache_size: int = 64
    jitter: float = 0.0
    #: >1 routes the cell through :class:`~repro.fabric.fabric.ServingFabric`
    #: (replicated serving; open-loop traffic only, jitter not plumbed)
    replicas: int = 1

    def build(self, graph, *, seed: int) -> QueryServer:
        return QueryServer(
            graph,
            kernel=self.kernel,
            cache_size=self.cache_size,
            default_timeout=self.timeout,
            max_in_flight=self.max_in_flight,
            tier1_budget_fraction=self.tier1_budget_fraction,
            retry=RetryPolicy(jitter=self.jitter),
            rng=Random(seed + JITTER_STREAM_OFFSET),
        )

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class RunTable:
    """The experiment grid (everything a run needs, seeds included)."""

    name: str
    #: (label, spec-dict) per traffic pattern — see
    #: :func:`~repro.load.arrivals.arrival_process` for the spec shape
    traffic: tuple[tuple[str, dict], ...]
    #: benchmark-suite graph names (``repro.graph.suite``)
    graphs: tuple[str, ...]
    configs: tuple[ServerConfig, ...]
    scale: str = "tiny"
    repetitions: int = 1
    #: simulated seconds per cell
    horizon: float = 1.0
    #: query-mix spec (:func:`~repro.load.mixes.make_mix`)
    mix: dict = field(default_factory=lambda: {"kind": "uniform"})
    seed: int = 0
    #: hard cap on queries per cell (bounds runtime under overload)
    max_queries: int | None = None
    #: cost-model override (stage prefix -> seconds per checkpoint)
    costs: dict | None = None

    def cells(self):
        """Every (traffic_label, spec, graph, config, rep) in table order."""
        for label, spec in self.traffic:
            for graph in self.graphs:
                for config in self.configs:
                    for rep in range(self.repetitions):
                        yield label, spec, graph, config, rep


def cell_seed(table: RunTable, traffic: str, graph: str, config: str, rep: int) -> int:
    """Deterministic per-cell seed: CRC32 of the table seed + cell key."""
    key = f"{table.seed}|{traffic}|{graph}|{config}|{rep}"
    return zlib.crc32(key.encode("utf-8"))


def run_table(
    table: RunTable,
    *,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run every cell; returns the ``BENCH_serving.json`` payload.

    Each cell gets a fresh server (no cache warmth bleeding across
    cells), its own CRC32-derived seed, and a private
    :class:`~repro.obs.tracer.Tracer` whose counter totals land on the
    row (``counters.*`` keys) — pruning and serve counts per cell, the
    obs story for load runs.
    """
    cost_model = (
        CostModel.from_dict(table.costs) if table.costs is not None else CostModel()
    )
    rows: list[dict[str, Any]] = []
    for label, spec, graph_name, config, rep in table.cells():
        seed = cell_seed(table, label, graph_name, config.name, rep)
        graph = suite_graph(graph_name, table.scale)
        mix = make_mix(graph, table.mix)
        pattern = arrival_process(dict(spec))
        tracer = Tracer()
        if config.replicas > 1:
            # replicated cell: the fabric owns its servers and clock
            from repro.fabric.fabric import FabricConfig, ServingFabric

            fabric = ServingFabric(
                graph,
                mix,
                config=FabricConfig(
                    replicas=config.replicas,
                    timeout=config.timeout,
                    max_in_flight=config.max_in_flight,
                    queue_depth=config.queue_depth,
                    tier1_budget_fraction=config.tier1_budget_fraction,
                    kernel=config.kernel,
                    cache_size=config.cache_size,
                    seed=seed,
                ),
                cost_model=cost_model,
            )
            with use_tracer(tracer):
                report = fabric.run(
                    pattern, horizon=table.horizon, max_queries=table.max_queries
                )
            server_counters = report.server_counters
            dispositions = report.dispositions()
        else:
            server = config.build(graph, seed=seed)
            harness = LoadHarness(
                server,
                mix,
                timeout=config.timeout,
                queue_depth=config.queue_depth,
                cost_model=cost_model,
                seed=seed,
            )
            with use_tracer(tracer):
                report = harness.run(
                    pattern, horizon=table.horizon, max_queries=table.max_queries
                )
            server_counters = dict(server.counters)
            dispositions = report.dispositions(server.counters)
        row: dict[str, Any] = {
            "traffic": label,
            "graph": graph_name,
            "config": config.name,
            "rep": rep,
            "seed": seed,
            "replicas": config.replicas,
            "offered_qps": round(pattern.mean_rate(), 6),
            **report.metrics(),
        }
        row["dispositions"] = dispositions
        row["counters"] = {
            "server": dict(sorted(server_counters.items())),
            "trace": tracer.counter_totals(),
        }
        rows.append(row)
        if progress is not None:
            progress(
                f"{label:>16} {graph_name:>4} {config.name:>14} rep{rep}: "
                f"{row['queries']:>5} queries, "
                f"shed {row['shed_rate']:.0%}, degraded {row['degraded_rate']:.0%}"
            )
    return {
        "benchmark": "serving",
        "version": SCHEMA_VERSION,
        "table": table.name,
        "scale": table.scale,
        "seed": table.seed,
        "horizon": table.horizon,
        "repetitions": table.repetitions,
        "mix": table.mix,
        "traffic": {label: spec for label, spec in table.traffic},
        "configs": [c.to_dict() for c in table.configs],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------
def _fmt_ms(value: float | None) -> str:
    return f"{value * 1e3:8.2f}" if value is not None else f"{'-':>8}"


def capacity_summary(payload: dict[str, Any]) -> str:
    """The human-readable capacity table (``results/serving_capacity.txt``).

    One line per (traffic, graph, config), metrics averaged over
    repetitions; percentiles are rep-averaged nearest-rank values.  A
    trailing ``SHED``/``DEGR`` tag calls out cells demonstrating
    overload shedding or deadline degradation.
    """
    groups: dict[tuple[str, str, str], list[dict]] = {}
    for row in payload["rows"]:
        groups.setdefault((row["traffic"], row["graph"], row["config"]), []).append(row)

    lines = [
        f"serving capacity — table={payload['table']} scale={payload['scale']} "
        f"seed={payload['seed']} horizon={payload['horizon']}s "
        f"reps={payload['repetitions']}",
        "(simulated time; offered = open-loop arrival rate or users/think_mean)",
        "",
        f"{'traffic':>16} {'graph':>5} {'config':>14} {'offered':>8} "
        f"{'served/s':>8} {'p50 ms':>8} {'p99 ms':>8} {'p999 ms':>8} "
        f"{'shed%':>6} {'degr%':>6} {'part%':>6} {'fail%':>6}",
    ]
    for (traffic, graph, config), rows in groups.items():
        n = len(rows)

        def mean(key: str, rows=rows, n=n) -> float | None:
            vals = [r[key] for r in rows if r[key] is not None]
            return sum(vals) / len(vals) if vals else None

        shed = mean("shed_rate") or 0.0
        degraded = mean("degraded_rate") or 0.0
        tags = []
        if shed > 0:
            tags.append("SHED")
        if degraded > 0:
            tags.append("DEGR")
        lines.append(
            f"{traffic:>16} {graph:>5} {config:>14} "
            f"{rows[0]['offered_qps']:>8.1f} {mean('throughput_qps') or 0.0:>8.1f} "
            f"{_fmt_ms(mean('latency_p50'))} {_fmt_ms(mean('latency_p99'))} "
            f"{_fmt_ms(mean('latency_p999'))} "
            f"{shed:>6.1%} {degraded:>6.1%} "
            f"{mean('partial_rate') or 0.0:>6.1%} {mean('failed_rate') or 0.0:>6.1%}"
            + (f"  {' '.join(tags)}" if tags else "")
        )
    lines.append("")
    lines.append(
        "dispositions: "
        + ", ".join(DISPOSITIONS)
        + " (shed/expired are harness-side; the rest are server outcomes)"
    )
    return "\n".join(lines)


def write_outputs(
    payload: dict[str, Any],
    *,
    json_path: str | Path,
    summary_path: str | Path | None = None,
) -> None:
    """Write the JSON payload (+ optional capacity summary) to disk."""
    json_path = Path(json_path)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(payload, indent=2) + "\n")
    if summary_path is not None:
        summary_path = Path(summary_path)
        summary_path.parent.mkdir(parents=True, exist_ok=True)
        summary_path.write_text(capacity_summary(payload) + "\n")


# ---------------------------------------------------------------------------
# stock tables
# ---------------------------------------------------------------------------
def tiny_table(seed: int = 0) -> RunTable:
    """The CI smoke grid: 2 traffic × 2 graphs × 2 configs × 1 rep.

    Small enough for a CI job (a few hundred tiny-graph queries total),
    but still covers open vs closed loop and relaxed vs tight deadlines.
    """
    return RunTable(
        name="tiny",
        traffic=(
            ("poisson", {"kind": "poisson", "rate": 400.0}),
            ("closed_16", {"kind": "closed", "users": 16, "think_mean": 0.05}),
        ),
        graphs=("LJ", "WL"),
        configs=(
            ServerConfig(name="baseline", timeout=0.5, max_in_flight=4),
            ServerConfig(
                name="tight",
                timeout=0.012,
                max_in_flight=4,
                tier1_budget_fraction=0.4,
            ),
        ),
        scale="tiny",
        repetitions=1,
        horizon=0.25,
        mix={"kind": "uniform", "k": {"dist": "small_heavy", "k_max": 8}},
        seed=seed,
        max_queries=120,
    )


def medium_table(seed: int = 0) -> RunTable:
    """The bench grid: 4 traffic × LJ/WL × 2 configs × 3 reps.

    Calibrated (see ``benchmarks/bench_serving.py``) so the overload
    pattern drives the baseline config into shedding and the tight
    deadline drives degradation — the two regimes the serving layer
    exists to handle.
    """
    return RunTable(
        name="medium",
        traffic=(
            ("poisson_steady", {"kind": "poisson", "rate": 250.0}),
            ("poisson_overload", {"kind": "poisson", "rate": 2500.0}),
            (
                "mmpp_bursty",
                {
                    "kind": "mmpp",
                    "rate_low": 150.0,
                    "rate_high": 3000.0,
                    "dwell_low": 0.15,
                    "dwell_high": 0.05,
                },
            ),
            ("closed_200", {"kind": "closed", "users": 200, "think_mean": 0.2}),
        ),
        graphs=("LJ", "WL"),
        configs=(
            ServerConfig(name="baseline", timeout=0.5, max_in_flight=4),
            ServerConfig(
                name="tight_deadline",
                timeout=0.012,
                max_in_flight=4,
                tier1_budget_fraction=0.4,
            ),
        ),
        scale="tiny",
        repetitions=3,
        horizon=1.0,
        mix={"kind": "hotspot", "exponent": 1.0, "k": {"dist": "small_heavy", "k_max": 8}},
        seed=seed,
        max_queries=1500,
    )


TABLES = {"tiny": tiny_table, "medium": medium_table}
