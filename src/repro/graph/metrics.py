"""Graph metrics used by reports and sanity checks.

The suite generators claim to reproduce structural *families* (DESIGN.md
§1); these metrics are how the tests and EXPERIMENTS.md substantiate that:
degree skew, reachability mass, weight statistics, and an approximate
effective diameter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sssp.dijkstra import dijkstra

__all__ = ["GraphSummary", "summarize", "degree_gini", "reachable_fraction"]


def degree_gini(graph: CSRGraph) -> float:
    """Gini coefficient of the total (in + out) degree distribution.

    Total degree, because several generator families (preferential
    attachment above all) are skewed on the *in* side while out-degrees
    stay near-constant.  ~0.2–0.3 for Erdős–Rényi/grids, noticeably higher
    for the scale-free families the paper's benchmark graphs belong to —
    the one-number test that a generator produced realistic skew.
    """
    total = graph.out_degrees() + np.bincount(
        graph.indices, minlength=graph.num_vertices
    )
    degs = np.sort(total.astype(np.float64))
    n = degs.size
    if n == 0 or degs.sum() == 0:
        return 0.0
    cum = np.cumsum(degs)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def reachable_fraction(graph: CSRGraph, source: int = 0) -> float:
    """Fraction of vertices reachable from ``source``."""
    res = dijkstra(graph, source)
    return res.num_reached() / max(graph.num_vertices, 1)


def _sample_hop_diameter(graph: CSRGraph, samples: int, seed: int) -> float:
    """90th-percentile finite hop distance over sampled sources (approx.
    effective diameter, the standard scaled-down metric)."""
    rng = np.random.default_rng(seed)
    hops: list[int] = []
    n = graph.num_vertices
    unit = CSRGraph(
        graph.indptr, graph.indices, np.ones(graph.num_edges), check=False
    )
    for _ in range(samples):
        s = int(rng.integers(0, n))
        res = dijkstra(unit, s)
        finite = res.dist[np.isfinite(res.dist)]
        if finite.size > 1:
            hops.append(int(np.percentile(finite, 90)))
    return float(np.mean(hops)) if hops else float("nan")


@dataclass(frozen=True)
class GraphSummary:
    """One row of the suite-characterisation table."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    max_out_degree: int
    degree_gini: float
    weight_min: float
    weight_max: float
    effective_diameter: float

    def row(self) -> list:
        return [
            self.num_vertices,
            self.num_edges,
            self.avg_degree,
            self.max_out_degree,
            self.degree_gini,
            self.weight_min,
            self.weight_max,
            self.effective_diameter,
        ]


def summarize(graph: CSRGraph, *, diameter_samples: int = 4, seed: int = 0) -> GraphSummary:
    """Compute the characterisation row for one graph."""
    degs = graph.out_degrees()
    return GraphSummary(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_degree=float(graph.num_edges / max(graph.num_vertices, 1)),
        max_out_degree=int(degs.max()) if degs.size else 0,
        degree_gini=degree_gini(graph),
        weight_min=float(graph.weights.min()) if graph.num_edges else 0.0,
        weight_max=float(graph.weights.max()) if graph.num_edges else 0.0,
        effective_diameter=_sample_hop_diameter(graph, diameter_samples, seed),
    )
