"""Compressed-sparse-row (CSR) graph storage.

This is the graph representation the whole library computes on, mirroring the
paper's Figure 5: a ``beg_pos`` array (named ``indptr`` here, following the
scipy convention) of length ``n + 1`` and an adjacency array ``indices`` of
length ``m`` holding edge targets, plus a parallel ``weights`` array.

Design notes (per the HPC-Python guides this repo follows):

* All payload is held in contiguous NumPy arrays; per-vertex adjacency access
  returns *views*, never copies.
* The structure is immutable after construction.  Deletion is handled by the
  compaction layer (:mod:`repro.core.compaction`) exactly as the paper does —
  status arrays, edge swap on a copy, or regeneration — rather than by
  mutating a shared graph.
* The reverse graph (incoming edges) is built once on demand and cached,
  because PeeK's K-upper-bound pruning always needs one reverse SSSP.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GraphFormatError, InvalidWeightError, VertexError

__all__ = ["CSRGraph"]


class CSRGraph:
    """A directed, positively-weighted graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64[n + 1]`` — ``indices[indptr[v]:indptr[v+1]]`` are the
        out-neighbours of vertex ``v``.  ``indptr[0] == 0`` and
        ``indptr[n] == m``.
    indices:
        ``int64[m]`` — edge target vertices.
    weights:
        ``float64[m]`` — strictly positive edge weights, parallel to
        ``indices``.
    check:
        Validate the invariants (monotone indptr, in-range targets, positive
        weights).  Costs O(n + m); disable only on hot internal paths that
        construct guaranteed-valid CSRs (e.g. regeneration compaction).
    """

    __slots__ = ("indptr", "indices", "weights", "_reverse", "_edge_index", "_split")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        *,
        check: bool = True,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        self._reverse: "CSRGraph | None" = None
        self._edge_index: dict[tuple[int, int], float] | None = None
        self._split: tuple | None = None
        if check:
            self._validate()

    # ------------------------------------------------------------------
    # construction / validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise GraphFormatError("indptr must be a 1-D array of length n + 1")
        if self.indptr[0] != 0:
            raise GraphFormatError("indptr[0] must be 0")
        if self.indices.ndim != 1 or self.weights.ndim != 1:
            raise GraphFormatError("indices and weights must be 1-D arrays")
        if self.indices.size != self.weights.size:
            raise GraphFormatError(
                f"indices ({self.indices.size}) and weights ({self.weights.size}) "
                "must have the same length"
            )
        if int(self.indptr[-1]) != self.indices.size:
            raise GraphFormatError(
                f"indptr[-1] ({int(self.indptr[-1])}) must equal the edge count "
                f"({self.indices.size})"
            )
        neg = np.flatnonzero(np.diff(self.indptr) < 0)
        if neg.size:
            v = int(neg[0])
            raise GraphFormatError(
                f"indptr must be non-decreasing: it drops from "
                f"{int(self.indptr[v])} to {int(self.indptr[v + 1])} at "
                f"vertex {v}"
            )
        n = self.num_vertices
        if self.indices.size and (
            int(self.indices.min()) < 0 or int(self.indices.max()) >= n
        ):
            raise GraphFormatError("edge target out of range [0, n)")
        if self.weights.size:
            # NaN gets its own diagnosis: it is the classic silent-corruption
            # value (it fails *every* comparison, so Dijkstra never relaxes
            # through it) and deserves a sharper message than "not finite".
            nan = np.flatnonzero(np.isnan(self.weights))
            if nan.size:
                raise InvalidWeightError(
                    f"edge {int(nan[0])} has NaN weight; weights must be "
                    "finite and strictly positive (paper Definition 1)"
                )
            if (
                not np.all(np.isfinite(self.weights))
                or float(self.weights.min()) <= 0.0
            ):
                raise InvalidWeightError(
                    "all edge weights must be finite and strictly positive "
                    "(paper Definition 1)"
                )

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return int(self.indptr.size - 1)

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m`` (parallel edges each count once)."""
        return int(self.indices.size)

    # Aliases matching the paper's notation.
    n = num_vertices
    m = num_edges

    # ------------------------------------------------------------------
    # adjacency access
    # ------------------------------------------------------------------
    def adjacency_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
        """The library's graph-traversal protocol.

        Returns ``(begins, ends, indices, weights, edge_mask)``: vertex
        ``v``'s live out-edges occupy positions ``[begins[v], ends[v])`` of
        ``indices``/``weights``, further filtered by ``edge_mask`` when it is
        not ``None``.  Every SSSP/KSP kernel traverses through this protocol,
        which is what lets the three compaction strategies of
        :mod:`repro.core.compaction` (status array, edge swap, regeneration)
        plug into the same downstream computation — the heart of the paper's
        Figure 6 comparison.
        """
        return self.indptr[:-1], self.indptr[1:], self.indices, self.weights, None

    def neighbors(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(targets, weights)`` views of vertex ``v``'s out-edges."""
        self._check_vertex(v)
        lo, hi = int(self.indptr[v]), int(self.indptr[v + 1])
        return self.indices[lo:hi], self.weights[lo:hi]

    def out_degree(self, v: int) -> int:
        """Out-degree of vertex ``v``."""
        self._check_vertex(v)
        return int(self.indptr[v + 1] - self.indptr[v])

    def out_degrees(self) -> np.ndarray:
        """``int64[n]`` array of all out-degrees."""
        return np.diff(self.indptr)

    def edge_range(self, v: int) -> tuple[int, int]:
        """``[begin, end)`` positions of ``v``'s edges in the edge arrays."""
        self._check_vertex(v)
        return int(self.indptr[v]), int(self.indptr[v + 1])

    def has_edge(self, u: int, v: int) -> bool:
        """True when a directed edge u→v exists."""
        targets, _ = self.neighbors(u)
        return bool(np.any(targets == v))

    def edge_weight(self, u: int, v: int) -> float | None:
        """Minimum weight among u→v edges, or ``None`` when absent.

        Parallel edges are legal in this library; shortest-path algorithms
        only ever care about the lightest one.
        """
        targets, weights = self.neighbors(u)
        mask = targets == v
        if not np.any(mask):
            return None
        return float(weights[mask].min())

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield every edge as ``(u, v, w)`` in CSR order."""
        for u in range(self.num_vertices):
            lo, hi = int(self.indptr[u]), int(self.indptr[u + 1])
            for e in range(lo, hi):
                yield u, int(self.indices[e]), float(self.weights[e])

    def edge_sources(self) -> np.ndarray:
        """``int64[m]`` array of edge source vertices (expanded indptr)."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
        )

    def light_heavy_split(
        self, delta: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Light-first edge permutation for Δ-stepping.  Cached.

        Returns ``(begins, light_ends, ends, indices, weights)`` over a
        *permuted copy* of the edge arrays in which vertex ``v``'s light
        out-edges (weight ≤ Δ) occupy ``[begins[v], light_ends[v])`` and its
        heavy edges ``[light_ends[v], ends[v])``.  Range slicing replaces
        the per-batch boolean ``weights <= delta`` filter in the kernel's
        inner loop.

        Only the most recent Δ is retained: a PeeK query runs its forward
        and reverse SSSP at one Δ each (the reverse graph carries its own
        cache), and a Δ-sweep touches each value once anyway.  The graph's
        own ``indptr``/``indices``/``weights`` are never mutated (RPR001);
        the permuted arrays are private copies.
        """
        delta = float(delta)
        cached = self._split
        if cached is not None and cached[0] == delta:
            return cached[1:]
        heavy = self.weights > delta
        src = self.edge_sources()
        # stable two-key sort: group by source, light edges first, CSR order
        # preserved inside each (source, class) run
        perm = np.lexsort((heavy, src))
        begins = self.indptr[:-1]
        light_counts = np.bincount(src[~heavy], minlength=self.num_vertices)
        light_ends = begins + light_counts
        self._split = (
            delta,
            begins,
            light_ends,
            self.indptr[1:],
            self.indices[perm],
            self.weights[perm],
        )
        return self._split[1:]

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """The transpose graph (every edge u→v becomes v→u). Cached.

        Built with a counting sort over edge targets, O(n + m), no Python
        loop over edges.
        """
        if self._reverse is None:
            n, m = self.num_vertices, self.num_edges
            counts = np.bincount(self.indices, minlength=n)
            rindptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=rindptr[1:])
            order = np.argsort(self.indices, kind="stable")
            rindices = self.edge_sources()[order]
            rweights = self.weights[order]
            rev = CSRGraph(rindptr, rindices, rweights, check=False)
            rev._reverse = self  # transpose of the transpose is this graph
            self._reverse = rev
        return self._reverse

    def sorted_copy(self) -> "CSRGraph":
        """A copy with each adjacency list sorted by (target, weight).

        Canonical form used by structural-equality tests; algorithms never
        require sorted adjacency.  One segment-aware ``np.lexsort`` over the
        whole edge array — keyed (source, target, weight), so every vertex's
        slice stays in place while sorting internally — replaces the former
        per-vertex Python loop, O(m log m) vectorised instead of n small
        sorts.
        """
        if self.num_edges == 0:
            return CSRGraph(
                self.indptr.copy(),
                self.indices.copy(),
                self.weights.copy(),
                check=False,
            )
        order = np.lexsort((self.weights, self.indices, self.edge_sources()))
        return CSRGraph(
            self.indptr.copy(),
            self.indices[order],
            self.weights[order],
            check=False,
        )

    def structurally_equal(self, other: "CSRGraph") -> bool:
        """True when both graphs have identical vertex/edge/weight sets.

        Adjacency order within a vertex is ignored (it is an artefact of
        construction order, not graph identity).
        """
        if self.num_vertices != other.num_vertices:
            return False
        if self.num_edges != other.num_edges:
            return False
        if not np.array_equal(self.indptr, other.indptr):
            return False
        a, b = self.sorted_copy(), other.sorted_copy()
        return bool(
            np.array_equal(a.indices, b.indices)
            and np.allclose(a.weights, b.weights)
        )

    def induced_subgraph(
        self, keep: np.ndarray
    ) -> tuple["CSRGraph", np.ndarray, np.ndarray]:
        """Regenerate a CSR over ``keep``-masked vertices.

        Parameters
        ----------
        keep:
            ``bool[n]`` mask of vertices to retain.  Edges survive only when
            both endpoints are kept.

        Returns
        -------
        (subgraph, new_id, old_id):
            ``new_id[v]`` maps an original vertex to its id in the subgraph
            (``-1`` when dropped); ``old_id`` is the inverse map.

        This is the same renumbering the regeneration-based compaction does;
        the compaction layer wraps it with instrumentation.
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.size != self.num_vertices:
            raise GraphFormatError("keep mask length must equal num_vertices")
        old_id = np.flatnonzero(keep).astype(np.int64)
        new_id = np.full(self.num_vertices, -1, dtype=np.int64)
        new_id[old_id] = np.arange(old_id.size, dtype=np.int64)

        src = self.edge_sources()
        edge_keep = keep[src] & keep[self.indices]
        new_src = new_id[src[edge_keep]]
        new_dst = new_id[self.indices[edge_keep]]
        new_w = self.weights[edge_keep]

        counts = np.bincount(new_src, minlength=old_id.size)
        indptr = np.zeros(old_id.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # new_src is already non-decreasing because edge_sources is, so the
        # filtered edges are already grouped by source: no sort needed.
        sub = CSRGraph(indptr, new_dst, new_w, check=False)
        return sub, new_id, old_id

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Approximate payload size in bytes (the three CSR arrays)."""
        return int(
            self.indptr.nbytes + self.indices.nbytes + self.weights.nbytes
        )

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise VertexError(
                f"vertex {v} out of range [0, {self.num_vertices})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"{self.memory_bytes() / 1e6:.2f} MB)"
        )
