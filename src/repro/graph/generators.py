"""Synthetic graph generators for the benchmark suite.

The paper's eight graphs (Table 1) fall into four structural families.  Each
generator below reproduces one family at laptop scale:

* :func:`rmat` — Graph500-style recursive matrix graphs (R21/R21U).
* :func:`preferential_attachment` — skewed social networks (LJ/LJU, GT).
* :func:`copying_model` — web/article-link graphs with copied link lists
  (GW, WL/WLU).
* :func:`grid_network` — meshes for the routing examples and sanity tests.
* :func:`erdos_renyi` / :func:`random_dag` — uniform structure for tests.

All generators are deterministic given ``seed`` and return a
:class:`~repro.graph.csr.CSRGraph` with the requested weight scheme.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import assign_weights, from_edge_array
from repro.graph.csr import CSRGraph

__all__ = [
    "rmat",
    "preferential_attachment",
    "copying_model",
    "erdos_renyi",
    "grid_network",
    "random_dag",
]


def _finish(
    n: int, src: np.ndarray, dst: np.ndarray, weight_scheme: str, seed: int
) -> CSRGraph:
    graph = from_edge_array(n, src, dst, 1.0)
    return assign_weights(graph, weight_scheme, seed=seed + 0x5EED)


def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    weight_scheme: str = "random",
    seed: int = 0,
) -> CSRGraph:
    """Recursive-matrix (R-MAT) graph, the Graph500 generator family.

    ``n = 2**scale`` vertices and ``edge_factor * n`` edge draws (self loops
    and duplicates removed afterwards, as in the reference generator).  The
    default ``(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`` quadrant probabilities
    are the Graph500 values and produce the skewed degree distribution the
    paper's R21 graph exhibits.

    The bit-by-bit quadrant choice is fully vectorised: one ``(m, scale)``
    uniform matrix decides every bit of every endpoint at once.
    """
    if not 0 < a + b + c < 1:
        raise ValueError("quadrant probabilities must satisfy 0 < a+b+c < 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    u = rng.random((m, scale))
    # P(src bit = 1) = c + d, independent of the dst bit at this level under
    # the standard noise-free RMAT factorisation.
    src_bit = u > (a + b)
    # P(dst bit = 1 | src bit) differs per quadrant row.
    v = rng.random((m, scale))
    p_dst_given0 = b / (a + b)
    d = 1.0 - a - b - c
    p_dst_given1 = d / (c + d)
    dst_bit = np.where(src_bit, v < p_dst_given1, v < p_dst_given0)
    powers = 1 << np.arange(scale, dtype=np.int64)
    src = (src_bit * powers).sum(axis=1).astype(np.int64)
    dst = (dst_bit * powers).sum(axis=1).astype(np.int64)
    return _finish(n, src, dst, weight_scheme, seed)


def preferential_attachment(
    n: int,
    out_degree: int = 8,
    *,
    weight_scheme: str = "random",
    seed: int = 0,
) -> CSRGraph:
    """Directed preferential-attachment graph (social-network analogue).

    Every new vertex draws ``out_degree`` targets with probability
    proportional to in-degree-plus-one, then the reverse of a fraction of
    those edges is added too (social ties are often reciprocated), giving
    the skewed in-degree and non-trivial SCC structure of LiveJournal /
    Twitter-style graphs.
    """
    if n < 2:
        raise ValueError("need at least two vertices")
    rng = np.random.default_rng(seed)
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    # Endpoint pool implements proportional-to-degree sampling: each edge
    # contributes its target once, and every vertex appears once for the
    # "+1" smoothing term.  Preallocated with a fill pointer — appending
    # by concatenation would be O(n·m) and unusable at medium scale.
    pool = np.empty(n * (out_degree + 1) + out_degree, dtype=np.int64)
    fill = min(out_degree, n)
    pool[:fill] = np.arange(fill, dtype=np.int64)
    for v in range(1, n):
        k = min(out_degree, v)
        picks = pool[rng.integers(0, fill, size=k)]
        picks = picks[picks != v]
        srcs.append(np.full(picks.size, v, dtype=np.int64))
        dsts.append(picks)
        # 30% reciprocation
        mask = rng.random(picks.size) < 0.3
        srcs.append(picks[mask])
        dsts.append(np.full(int(mask.sum()), v, dtype=np.int64))
        pool[fill : fill + picks.size] = picks
        pool[fill + picks.size] = v
        fill += picks.size + 1
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    return _finish(n, src, dst, weight_scheme, seed)


def copying_model(
    n: int,
    out_degree: int = 8,
    *,
    copy_prob: float = 0.7,
    reciprocal_prob: float = 0.15,
    weight_scheme: str = "random",
    seed: int = 0,
) -> CSRGraph:
    """Kleinberg copying-model graph (web-crawl analogue).

    Each new page picks a random "prototype" page and, per out-link slot,
    copies the prototype's corresponding link with probability ``copy_prob``
    or links to a uniformly random earlier page otherwise.  This yields the
    dense bipartite-core, high-clustering structure of web graphs like
    GAP-web.

    Pure copying only produces links to *earlier* pages — a DAG — whereas
    real web/article graphs are cyclic (pages get edited to link forward).
    ``reciprocal_prob`` flips that fraction of links back, restoring cycles
    and the non-trivial search space shortest-path queries see on real
    crawls.
    """
    if not 0 <= copy_prob <= 1:
        raise ValueError("copy_prob must be in [0, 1]")
    if not 0 <= reciprocal_prob <= 1:
        raise ValueError("reciprocal_prob must be in [0, 1]")
    rng = np.random.default_rng(seed)
    adj: list[np.ndarray] = [np.empty(0, dtype=np.int64)]
    seed_size = min(out_degree + 1, n)
    for v in range(1, seed_size):
        adj.append(np.arange(v, dtype=np.int64))
    for v in range(seed_size, n):
        proto = int(rng.integers(0, v))
        proto_links = adj[proto]
        links = rng.integers(0, v, size=out_degree).astype(np.int64)
        if proto_links.size:
            copy_mask = rng.random(out_degree) < copy_prob
            copied = proto_links[
                rng.integers(0, proto_links.size, size=out_degree)
            ]
            links = np.where(copy_mask, copied, links)
        links = links[links != v]
        adj.append(np.unique(links))
    src = np.concatenate(
        [np.full(a.size, v, dtype=np.int64) for v, a in enumerate(adj)]
    )
    dst = np.concatenate(adj) if adj else np.empty(0, dtype=np.int64)
    if reciprocal_prob > 0 and src.size:
        back = rng.random(src.size) < reciprocal_prob
        rev_src, rev_dst = dst[back], src[back]
        src = np.concatenate([src, rev_src])
        dst = np.concatenate([dst, rev_dst])
    return _finish(n, src, dst, weight_scheme, seed)


def erdos_renyi(
    n: int,
    avg_degree: float = 8.0,
    *,
    weight_scheme: str = "random",
    seed: int = 0,
) -> CSRGraph:
    """Uniform random directed graph with ``avg_degree * n`` edge draws."""
    rng = np.random.default_rng(seed)
    m = int(round(avg_degree * n))
    src = rng.integers(0, n, size=m).astype(np.int64)
    dst = rng.integers(0, n, size=m).astype(np.int64)
    return _finish(n, src, dst, weight_scheme, seed)


def grid_network(
    rows: int,
    cols: int,
    *,
    bidirectional: bool = True,
    diagonal_prob: float = 0.0,
    weight_scheme: str = "random",
    seed: int = 0,
) -> CSRGraph:
    """A ``rows × cols`` lattice — the road-network/mesh analogue.

    Vertex ``(r, c)`` is id ``r * cols + c``.  4-neighbour edges always
    exist; diagonal shortcuts are added with probability ``diagonal_prob``.
    Unlike the scale-free generators, grids have large diameter, which
    exercises the Δ-stepping bucket machinery with many phases.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid must be at least 1x1")
    rng = np.random.default_rng(seed)
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    srcs = [ids[:, :-1].ravel(), ids[:-1, :].ravel()]
    dsts = [ids[:, 1:].ravel(), ids[1:, :].ravel()]
    if diagonal_prob > 0:
        diag_src = ids[:-1, :-1].ravel()
        diag_dst = ids[1:, 1:].ravel()
        mask = rng.random(diag_src.size) < diagonal_prob
        srcs.append(diag_src[mask])
        dsts.append(diag_dst[mask])
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    if bidirectional:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return _finish(rows * cols, src, dst, weight_scheme, seed)


def random_dag(
    n: int,
    avg_degree: float = 4.0,
    *,
    weight_scheme: str = "random",
    seed: int = 0,
) -> CSRGraph:
    """Random DAG (edges only go from lower to higher id).

    Used by the vulnerability-detection example (control-flow graphs are
    close to DAGs) and by tests that need guaranteed acyclicity.
    """
    rng = np.random.default_rng(seed)
    m = int(round(avg_degree * n))
    a = rng.integers(0, n, size=m).astype(np.int64)
    b = rng.integers(0, n, size=m).astype(np.int64)
    src, dst = np.minimum(a, b), np.maximum(a, b)
    return _finish(n, src, dst, weight_scheme, seed)
