"""Builders: turn edge data from various sources into :class:`CSRGraph`.

The paper evaluates three weighting schemes (Table 1): random floats in
``(0, 1]`` for R21/LJ/WL, unit weights for the ``-U`` variants, and the
datasets' real weights for GAP-web/GAP-twitter.  :func:`assign_weights`
implements all three; the "real" scheme is synthesised as a heavy-tailed
log-normal, the standard stand-in for measured interaction strengths.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphFormatError, InvalidWeightError
from repro.graph.csr import CSRGraph

__all__ = [
    "from_edge_array",
    "from_edge_list",
    "from_networkx",
    "to_networkx",
    "assign_weights",
    "dedup_edges",
]


def from_edge_array(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | float = 1.0,
    *,
    dedup: bool = True,
    drop_self_loops: bool = True,
) -> CSRGraph:
    """Build a CSR graph from parallel source/target/weight arrays.

    Parameters
    ----------
    num_vertices:
        Vertex-set size ``n``; all ids must be in ``[0, n)``.
    src, dst:
        Integer arrays of equal length, one entry per directed edge.
    weights:
        Either an array parallel to ``src`` or a scalar applied to every
        edge.  Must be strictly positive.
    dedup:
        Collapse parallel edges keeping the minimum weight — the only weight
        a shortest-path computation can ever use.
    drop_self_loops:
        Remove ``u == v`` edges.  A positive-weight self-loop can never be on
        a simple shortest path, so this is lossless for every algorithm here.
    """
    src = np.ascontiguousarray(src, dtype=np.int64)
    dst = np.ascontiguousarray(dst, dtype=np.int64)
    if src.shape != dst.shape or src.ndim != 1:
        raise GraphFormatError("src and dst must be 1-D arrays of equal length")
    if np.isscalar(weights):
        w = np.full(src.size, float(weights), dtype=np.float64)
    else:
        w = np.ascontiguousarray(weights, dtype=np.float64)
        if w.shape != src.shape:
            raise GraphFormatError("weights must be parallel to src/dst")
    if src.size:
        lo = min(int(src.min()), int(dst.min()))
        hi = max(int(src.max()), int(dst.max()))
        if lo < 0 or hi >= num_vertices:
            raise GraphFormatError(
                f"edge endpoint out of range [0, {num_vertices})"
            )
        if not np.all(np.isfinite(w)) or float(w.min()) <= 0.0:
            raise InvalidWeightError("edge weights must be finite and > 0")

    if drop_self_loops and src.size:
        mask = src != dst
        src, dst, w = src[mask], dst[mask], w[mask]
    if dedup and src.size:
        src, dst, w = dedup_edges(src, dst, w)

    counts = np.bincount(src, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(src, kind="stable")
    return CSRGraph(indptr, dst[order], w[order], check=False)


def dedup_edges(
    src: np.ndarray, dst: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse parallel ``(u, v)`` edges to the single lightest one.

    Sorts edges by ``(u, v, w)`` and keeps the first of each group, so the
    survivor is the minimum-weight copy.  O(m log m).
    """
    order = np.lexsort((w, dst, src))
    src, dst, w = src[order], dst[order], w[order]
    first = np.ones(src.size, dtype=bool)
    first[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
    return src[first], dst[first], w[first]


def from_edge_list(
    num_vertices: int,
    edges: Iterable[tuple[int, int, float]] | Iterable[tuple[int, int]],
    *,
    default_weight: float = 1.0,
    dedup: bool = True,
    drop_self_loops: bool = True,
) -> CSRGraph:
    """Build a CSR graph from an iterable of ``(u, v)`` or ``(u, v, w)`` tuples."""
    srcs: list[int] = []
    dsts: list[int] = []
    ws: list[float] = []
    for edge in edges:
        if len(edge) == 2:
            u, v = edge  # type: ignore[misc]
            w = default_weight
        elif len(edge) == 3:
            u, v, w = edge  # type: ignore[misc]
        else:
            raise GraphFormatError(f"edge tuple of length {len(edge)}")
        srcs.append(int(u))
        dsts.append(int(v))
        ws.append(float(w))
    return from_edge_array(
        num_vertices,
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(ws, dtype=np.float64),
        dedup=dedup,
        drop_self_loops=drop_self_loops,
    )


def from_networkx(nx_graph, *, weight: str = "weight", default_weight: float = 1.0) -> CSRGraph:
    """Convert a networkx (Di)Graph with integer vertex labels ``0..n-1``.

    Undirected graphs are expanded to both edge directions.  Used by the
    hypothesis tests to cross-check against ``networkx.shortest_simple_paths``.
    """
    import networkx as nx

    n = nx_graph.number_of_nodes()
    if set(nx_graph.nodes) != set(range(n)):
        raise GraphFormatError("networkx graph must be labelled 0..n-1")
    edges = []
    for u, v, data in nx_graph.edges(data=True):
        w = float(data.get(weight, default_weight))
        edges.append((u, v, w))
        if not nx_graph.is_directed():
            edges.append((v, u, w))
    return from_edge_list(n, edges)


def to_networkx(graph: CSRGraph, *, weight: str = "weight"):
    """Convert a :class:`CSRGraph` to a ``networkx.DiGraph``."""
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    for u, v, w in graph.iter_edges():
        if g.has_edge(u, v):
            # keep the lighter parallel edge, matching dedup_edges semantics
            if g[u][v][weight] <= w:
                continue
        g.add_edge(u, v, **{weight: w})
    return g


def assign_weights(
    graph: CSRGraph,
    scheme: str,
    *,
    seed: int | None = 0,
) -> CSRGraph:
    """Re-weight a graph with one of the paper's three schemes (Table 1).

    ``"random"``
        i.i.d. floats in ``(0, 1]`` — the paper's weighting for R21/LJ/WL.
        (The paper says "normal distributions in the range (0, 1]"; we draw
        ``|N(0.5, 0.2)|`` clipped into ``(0, 1]`` to match.)
    ``"unit"``
        Every weight 1 — the paper's ``-U`` variants; makes KSP a hop-count
        problem with massive shortest-path ties.
    ``"real"``
        Heavy-tailed log-normal, a stand-in for the GAP datasets' measured
        weights.
    """
    rng = np.random.default_rng(seed)
    m = graph.num_edges
    if scheme == "unit":
        w = np.ones(m, dtype=np.float64)
    elif scheme == "random":
        w = np.abs(rng.normal(0.5, 0.2, size=m))
        w = np.clip(w, 1e-6, 1.0)
    elif scheme == "real":
        w = rng.lognormal(mean=0.0, sigma=1.0, size=m)
        w = np.clip(w, 1e-6, None)
    else:
        raise ValueError(f"unknown weight scheme {scheme!r}")
    return CSRGraph(graph.indptr.copy(), graph.indices.copy(), w, check=False)
