"""Graph file I/O: plain edge lists, DIMACS ``.gr``, and ``.npz`` binary.

The text formats exist so users can load real datasets (SNAP/KONECT edge
lists, DIMACS shortest-path challenge graphs); the ``.npz`` format is the
fast path for caching generated benchmark graphs between runs.
"""

from __future__ import annotations

import io
from pathlib import Path as FilePath

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import from_edge_array
from repro.graph.csr import CSRGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_dimacs",
    "write_dimacs",
    "save_npz",
    "load_npz",
]


def _open_text(path_or_file, mode: str):
    if isinstance(path_or_file, (str, FilePath)):
        return open(path_or_file, mode, encoding="utf-8"), True
    return path_or_file, False


def read_edge_list(
    path_or_file,
    *,
    num_vertices: int | None = None,
    comment: str = "#",
    default_weight: float = 1.0,
) -> CSRGraph:
    """Read a whitespace-separated ``u v [w]`` edge list (SNAP style).

    Vertex ids must be non-negative integers; ``num_vertices`` defaults to
    ``max id + 1``.  Lines starting with ``comment`` are skipped.
    """
    fh, owned = _open_text(path_or_file, "r")
    try:
        srcs: list[int] = []
        dsts: list[int] = []
        ws: list[float] = []
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"line {lineno}: expected 'u v [w]', got {line!r}"
                )
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            ws.append(float(parts[2]) if len(parts) == 3 else default_weight)
    finally:
        if owned:
            fh.close()
    if not srcs:
        return from_edge_array(
            num_vertices or 0,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    n = num_vertices if num_vertices is not None else max(max(srcs), max(dsts)) + 1
    return from_edge_array(
        n,
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(ws, dtype=np.float64),
    )


def write_edge_list(graph: CSRGraph, path_or_file) -> None:
    """Write ``u v w`` lines, one per edge, in CSR order."""
    fh, owned = _open_text(path_or_file, "w")
    try:
        fh.write(f"# {graph.num_vertices} vertices, {graph.num_edges} edges\n")
        for u, v, w in graph.iter_edges():
            fh.write(f"{u} {v} {w:.17g}\n")
    finally:
        if owned:
            fh.close()


def read_dimacs(path_or_file) -> CSRGraph:
    """Read a DIMACS shortest-path ``.gr`` file.

    Format: a ``p sp n m`` problem line, then ``a u v w`` arc lines with
    **1-based** vertex ids, which are shifted to this library's 0-based ids.
    """
    fh, owned = _open_text(path_or_file, "r")
    try:
        n = None
        srcs: list[int] = []
        dsts: list[int] = []
        ws: list[float] = []
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphFormatError(
                        f"line {lineno}: bad problem line {line!r}"
                    )
                n = int(parts[2])
            elif parts[0] == "a":
                if n is None:
                    raise GraphFormatError("arc line before problem line")
                if len(parts) != 4:
                    raise GraphFormatError(f"line {lineno}: bad arc {line!r}")
                srcs.append(int(parts[1]) - 1)
                dsts.append(int(parts[2]) - 1)
                ws.append(float(parts[3]))
            else:
                raise GraphFormatError(
                    f"line {lineno}: unknown record type {parts[0]!r}"
                )
    finally:
        if owned:
            fh.close()
    if n is None:
        raise GraphFormatError("missing 'p sp n m' problem line")
    return from_edge_array(
        n,
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(ws, dtype=np.float64),
    )


def write_dimacs(graph: CSRGraph, path_or_file, *, comment: str | None = None) -> None:
    """Write a DIMACS shortest-path ``.gr`` file (1-based vertex ids)."""
    fh, owned = _open_text(path_or_file, "w")
    try:
        if comment:
            for line in comment.splitlines():
                fh.write(f"c {line}\n")
        fh.write(f"p sp {graph.num_vertices} {graph.num_edges}\n")
        for u, v, w in graph.iter_edges():
            fh.write(f"a {u + 1} {v + 1} {w:.17g}\n")
    finally:
        if owned:
            fh.close()


def save_npz(graph: CSRGraph, path) -> None:
    """Save the three CSR arrays to a compressed ``.npz`` file."""
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
    )


def load_npz(path) -> CSRGraph:
    """Load a graph previously stored by :func:`save_npz`."""
    with np.load(path) as data:
        try:
            return CSRGraph(data["indptr"], data["indices"], data["weights"])
        except KeyError as exc:
            raise GraphFormatError(f"missing CSR array in {path}: {exc}") from exc
