"""The benchmark graph suite: scaled analogues of the paper's Table 1.

Eight graphs, same names and same weighting schemes as the paper, generated
from the structural family each real dataset belongs to (see DESIGN.md §1
for the substitution rationale):

=========  ===========================  =========  ========
Name       Family                       Weights    Paper's
=========  ===========================  =========  ========
R21        R-MAT                        random     Rmat21
R21U       R-MAT                        unit       Rmat21-U
LJ         preferential attachment      random     LiveJournal
LJU        preferential attachment      unit       LiveJournal-U
WL         copying model                random     Wikipedia
WLU        copying model                unit       Wikipedia-U
GW         copying model (denser)       real       GAP-web
GT         preferential attachment      real       GAP-twitter
=========  ===========================  =========  ========

Three scale presets keep runtimes sane in pure Python: ``tiny`` for unit
tests, ``small`` (default) for the benchmark harness, ``medium`` for
overnight runs.  Graphs are cached per (name, scale) within a process.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.generators import copying_model, preferential_attachment, rmat

__all__ = [
    "SUITE_NAMES",
    "SCALES",
    "GraphSpec",
    "suite_graph",
    "random_st_pairs",
]

SUITE_NAMES = ("R21", "R21U", "LJ", "LJU", "WL", "WLU", "GW", "GT")
SCALES = ("tiny", "small", "medium")


@dataclass(frozen=True)
class GraphSpec:
    """How one suite entry is generated at one scale."""

    name: str
    family: str
    weight_scheme: str
    params: tuple  # family-specific size parameters


# (rmat scale/edge-factor) or (n, out_degree) per preset
_SIZES = {
    "tiny": {"rmat": (8, 6), "pa": (300, 5), "copy": (300, 6)},
    "small": {"rmat": (11, 8), "pa": (3000, 8), "copy": (3500, 8)},
    "medium": {"rmat": (14, 12), "pa": (30000, 10), "copy": (35000, 12)},
}

_FAMILY = {
    "R21": ("rmat", "random"),
    "R21U": ("rmat", "unit"),
    "LJ": ("pa", "random"),
    "LJU": ("pa", "unit"),
    "WL": ("copy", "random"),
    "WLU": ("copy", "unit"),
    "GW": ("copy", "real"),
    "GT": ("pa", "real"),
}

# GW/GT are the paper's two billion-edge graphs; bump their size relative to
# the rest of the suite so the "large graph" vs "small graph" contrast the
# paper relies on survives the scaling.
_BIG = {"GW": 2.0, "GT": 2.0}


def _spec(name: str, scale: str) -> GraphSpec:
    if name not in _FAMILY:
        raise KeyError(f"unknown suite graph {name!r}; choose from {SUITE_NAMES}")
    if scale not in _SIZES:
        raise KeyError(f"unknown scale {scale!r}; choose from {SCALES}")
    family, weight_scheme = _FAMILY[name]
    a, b = _SIZES[scale][family]
    factor = _BIG.get(name, 1.0)
    if family == "rmat":
        params = (a, b)  # (scale, edge_factor) — factor not applied to 2**scale
    else:
        params = (int(a * factor), b)
    return GraphSpec(name=name, family=family, weight_scheme=weight_scheme, params=params)


@lru_cache(maxsize=32)
def suite_graph(name: str, scale: str = "small") -> CSRGraph:
    """Generate (and cache) one suite graph.

    Deterministic: the seed is derived from the graph name, so ``R21`` and
    ``R21U`` share structure and differ only in weights — exactly like the
    paper's paired ``-U`` variants.

    In-process results are memoised; set ``REPRO_CACHE_DIR`` to also cache
    the generated ``.npz`` on disk (worthwhile at ``medium`` scale, where
    generation takes tens of seconds).
    """
    import os

    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    if cache_dir:
        from pathlib import Path as FilePath

        from repro.graph.io import load_npz, save_npz

        path = FilePath(cache_dir) / f"suite-{name}-{scale}-v2.npz"
        if path.exists():
            return load_npz(path)
        graph = _generate(name, scale)
        path.parent.mkdir(parents=True, exist_ok=True)
        save_npz(graph, path)
        return graph
    return _generate(name, scale)


def _generate(name: str, scale: str) -> CSRGraph:
    spec = _spec(name, scale)
    # Paired variants (R21/R21U...) share a structure seed.  zlib.crc32 is
    # stable across processes, unlike hash() under PYTHONHASHSEED.
    import zlib

    seed = zlib.crc32(repr((spec.family, spec.params)).encode()) % (2**31)
    if spec.family == "rmat":
        g = rmat(
            spec.params[0],
            spec.params[1],
            weight_scheme=spec.weight_scheme,
            seed=seed,
        )
    elif spec.family == "pa":
        g = preferential_attachment(
            spec.params[0],
            spec.params[1],
            weight_scheme=spec.weight_scheme,
            seed=seed,
        )
    else:
        g = copying_model(
            spec.params[0],
            spec.params[1],
            weight_scheme=spec.weight_scheme,
            seed=seed,
        )
    return g


def random_st_pairs(
    graph: CSRGraph,
    count: int,
    *,
    seed: int = 0,
    min_hops: int = 2,
    max_tries: int = 200,
) -> list[tuple[int, int]]:
    """Pick ``count`` random (source, reachable target) pairs (paper §7.1).

    The paper samples 32 random source/reachable-target pairs per graph.  A
    target is accepted when it is reachable and at least ``min_hops`` edges
    away (adjacent pairs make degenerate KSP queries).  Deterministic for a
    given seed, so every algorithm is benchmarked on identical pairs.
    """
    from repro.sssp.dijkstra import dijkstra  # local import: avoid cycle at import time

    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    if n < 2:
        raise ValueError("graph too small to pick s-t pairs")
    pairs: list[tuple[int, int]] = []
    tries = 0
    while len(pairs) < count and tries < max_tries:
        tries += 1
        s = int(rng.integers(0, n))
        res = dijkstra(graph, s)
        reachable = np.flatnonzero(np.isfinite(res.dist))
        # hop count from parent chain is expensive; distance>0 plus not a
        # direct neighbour approximates min_hops cheaply
        targets, _ = graph.neighbors(s)
        candidates = np.setdiff1d(reachable, np.append(targets, s))
        if min_hops <= 1:
            candidates = np.setdiff1d(reachable, [s])
        if candidates.size == 0:
            continue
        t = int(candidates[rng.integers(0, candidates.size)])
        pairs.append((s, t))
    if len(pairs) < count:
        raise RuntimeError(
            f"could not find {count} reachable pairs in {max_tries} tries"
        )
    return pairs
