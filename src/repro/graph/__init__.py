"""Graph substrate: CSR storage, builders, generators, I/O, benchmark suite."""

from repro.graph.csr import CSRGraph
from repro.graph.build import (
    from_edge_array,
    from_edge_list,
    from_networkx,
    to_networkx,
    assign_weights,
)

__all__ = [
    "CSRGraph",
    "from_edge_array",
    "from_edge_list",
    "from_networkx",
    "to_networkx",
    "assign_weights",
]
