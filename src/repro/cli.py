"""``peek-bench`` — regenerate any of the paper's tables/figures from the
command line.

Examples::

    peek-bench --list
    peek-bench table3 --scale tiny --pairs 1 --deadline 20
    peek-bench fig04 fig09 --out results/
    peek-bench all --scale small
    peek-bench table3 --scale tiny --trace results/table3_trace.jsonl
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import ExperimentRunner
from repro.cancel import now

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="peek-bench",
        description="Regenerate the PeeK paper's tables and figures.",
    )
    p.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (fig01 fig04 fig06 fig08 fig09 fig10 fig11 "
        "fig12 table2 table3) or 'all'",
    )
    p.add_argument("--list", action="store_true", help="list experiment ids")
    p.add_argument(
        "--suite",
        action="store_true",
        help="print the benchmark graph suite's characterisation table",
    )
    p.add_argument(
        "--profile",
        metavar="GRAPH",
        help="print a per-stage PeeK timing breakdown on a suite graph "
        "(e.g. --profile GT)",
    )
    p.add_argument(
        "--k", type=int, default=32, help="K for --profile (default 32)"
    )
    p.add_argument(
        "--scale",
        default=None,
        choices=("tiny", "small", "medium"),
        help="benchmark suite scale (default: $REPRO_SCALE or 'small')",
    )
    p.add_argument(
        "--pairs", type=int, default=None, help="s-t pairs per graph"
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-run deadline in seconds (paper used 1 hour)",
    )
    p.add_argument(
        "--out", default="results", help="directory for the report files"
    )
    p.add_argument(
        "--trace",
        metavar="OUT.jsonl",
        help="record a span trace of everything this invocation runs and "
        "write it as JSONL (an ASCII stage tree is printed on exit)",
    )
    return p


def _print_suite(scale: str) -> None:
    from repro.bench.tables import format_table
    from repro.graph.metrics import summarize
    from repro.graph.suite import SUITE_NAMES, suite_graph

    rows = []
    for name in SUITE_NAMES:
        g = suite_graph(name, scale)
        rows.append([name] + summarize(g, diameter_samples=2).row())
    print(
        format_table(
            [
                "graph", "n", "m", "avg deg", "max deg",
                "deg gini", "w min", "w max", "eff diam",
            ],
            rows,
            title=f"Benchmark suite at scale={scale} (paper Table 1 analogues)",
        )
    )


def _print_profile(graph_name: str, scale: str, k: int) -> None:
    from repro.bench.profiling import stage_breakdown
    from repro.graph.suite import random_st_pairs, suite_graph

    g = suite_graph(graph_name, scale)
    (s, t), = random_st_pairs(g, 1, seed=2023)
    bd = stage_breakdown(g, s, t, k)
    print(
        f"PeeK stage breakdown on {graph_name} (scale={scale}, "
        f"{s}->{t}, K={k}):"
    )
    print(str(bd))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.trace:
        from repro.obs import Tracer, set_tracer

        set_tracer(Tracer())
    try:
        return _dispatch(args)
    finally:
        if args.trace:
            _flush_trace(args.trace)


def _dispatch(args) -> int:
    if args.suite:
        _print_suite(args.scale or "small")
        return 0
    if args.profile:
        _print_profile(args.profile, args.scale or "small", args.k)
        return 0
    if args.list or not args.experiments:
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s}  {doc}")
        return 0

    wanted = (
        list(ALL_EXPERIMENTS)
        if args.experiments == ["all"]
        else args.experiments
    )
    unknown = [e for e in wanted if e not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    kwargs = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.pairs is not None:
        kwargs["pairs_per_graph"] = args.pairs
    if args.deadline is not None:
        kwargs["deadline_seconds"] = args.deadline
    runner = ExperimentRunner(**kwargs)

    for name in wanted:
        t0 = now()
        report = ALL_EXPERIMENTS[name](runner)
        elapsed = now() - t0
        print(report.render())
        path = report.save(args.out)
        print(f"[{name} finished in {elapsed:.1f}s; saved to {path}]\n")
    return 0


def _flush_trace(out_path: str) -> None:
    """Write the collected spans as JSONL and print the stage tree."""
    from pathlib import Path

    from repro.obs import Tracer, get_tracer, render_tree, set_tracer, write_jsonl

    tracer = get_tracer()
    set_tracer(None)
    if not isinstance(tracer, Tracer):  # pragma: no cover - defensive
        return
    Path(out_path).parent.mkdir(parents=True, exist_ok=True)
    write_jsonl(tracer, out_path)
    print(f"[trace: {len(tracer.spans)} spans written to {out_path}]")
    print(render_tree(tracer.spans))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
