"""Path objects and helpers shared by every KSP algorithm in the library.

A *path* is an ordered vertex sequence; a *simple* path visits no vertex
twice.  All KSP algorithms in :mod:`repro.ksp` and :mod:`repro.core` return
:class:`Path` instances sorted by ``(distance, vertices)`` so results are
deterministic and directly comparable across algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Path",
    "reconstruct_path",
    "reconstruct_reverse_path",
    "is_simple",
    "path_distance",
    "costs_close",
    "INF",
    "COST_REL_TOL",
]

#: Distance value used for unreachable vertices throughout the library.
INF = float("inf")

#: Relative tolerance for path-cost comparisons across the library.  A path
#: cost is a sum of up to n float64 edge weights, so two independent
#: computations of the same cost can differ by a few ULPs per addition;
#: 1e-9 is ~1e6 times that slack on unit-scale weights while still far
#: below any genuine cost difference the generators can produce.
COST_REL_TOL = 1e-9


def costs_close(a: float, b: float, *, rel_tol: float = COST_REL_TOL) -> bool:
    """True when two path costs are equal up to accumulated rounding.

    This is the library's one sanctioned way to compare float costs for
    equality (lint rule RPR004 flags bare ``==``/``!=``).  Two infinities
    of the same sign compare equal; NaN compares unequal to everything.
    """
    if a == b:  # covers matching infinities and exact hits
        return True
    return abs(a - b) <= rel_tol * max(1.0, abs(a), abs(b))


@dataclass(frozen=True, order=True)
class Path:
    """An s→t path with its total weight.

    Ordering is ``(distance, vertices)`` which gives every KSP algorithm the
    same deterministic tie-break, so cross-algorithm tests can compare result
    lists directly instead of multisets.

    Attributes
    ----------
    distance:
        Sum of edge weights along the path.
    vertices:
        The vertex sequence, source first, target last.
    """

    distance: float
    vertices: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.vertices) == 0:
            raise ValueError("a Path must contain at least one vertex")

    @property
    def source(self) -> int:
        """First vertex of the path."""
        return self.vertices[0]

    @property
    def target(self) -> int:
        """Last vertex of the path."""
        return self.vertices[-1]

    @property
    def num_edges(self) -> int:
        """Number of edges on the path (``len(vertices) - 1``)."""
        return len(self.vertices) - 1

    def edges(self) -> list[tuple[int, int]]:
        """Return the path as a list of ``(u, v)`` edge tuples."""
        v = self.vertices
        return [(v[i], v[i + 1]) for i in range(len(v) - 1)]

    def is_simple(self) -> bool:
        """True when no vertex repeats (the KSP "loopless" condition)."""
        return len(set(self.vertices)) == len(self.vertices)

    def __len__(self) -> int:
        return len(self.vertices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        verts = "→".join(str(v) for v in self.vertices)
        return f"Path({self.distance:.6g}: {verts})"


def is_simple(vertices: Sequence[int]) -> bool:
    """Return True when ``vertices`` contains no duplicates."""
    return len(set(vertices)) == len(vertices)


def path_distance(vertices: Sequence[int], graph) -> float:
    """Recompute the weight of ``vertices`` on ``graph``.

    Used by tests to validate that an algorithm's reported distance matches
    the edges it claims to traverse.  Raises :class:`KeyError` if an edge on
    the path does not exist in the graph.
    """
    total = 0.0
    for u, v in zip(vertices[:-1], vertices[1:]):
        w = graph.edge_weight(u, v)
        if w is None:
            raise KeyError(f"edge {u}->{v} not present in graph")
        total += w
    return total


def reconstruct_path(parent: np.ndarray, source: int, vertex: int) -> list[int] | None:
    """Walk a forward-SSSP ``parent`` array from ``vertex`` back to ``source``.

    ``parent[source]`` must be ``source`` itself (the library convention) and
    unreached vertices must hold ``-1``.  Returns the vertex list
    ``[source, ..., vertex]`` or ``None`` when ``vertex`` was not reached.
    """
    if parent[vertex] < 0 and vertex != source:
        return None
    out = [int(vertex)]
    limit = len(parent) + 1  # cycle guard: a parent chain longer than n is corrupt
    while out[-1] != source:
        out.append(int(parent[out[-1]]))
        if len(out) > limit:
            raise RuntimeError("parent array contains a cycle")
    out.reverse()
    return out


def reconstruct_reverse_path(parent: np.ndarray, vertex: int, target: int) -> list[int] | None:
    """Walk a reverse-SSSP ``parent`` array from ``vertex`` forward to ``target``.

    For a reverse SSSP rooted at ``target``, ``parent[v]`` is the *next hop*
    of the shortest v→target path.  Returns ``[vertex, ..., target]`` or
    ``None`` when ``vertex`` cannot reach ``target``.
    """
    if parent[vertex] < 0 and vertex != target:
        return None
    out = [int(vertex)]
    limit = len(parent) + 1
    while out[-1] != target:
        out.append(int(parent[out[-1]]))
        if len(out) > limit:
            raise RuntimeError("parent array contains a cycle")
    return out


def concatenate(prefix: Iterable[int], suffix: Iterable[int]) -> tuple[int, ...]:
    """Join a prefix ending at vertex v with a suffix starting at v.

    The shared deviation vertex must appear exactly once in the result, so
    the first element of ``suffix`` is dropped after checking it matches the
    last element of ``prefix``.
    """
    pre = tuple(prefix)
    suf = tuple(suffix)
    if not pre or not suf:
        raise ValueError("prefix and suffix must be non-empty")
    if pre[-1] != suf[0]:
        raise ValueError(
            f"prefix ends at {pre[-1]} but suffix starts at {suf[0]}"
        )
    return pre + suf[1:]
