"""The one documented entry point: :func:`solve`.

Every KSP computation in the library — the paper's PeeK pipeline and all
comparison algorithms — runs through this front door:

>>> import repro
>>> from repro.graph.generators import grid_network
>>> g = grid_network(20, 20, seed=1)
>>> result = repro.solve(g, 0, 399, k=4)
>>> len(result.paths)
4
>>> repro.solve(g, 0, 399, k=4, algorithm="Yen").distances == result.distances
True

The per-algorithm convenience functions (``yen_ksp``, ``peek_ksp``, ...)
are thin aliases delegating here; use them only when the algorithm choice
is fixed at the call site.  Keyword arguments are validated against the
algorithm's :class:`~repro.ksp.registry.AlgorithmSpec` before anything is
constructed, so a typo fails with the list of valid options instead of a
traceback from deep inside a constructor.
"""

from __future__ import annotations

from repro.ksp.base import KSPResult
from repro.ksp.registry import ALGORITHMS, AlgorithmSpec, make_algorithm
from repro.obs.tracer import get_tracer
from repro.serve.query import Query, validate_query

__all__ = ["solve", "algorithms", "algorithm_spec"]


def solve(
    graph,
    source: int,
    target: int,
    k: int,
    *,
    algorithm: str = "PeeK",
    sanitize: bool | None = None,
    **opts,
) -> KSPResult:
    """Compute the K shortest simple ``source``→``target`` paths.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.csr.CSRGraph` (or any adjacency-array
        compatible view).
    source, target:
        Vertex ids of the query endpoints.  ``source == target`` raises
        :class:`~repro.errors.KSPError` — the library-wide rule, enforced
        identically here, in every algorithm constructor, in
        :func:`~repro.core.pruning.k_upper_bound_prune`, and in
        :class:`~repro.core.batch.BatchPeeK` (a zero-length "path" is not
        a simple path, and the deviation algorithms are undefined on it).
    k:
        Number of paths requested; fewer are returned when the graph has
        fewer simple s→t paths.
    algorithm:
        Registry name — one of :func:`algorithms`.  Default is the paper's
        contribution, ``"PeeK"``.
    sanitize:
        Run the full runtime-sanitizer battery around the solve (structural
        graph checks before, path/prune/workspace audits after; see
        :mod:`repro.analysis.sanitize` and ``docs/correctness_tooling.md``).
        ``None`` (the default) defers to the ``RPR_SANITIZE`` environment
        variable.  Results are bitwise-identical either way; a violated
        invariant raises :class:`~repro.errors.SanitizerError`.
    **opts:
        Algorithm options, validated against its
        :class:`~repro.ksp.registry.AlgorithmSpec`: ``deadline`` /
        ``use_workspace`` / ``lawler`` where supported, plus
        algorithm-specific keywords (e.g. PeeK's ``alpha``, ``prune``,
        ``compact``, ``kernel``).

    Returns
    -------
    KSPResult
        ``paths`` sorted by distance plus run statistics; PeeK returns its
        :class:`~repro.core.peek.PeeKResult` subclass carrying the prune
        and compaction artefacts.

    Notes
    -----
    The run executes under a ``solve`` span on the global tracer, so with
    a :class:`repro.obs.Tracer` installed the full stage tree (PeeK:
    ``prune`` / ``compact`` / ``ksp``) and per-kernel counters are
    captured — see ``docs/observability.md``.
    """
    # The shared request validator (range → source==target → k<1): one
    # taxonomy for this entry point and QueryServer.serve, by construction.
    validate_query(graph, Query(source, target, k))
    if sanitize is None:
        from repro.analysis.sanitize import sanitize_enabled_from_env

        sanitize = sanitize_enabled_from_env()
    tracer = get_tracer()
    with tracer.span("solve", algorithm=algorithm, k=k):
        if sanitize:
            from repro.analysis.sanitize import run_sanitized

            return run_sanitized(graph, source, target, k, algorithm, opts)
        solver = make_algorithm(algorithm, graph, source, target, **opts)
        return solver.run(k)


def algorithms() -> tuple[str, ...]:
    """The registry names accepted by :func:`solve`, in table order."""
    return tuple(ALGORITHMS)


def algorithm_spec(name: str) -> AlgorithmSpec:
    """The :class:`~repro.ksp.registry.AlgorithmSpec` for ``name``."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        ) from None
