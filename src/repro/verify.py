"""Independent verification of KSP results.

Downstream users of a KSP library need a cheap way to audit results —
especially when swapping algorithms or running on views/compacted graphs.
:func:`verify_ksp_result` checks every *locally checkable* property of a
result (path validity, simplicity, ordering, duplicates) in O(total path
length), and optionally proves *completeness* (no shorter simple path was
missed) by exhaustive enumeration on small graphs.

The benchmark harness runs the local checks on every recorded result; the
test suite uses the exhaustive mode as an extra oracle next to networkx.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.ksp.base import KSPResult

__all__ = ["VerificationReport", "verify_ksp_result", "enumerate_simple_paths"]


@dataclass
class VerificationReport:
    """The outcome of a verification run; falsy when anything failed."""

    ok: bool = True
    failures: list[str] = field(default_factory=list)

    def fail(self, message: str) -> None:
        self.ok = False
        self.failures.append(message)

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "OK" if self.ok else "; ".join(self.failures)


def verify_ksp_result(
    graph,
    source: int,
    target: int,
    result: KSPResult,
    *,
    rel_tol: float = 1e-9,
    check_completeness: bool = False,
    completeness_limit: int = 2000,
) -> VerificationReport:
    """Audit a KSP result against the graph it claims to describe.

    Local checks (always): every path starts at ``source``, ends at
    ``target``, is simple, uses only existing edges, reports the correct
    distance, the list is sorted, and no path repeats.

    ``check_completeness=True`` additionally enumerates *all* simple s→t
    paths (bounded by ``completeness_limit``; intended for test-sized
    graphs) and confirms the result equals the true top-K.
    """
    report = VerificationReport()
    seen: set[tuple[int, ...]] = set()
    prev_dist = float("-inf")
    for i, path in enumerate(result.paths):
        label = f"path #{i}"
        if path.vertices[0] != source:
            report.fail(f"{label} starts at {path.vertices[0]}, not {source}")
        if path.vertices[-1] != target:
            report.fail(f"{label} ends at {path.vertices[-1]}, not {target}")
        if not path.is_simple():
            report.fail(f"{label} is not simple")
        if path.vertices in seen:
            report.fail(f"{label} duplicates an earlier path")
        seen.add(path.vertices)
        total = 0.0
        for u, v in path.edges():
            w = graph.edge_weight(u, v)
            if w is None:
                report.fail(f"{label} uses missing edge {u}->{v}")
                total = float("nan")
                break
            total += w
        if not math.isnan(total) and abs(total - path.distance) > rel_tol * max(
            1.0, abs(total)
        ):
            report.fail(
                f"{label} claims distance {path.distance}, edges sum to {total}"
            )
        if path.distance < prev_dist - rel_tol:
            report.fail(f"{label} breaks the non-decreasing distance order")
        prev_dist = max(prev_dist, path.distance)

    if check_completeness:
        true_dists = sorted(
            d for _, d in enumerate_simple_paths(
                graph, source, target, limit=completeness_limit
            )
        )
        k = len(result.paths)
        expected = true_dists[:k]
        got = [p.distance for p in result.paths]
        if len(result.paths) < min(result.k_requested, len(true_dists)):
            report.fail(
                f"result has {len(result.paths)} paths but "
                f"{len(true_dists)} simple paths exist"
            )
        for i, (g_, e_) in enumerate(zip(got, expected)):
            if abs(g_ - e_) > rel_tol * max(1.0, abs(e_)):
                report.fail(
                    f"rank {i}: got distance {g_}, true top-K has {e_}"
                )
    return report


def enumerate_simple_paths(
    graph,
    source: int,
    target: int,
    *,
    limit: int = 2000,
    max_steps: int | None = None,
):
    """Yield ``(vertices, distance)`` for every simple s→t path (DFS).

    Exponential by nature — use only on test-sized graphs.  Two guards,
    both raising ``RuntimeError``: ``limit`` bounds the number of *paths*
    yielded, and ``max_steps`` bounds the DFS expansions — necessary
    because on dense graphs the search can wander exponentially many
    dead-end prefixes between yields (the path count alone is no time
    bound).  ``max_steps`` defaults to ``500·limit + 100_000``.
    """
    if max_steps is None:
        max_steps = 500 * limit + 100_000
    count = 0
    steps = 0
    stack: list[tuple[int, tuple[int, ...], float]] = [
        (source, (source,), 0.0)
    ]
    while stack:
        steps += 1
        if steps > max_steps:
            raise RuntimeError(
                f"exceeded {max_steps} DFS steps; the graph is too dense "
                "for exhaustive path enumeration"
            )
        u, path, dist = stack.pop()
        if u == target:
            count += 1
            if count > limit:
                raise RuntimeError(
                    f"more than {limit} simple paths; raise the limit"
                )
            yield path, dist
            continue
        targets, weights = graph.neighbors(u)
        for v, w in zip(targets.tolist(), weights.tolist()):
            if v not in path:
                stack.append((int(v), path + (int(v),), dist + float(w)))
