"""Metrics: calibration to wall-clock, GTEPS, speedup curves."""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.scheduler import MachineModel, simulate
from repro.parallel.workload import Workload

__all__ = ["Calibration", "calibrate", "gteps", "speedup_curve"]


@dataclass(frozen=True)
class Calibration:
    """Work-unit → seconds conversion anchored to a real measurement.

    ``tau`` is seconds per abstract work unit, obtained by dividing a real
    measured single-thread wall-clock time by the workload's total work.
    Every simulated parallel time in the benchmark reports is
    ``tau * simulated_units`` — the simulator only ever *redistributes*
    measured work, it never invents time.
    """

    tau: float

    def seconds(self, time_units: float) -> float:
        return self.tau * time_units


def calibrate(workload: Workload, measured_serial_seconds: float) -> Calibration:
    """Anchor the simulator: measured 1-thread seconds / serial work units."""
    units = max(workload.serial_time_units(), 1)
    return Calibration(tau=measured_serial_seconds / units)


def gteps(edges_traversed: int, seconds: float) -> float:
    """Giga-traversed-edges per second — the paper's Figure 10 metric."""
    if seconds <= 0:
        return 0.0
    return edges_traversed / seconds / 1e9


def speedup_curve(
    workload: Workload,
    thread_counts: list[int],
    model: MachineModel | None = None,
) -> dict[int, float]:
    """Simulated speedup over 1 thread for each requested thread count.

    This matches how the paper computes Figure 9: runtime at 1 thread
    divided by runtime at p threads, same machine, same workload.
    """
    base = simulate(workload, 1, model).time_units
    out: dict[int, float] = {}
    for p in thread_counts:
        t = simulate(workload, p, model).time_units
        out[p] = base / t if t > 0 else float("inf")
    return out
