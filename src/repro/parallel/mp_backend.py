"""Real-core shared-memory execution backend for Δ-stepping.

The cost-model simulator (:mod:`repro.parallel.scheduler`) *replays*
recorded work decompositions for hypothetical thread counts; this module is
the second execution backend the roadmap calls for: it actually runs the
frontier expansion of every bucket step across worker **processes**, with
the graph's split edge arrays and the ``dist``/``parent``/frontier state in
``multiprocessing.shared_memory`` blocks so nothing is pickled per phase.

Structure of one relaxation step (the gather → relax → commit decomposition
:class:`repro.analysis.race.MPBackendFootprints` declares):

* **gather** — the master writes the frontier into the shared frontier
  array and hands each worker a contiguous ``[lo, hi)`` chunk of it;
* **relax** — each worker expands its chunk's light or heavy edge ranges
  (reading the shared ``dist`` array, which no one writes during the
  phase) and emits ``(target, candidate, source)`` triples into its own
  private output region — no shared writes at all;
* **commit** — the master concatenates the chunks *in worker order* (which
  restores frontier order, making the batch independent of the worker
  count) and applies the single-writer
  :func:`~repro.sssp.delta_stepping._relax_batch` reduction.

Master-only commit keeps the backend race-free by construction and —
because the reassembled batch is byte-for-byte the one the vectorized
backend builds — bitwise-identical to the other backends for *any* number
of workers.  The trade-off is that the reduction stays serial; workers
parallelise the expansion and candidate arithmetic, which NumPy runs
GIL-free.  Speedup therefore needs real cores: on a single-CPU host the
backend degrades to the vectorized kernel plus IPC overhead (the bench
records ``cpu_count`` next to its timings for exactly this reason).
"""

from __future__ import annotations

import multiprocessing
import os
from multiprocessing import shared_memory

import numpy as np

from repro.errors import KSPError
from repro.paths import INF

__all__ = ["SharedMemoryDeltaExecutor"]


def _attach(name: str, size: int, dtype) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    shm = shared_memory.SharedMemory(name=name)
    return shm, np.ndarray((size,), dtype=dtype, buffer=shm.buf)


def _worker_main(spec: dict, task_q, done_q) -> None:
    """Worker loop: expand assigned frontier chunks until told to stop."""
    handles = []
    arrays = {}
    for field, size, dtype in spec["blocks"]:
        shm, arr = _attach(spec["names"][field], size, dtype)
        handles.append(shm)
        arrays[field] = arr
    begins = arrays["begins"]
    light_ends = arrays["light_ends"]
    ends = arrays["ends"]
    indices = arrays["indices"]
    weights = arrays["weights"]
    dist = arrays["dist"]
    frontier = arrays["frontier"]
    out_tgt = arrays["out_tgt"]
    out_src = arrays["out_src"]
    out_cand = arrays["out_cand"]
    # Per-worker scratch, sized to the largest possible chunk (the whole
    # vertex set) so the task loop never allocates it.
    scratch = np.zeros(max(begins.size, 1), dtype=np.int64)
    try:
        while True:
            task = task_q.get()
            if task is None:
                break
            light, lo, hi = task
            chunk = frontier[lo:hi]
            starts = begins[chunk] if light else light_ends[chunk]
            stops = light_ends[chunk] if light else ends[chunk]
            counts = stops - starts
            gathered = int(counts.sum())
            if gathered:
                block_starts = scratch[: chunk.size]
                block_starts[0] = 0
                np.cumsum(counts[:-1], out=block_starts[1:])
                edge_idx = (
                    np.arange(gathered, dtype=np.int64)
                    - np.repeat(block_starts, counts)
                    + np.repeat(starts, counts)
                )
                edge_src = np.repeat(chunk, counts)
                out_tgt[:gathered] = indices[edge_idx]
                out_src[:gathered] = edge_src
                out_cand[:gathered] = dist[edge_src] + weights[edge_idx]
            done_q.put((spec["worker_id"], gathered))
    finally:
        for shm in handles:
            shm.close()


class SharedMemoryDeltaExecutor:
    """Worker pool + shared-memory state for ``delta_stepping(backend="mp")``.

    Build once per (graph, Δ) and pass as ``delta_stepping(...,
    executor=...)`` to amortise process spawn and the one-time graph upload
    across many runs; or let the kernel create a throwaway one per call.
    Use as a context manager, or call :meth:`close` — the shared-memory
    blocks are unlinked on close, and ``__del__`` is a best-effort backstop.

    The executor doubles as the kernel's relaxation engine: the bucket
    driver calls :meth:`relax` with each frontier, exactly as it does the
    in-process engines.
    """

    def __init__(
        self,
        graph,
        num_workers: int = 2,
        *,
        delta: float | None = None,
        start_method: str | None = None,
    ) -> None:
        edge_mask = graph.adjacency_arrays()[4]
        if edge_mask is not None or not hasattr(graph, "light_heavy_split"):
            raise KSPError(
                "the mp backend needs a plain CSR graph with a light/heavy "
                "split; compaction views are not supported (run the "
                "vectorized backend on those)"
            )
        if delta is None:
            from repro.sssp.delta_stepping import choose_delta

            delta = choose_delta(graph)
        if int(num_workers) < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.graph = graph
        self.delta = float(delta)
        self.num_workers = int(num_workers)
        self.vertex_mask = None
        n, m = graph.num_vertices, graph.num_edges
        self.n, self.m = n, m

        begins, light_ends, ends, indices, weights = graph.light_heavy_split(
            self.delta
        )
        self._shms: list[shared_memory.SharedMemory] = []
        self.dist = self._share("dist", n, np.float64)
        self.parent = self._share("parent", n, np.int64)
        self._frontier = self._share("frontier", n, np.int64)
        for field, src_arr in (
            ("begins", begins),
            ("light_ends", light_ends),
            ("ends", ends),
            ("indices", indices),
            ("weights", weights),
        ):
            self._share(field, max(src_arr.size, 1), src_arr.dtype)[
                : src_arr.size
            ] = src_arr

        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
        ctx = multiprocessing.get_context(start_method)
        self._done_q = ctx.SimpleQueue()
        self._task_qs = []
        self._procs = []
        # per-worker private output regions sized for the worst-case batch
        out_blocks = [("out_tgt", np.int64), ("out_src", np.int64), ("out_cand", np.float64)]
        self._outs: list[dict[str, np.ndarray]] = []
        shared_fields = [
            ("begins", n, np.int64),
            ("light_ends", n, np.int64),
            ("ends", n, np.int64),
            ("indices", max(m, 1), np.int64),
            ("weights", max(m, 1), np.float64),
            ("dist", n, np.float64),
            ("frontier", n, np.int64),
        ]
        # startup fan-out, bounded by num_workers
        for w in range(self.num_workers):  # contracts: disable=CTR201 (bounded)
            outs = {
                field: self._share(f"{field}_{w}", max(m, 1), dtype)
                for field, dtype in out_blocks
            }
            self._outs.append(outs)
            blocks = shared_fields + [
                (field, max(m, 1), dtype) for field, dtype in out_blocks
            ]
            names = {field: self._name_of(field) for field, _, _ in shared_fields}
            names.update(
                {field: self._name_of(f"{field}_{w}") for field, dtype in out_blocks}
            )
            spec = {"worker_id": w, "blocks": blocks, "names": names}
            task_q = ctx.SimpleQueue()
            proc = ctx.Process(
                target=_worker_main,
                args=(spec, task_q, self._done_q),
                daemon=True,
            )
            proc.start()
            self._task_qs.append(task_q)
            self._procs.append(proc)
        self._closed = False

    # ------------------------------------------------------------------
    def _share(self, field: str, size: int, dtype) -> np.ndarray:
        nbytes = int(size) * np.dtype(dtype).itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        shm._repro_field = field  # noqa: SLF001 - tag for _name_of
        self._shms.append(shm)
        return np.ndarray((size,), dtype=dtype, buffer=shm.buf)

    def _name_of(self, field: str) -> str:
        for shm in self._shms:
            if getattr(shm, "_repro_field", None) == field:
                return shm.name
        raise KeyError(field)  # pragma: no cover - internal invariant

    # ------------------------------------------------------------------
    def check_compatible(self, graph, delta: float) -> None:
        """Reject reuse against a different graph or bucket width."""
        if graph is not self.graph:
            raise ValueError(
                "executor is bound to a different graph; create one per graph"
            )
        if float(delta) != self.delta:
            raise ValueError(
                f"executor was built for delta={self.delta}, got {delta}"
            )

    def begin_run(self, vertex_mask) -> None:
        """Reset the shared dist/parent state for a fresh source."""
        if self._closed:
            raise RuntimeError("executor is closed")
        self.vertex_mask = vertex_mask
        self.dist[:] = INF
        self.parent[:] = -1

    def relax(self, frontier, light: bool, label: str, recorder):
        """Engine protocol: relax one frontier batch across the workers."""
        f = int(frontier.size)
        self._frontier[:f] = frontier
        nw = self.num_workers
        step = -(-f // nw) if f else 0  # ceil-divide; empty chunks still run
        bounds = [min(w * step, f) for w in range(nw + 1)]
        for w in range(nw):
            self._task_qs[w].put((light, bounds[w], bounds[w + 1]))
        sizes = [0] * nw
        for _ in range(nw):
            wid, gathered = self._done_q.get()
            sizes[wid] = gathered
        live = [w for w in range(nw) if sizes[w]]
        if not live:
            return np.empty(0, dtype=np.int64), 0
        # concatenating in worker order restores frontier order, so the
        # batch (and thus the result) is independent of the worker count
        targets = np.concatenate([self._outs[w]["out_tgt"][: sizes[w]] for w in live])
        sources = np.concatenate([self._outs[w]["out_src"][: sizes[w]] for w in live])
        cands = np.concatenate([self._outs[w]["out_cand"][: sizes[w]] for w in live])
        if recorder is not None and hasattr(recorder, "record_mp_step"):
            chunk_sources = [
                np.asarray(frontier[bounds[w] : bounds[w + 1]]) for w in range(nw)
            ]
            chunk_targets = [
                self._outs[w]["out_tgt"][: sizes[w]].copy() for w in range(nw)
            ]
        if self.vertex_mask is not None:
            ok = self.vertex_mask[targets]
            targets, sources, cands = targets[ok], sources[ok], cands[ok]
        from repro.sssp.delta_stepping import _relax_batch

        improved = _relax_batch(self.dist, self.parent, targets, cands, sources)
        if recorder is not None:
            if hasattr(recorder, "record_mp_step"):
                recorder.record_mp_step(
                    label, chunk_sources, chunk_targets, improved
                )
            else:
                recorder.record_step(label, sources, targets, improved)
        return improved, int(targets.size)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and unlink every shared-memory block."""
        if self._closed:
            return
        self._closed = True
        for q in self._task_qs:
            try:
                q.put(None)
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1)
        # drop our views before closing the blocks they point into
        self.dist = self.parent = self._frontier = None
        self._outs = []
        # shutdown must release every shared block even past a deadline
        for shm in self._shms:  # contracts: disable=CTR201 (bounded)
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._shms = []

    def __enter__(self) -> "SharedMemoryDeltaExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"{self.num_workers} workers"
        return (
            f"SharedMemoryDeltaExecutor(n={self.n}, m={self.m}, "
            f"delta={self.delta:.4g}, {state}, host_cpus={os.cpu_count()})"
        )
