"""Parallel execution model (paper §6).

The paper classifies every PeeK job as data parallel, embarrassingly
parallel, or task parallel (Figure 7) and reports scalability on a 32-thread
shared-memory machine (Figure 9) and a 1,024-core cluster (Figure 10).

This reproduction cannot spin 32 real threads to any effect (pure Python on
a single host core), so the parallel claims are reproduced by an
**instrumented cost-model simulator**: the real algorithms run once and log
their actual work decomposition — Δ-stepping bucket phases, compaction
chunks, the per-deviation SSSP task lists of the KSP stage — and a
scheduler replays that structure for any thread count, charging
synchronisation and load-imbalance costs.  Simulated times are anchored to
real measured serial seconds via :func:`repro.parallel.metrics.calibrate`.
See DESIGN.md §1 for the substitution rationale.

Beside the simulator there is now one *real* execution backend:
:mod:`repro.parallel.mp_backend` runs Δ-stepping's frontier relaxation
across worker processes over ``multiprocessing.shared_memory`` arrays
(``delta_stepping(..., backend="mp")``), bitwise-identical to the serial
kernel for any worker count.  It needs real cores to show speedup; the
simulator remains the instrument for the paper's 32-thread curves.
"""

from repro.parallel.workload import (
    JobKind,
    Phase,
    TaskPhase,
    Workload,
    pruning_workload,
    compaction_workload,
    ksp_workload,
    peek_workload,
    baseline_ksp_workload,
)
from repro.parallel.scheduler import MachineModel, SimReport, simulate
from repro.parallel.metrics import calibrate, gteps, speedup_curve
from repro.parallel.mp_backend import SharedMemoryDeltaExecutor

__all__ = [
    "JobKind",
    "Phase",
    "TaskPhase",
    "Workload",
    "pruning_workload",
    "compaction_workload",
    "ksp_workload",
    "peek_workload",
    "baseline_ksp_workload",
    "MachineModel",
    "SimReport",
    "SharedMemoryDeltaExecutor",
    "simulate",
    "calibrate",
    "gteps",
    "speedup_curve",
]
