"""Workload descriptions: what the parallel simulator schedules.

A :class:`Workload` is an ordered list of phases, each tagged with the
paper's job class (Figure 7):

* ``DATA`` — one bulk operation split across all workers with a barrier at
  the end (a Δ-stepping bucket step, the spSum pass, the parallel sort);
* ``EMBARRASSING`` — independent chunks, no communication until the final
  join (path validation, both compaction builds);
* ``TASK`` — a set of unequal independent tasks list-scheduled onto thread
  groups (the concurrent SSSPs of one KSP iteration — the *outer* level of
  the paper's two-level strategy);
* ``SERIAL`` — inherently sequential work (candidate-pool heap operations,
  NC's colour propagation).

The ``*_workload`` builders translate the statistics objects the real
algorithms produce into phases, so the simulator replays *measured* work,
never synthetic numbers.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

__all__ = [
    "JobKind",
    "Footprint",
    "Phase",
    "TaskPhase",
    "Workload",
    "pruning_workload",
    "compaction_workload",
    "ksp_workload",
    "peek_workload",
    "baseline_ksp_workload",
]


class JobKind(enum.Enum):
    """The paper's Figure 7 job classes."""

    DATA = "data"
    EMBARRASSING = "embarrassing"
    TASK = "task"
    SERIAL = "serial"


@dataclass(frozen=True)
class Footprint:
    """Declared memory accesses of one concurrent task within a phase.

    ``reads``/``writes`` are tuples of hashable resource keys — the
    convention is ``(array_name, index)`` pairs like ``("dist", 5)``.
    Phases that declare one footprint per task can be audited for
    write-write and read-write conflicts by
    :func:`repro.analysis.race.check_workload`; phases that declare none
    are simply trusted, as before.
    """

    reads: tuple = ()
    writes: tuple = ()


@dataclass(frozen=True)
class Phase:
    """One barrier-delimited step of ``work`` abstract units.

    ``footprints`` (optional) declares per-task read/write sets — one
    :class:`Footprint` per concurrent task — for race auditing.
    """

    kind: JobKind
    work: int
    label: str = ""
    footprints: tuple = ()


@dataclass(frozen=True)
class TaskPhase:
    """A task-parallel step: independent tasks of the given sizes.

    For KSP iterations, each task is one deviation's suffix search, and the
    two-level strategy may split a task further across an inner thread
    group (the scheduler handles that).  ``footprints`` is the same
    optional per-task access declaration as on :class:`Phase`.
    """

    tasks: tuple[int, ...]
    label: str = ""
    kind: JobKind = JobKind.TASK
    footprints: tuple = ()

    @property
    def work(self) -> int:
        return sum(self.tasks)


@dataclass
class Workload:
    """An ordered phase list; concatenable with ``+``."""

    phases: list = field(default_factory=list)
    label: str = ""

    def __add__(self, other: "Workload") -> "Workload":
        return Workload(
            phases=self.phases + other.phases,
            label=self.label or other.label,
        )

    @property
    def total_work(self) -> int:
        return sum(p.work for p in self.phases)

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    def serial_time_units(self) -> int:
        """Time on one worker = total work (no overheads by definition)."""
        return self.total_work


# ----------------------------------------------------------------------
# builders from the library's statistics objects
# ----------------------------------------------------------------------


def pruning_workload(prune_stats) -> Workload:
    """Phases of one K-upper-bound pruning run (§6.1, first row block).

    The two Δ-stepping SSSPs contribute one DATA phase per bucket step
    (their real logged ``phase_work``); the spSum pass and prune scan are
    single DATA phases; the sort is DATA with its n·log n work; the path
    validation is EMBARRASSING (the paper's concurrent hash-table probes).
    """
    phases: list = []
    for w in prune_stats.sssp_phase_work:
        if w > 0:
            phases.append(Phase(JobKind.DATA, w, "sssp-bucket"))
    if not prune_stats.sssp_phase_work and (
        prune_stats.edges_relaxed or prune_stats.vertices_settled
    ):
        # Dijkstra kernel: no bucket structure — inherently serial settles
        phases.append(
            Phase(
                JobKind.SERIAL,
                prune_stats.edges_relaxed + prune_stats.vertices_settled,
                "sssp-serial",
            )
        )
    phases.append(Phase(JobKind.DATA, prune_stats.sum_work, "spsum"))
    phases.append(Phase(JobKind.DATA, prune_stats.sort_work, "sort"))
    if prune_stats.validation_work:
        phases.append(
            Phase(JobKind.EMBARRASSING, prune_stats.validation_work, "validate")
        )
    phases.append(Phase(JobKind.DATA, prune_stats.prune_scan_work, "prune-scan"))
    return Workload(phases=phases, label="k-upper-bound-pruning")


def compaction_workload(compaction_result) -> Workload:
    """One embarrassingly-parallel build phase (§6.1, middle block)."""
    return Workload(
        phases=[
            Phase(
                JobKind.EMBARRASSING,
                compaction_result.build_work,
                f"compact-{compaction_result.strategy}",
            )
        ],
        label="adaptive-graph-compaction",
    )


def ksp_workload(ksp_stats) -> Workload:
    """The KSP stage: one TASK phase per outer iteration (§6.1, last block).

    ``iteration_tasks[i]`` holds the real work of each independent suffix
    search of iteration *i* — these run concurrently in the paper's outer
    level.  ``init_work`` (first SSSP + reverse tree) is a DATA phase: it is
    a parallel Δ-stepping in the paper's design.  Serial per-iteration work
    (pool operations, NC colouring) stays serial.
    """
    phases: list = [Phase(JobKind.DATA, max(ksp_stats.init_work, 1), "ksp-init")]
    for i, tasks in enumerate(ksp_stats.iteration_tasks):
        if tasks:
            phases.append(TaskPhase(tuple(tasks), f"iter-{i}"))
        serial = (
            ksp_stats.iteration_serial[i]
            if i < len(ksp_stats.iteration_serial)
            else 0
        )
        if serial:
            phases.append(Phase(JobKind.SERIAL, serial, f"iter-{i}-serial"))
    return Workload(phases=phases, label="ksp-computation")


def peek_workload(peek_result) -> Workload:
    """The full PeeK pipeline workload from a :class:`PeeKResult`."""
    wl = Workload(label="peek")
    if peek_result.prune is not None:
        wl = wl + pruning_workload(peek_result.prune.stats)
    if peek_result.compaction is not None:
        wl = wl + compaction_workload(peek_result.compaction)
    wl = wl + ksp_workload(peek_result.stats)
    wl.label = "peek"
    return wl


def baseline_ksp_workload(ksp_stats) -> Workload:
    """Workload of a plain baseline run (Yen/NC/OptYen) — KSP phases only."""
    wl = ksp_workload(ksp_stats)
    wl.label = "baseline-ksp"
    return wl
