"""The shared-memory scheduling simulator.

Given a :class:`~repro.parallel.workload.Workload` (real, measured work
decomposition) and a thread count ``p``, compute the makespan in abstract
work units under a simple but standard machine model:

* a DATA phase of work ``w`` costs ``max(w / p, w_min) + σ(p)`` — perfect
  splitting up to a minimum useful chunk, plus one barrier;
* an EMBARRASSING phase costs ``w / p + σ(p)/2`` — no intermediate
  synchronisation, only the final join;
* a TASK phase implements the paper's **two-level strategy**: with ``l``
  tasks and ``p`` threads, each task gets an inner group of
  ``max(1, ⌊p/l⌋)`` threads (§6.2: "we assign ⌊p/l_i⌋ threads for each
  SSSP"); a task of work ``w`` on a group of ``q`` threads takes
  ``w / inner_speedup(q)``; the resulting task durations are list-scheduled
  (LPT) onto the ``min(l, p)`` concurrent groups;
* a SERIAL phase costs its full work regardless of ``p``.

``σ(p) = sync_overhead · log2(p)`` models tree barriers.  The inner
speedup is sublinear (``q / (1 + inner_penalty·(q-1))``) because the inner
level is a Δ-stepping whose bucket steps are short on pruned graphs.

The defaults are calibrated so a PeeK run over the benchmark suite scales
like the paper's Figure 9 (≈4× at 32 threads); they are explicit, inspectable
parameters — not hidden curve-fitting — and the ablation benchmark sweeps
them.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.obs.tracer import get_tracer
from repro.parallel.workload import JobKind, Phase, TaskPhase, Workload

__all__ = ["MachineModel", "SimReport", "simulate"]


@dataclass(frozen=True)
class MachineModel:
    """Cost parameters of the simulated shared-memory machine.

    Attributes
    ----------
    sync_overhead:
        Work units charged per barrier per log2(p) — OpenMP barrier plus
        the cache traffic of a bucket hand-off.
    min_chunk:
        Smallest useful per-thread slice of a DATA phase; below this the
        extra threads idle (fork/join cost exceeds the work).
    task_spawn:
        Work units to dispatch one task in a TASK phase.
    inner_penalty:
        Sublinearity of the inner (per-SSSP) level: efficiency of a
        q-thread group is ``1 / (1 + inner_penalty·(q-1))``.
    """

    sync_overhead: float = 32.0
    min_chunk: float = 400.0
    task_spawn: float = 8.0
    inner_penalty: float = 0.35
    #: memory-bandwidth ceiling: graph traversals are bandwidth-bound, so a
    #: data-parallel phase cannot speed up past this factor no matter how
    #: many threads it gets (the paper's own Fig 9 saturates near 4-5x on a
    #: 2-socket Xeon for the same reason)
    bandwidth_cap: float = 7.0

    def barrier(self, p: int) -> float:
        return self.sync_overhead * math.log2(p) if p > 1 else 0.0

    def inner_speedup(self, q: int) -> float:
        if q <= 1:
            return 1.0
        return q / (1.0 + self.inner_penalty * (q - 1))


@dataclass
class SimReport:
    """Simulated makespan with a per-phase breakdown."""

    threads: int
    time_units: float
    total_work: int
    phase_times: list[tuple[str, float]] = field(default_factory=list)

    @property
    def speedup_vs_serial(self) -> float:
        """Speedup relative to one thread running the same workload."""
        return self.total_work / self.time_units if self.time_units else 1.0


def _task_phase_time(phase: TaskPhase, p: int, model: MachineModel) -> float:
    """Two-level scheduling of one KSP iteration's suffix searches."""
    tasks = sorted(phase.tasks, reverse=True)
    l = len(tasks)
    if l == 0:
        return 0.0
    if p <= 1:
        # serial execution dispatches nothing: exactly the logged work
        return float(sum(tasks))
    groups = min(l, p)
    inner_threads = max(1, p // l)
    s_inner = model.inner_speedup(inner_threads)
    # LPT list scheduling on `groups` slots
    slots = [0.0] * groups
    heapq.heapify(slots)
    for w in tasks:
        earliest = heapq.heappop(slots)
        heapq.heappush(slots, earliest + w / s_inner + model.task_spawn)
    # only the threads actually engaged synchronise at the iteration end;
    # the aggregate is still bandwidth-bound (all groups share the memory
    # system), which is why parallel OptYen gains only ~2-3x over serial in
    # the paper's own Tables 2 vs 3
    engaged = min(p, groups * inner_threads)
    makespan = max(max(slots), float(sum(tasks)) / model.bandwidth_cap)
    return makespan + model.barrier(engaged)


def _phase_time(phase, p: int, model: MachineModel) -> float:
    """Cost of one phase on a team of *up to* ``p`` threads.

    A real runtime never uses threads that hurt (it can always leave them
    idle), so the cost is the best over candidate team sizes ≤ p — which
    also makes simulated time provably monotone in the thread count
    (property-tested).
    """
    exact_up_to = min(p, 128)
    candidates = list(range(1, exact_up_to + 1))
    if p > exact_up_to:
        candidates.append(p)
    return min(_phase_time_exact(phase, c, model) for c in candidates)


def _phase_time_exact(phase, p: int, model: MachineModel) -> float:
    if isinstance(phase, TaskPhase):
        return _task_phase_time(phase, p, model)
    assert isinstance(phase, Phase)
    w = float(phase.work)
    if phase.kind is JobKind.SERIAL or p <= 1:
        return w
    if phase.kind is JobKind.DATA:
        # a phase smaller than min_chunk·p engages fewer threads — an OpenMP
        # runtime does not fork (or barrier) workers that get no iterations —
        # and a bandwidth-bound traversal cannot scale past the memory system
        cap_threads = max(1, math.ceil(model.bandwidth_cap))
        effective_p = min(p, cap_threads, max(1, int(w // model.min_chunk) or 1))
        speed = min(float(effective_p), model.bandwidth_cap)
        return w / speed + model.barrier(effective_p)
    if phase.kind is JobKind.EMBARRASSING:
        cap_threads = max(1, math.ceil(model.bandwidth_cap))
        effective_p = min(p, cap_threads, max(1, int(w // model.min_chunk) or 1))
        speed = min(float(effective_p), model.bandwidth_cap)
        return w / speed + model.barrier(effective_p) / 2.0
    raise ValueError(f"unknown phase kind {phase.kind}")


def simulate(
    workload: Workload, threads: int, model: MachineModel | None = None
) -> SimReport:
    """Replay ``workload`` on ``threads`` simulated threads.

    Returns the makespan in the same abstract work units the algorithms
    logged; convert to seconds with
    :func:`repro.parallel.metrics.calibrate`.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    model = model or MachineModel()
    tracer = get_tracer()
    with tracer.span("parallel.simulate", threads=threads) as span:
        phase_times: list[tuple[str, float]] = []
        total = 0.0
        for phase in workload.phases:
            t = _phase_time(phase, threads, model)
            label = getattr(phase, "label", "") or phase.kind.value
            phase_times.append((label, t))
            total += t
        if tracer.enabled:
            span.add("parallel.phases", len(phase_times))
            span.set_gauge("parallel.time_units", total)
    return SimReport(
        threads=threads,
        time_units=total,
        total_work=workload.total_work,
        phase_times=phase_times,
    )
