"""PeeK: A Prune-Centric Approach for K Shortest Path Computation (SC '23).

A from-scratch Python reproduction of the paper's system and of every
substrate it depends on.  The front door is :func:`repro.solve` — one
call that runs any registered algorithm:

>>> import repro
>>> from repro.graph.generators import grid_network
>>> g = grid_network(20, 20, seed=1)
>>> result = repro.solve(g, 0, 399, k=4)           # PeeK by default
>>> len(result.paths)
4
>>> repro.solve(g, 0, 399, k=4, algorithm="Yen").distances == result.distances
True

* :func:`repro.solve` / :func:`repro.algorithms` — the single entry point
  and the registry of everything it can run.
* :func:`repro.peek_ksp` / :class:`repro.PeeK` — the paper's contribution.
* :mod:`repro.ksp` — the five comparison algorithms (Yen, NC, OptYen, SB,
  SB*) plus the PNC and ``SHORTEST k GROUP`` extensions.
* :mod:`repro.serve` — the deadline-aware serving layer:
  :class:`repro.QueryServer` gives every query a budget all stages
  observe and a defined outcome (graceful degradation; docs/serving.md).
* :mod:`repro.obs` — span-based tracing/metrics; wrap any call in
  ``use_tracer(Tracer())`` to see where the time and work went.
* :mod:`repro.graph` — CSR storage, generators, I/O, benchmark suite.
* :mod:`repro.core` — K-upper-bound pruning and adaptive compaction,
  usable as a preprocessing stage for *any* KSP algorithm.
* :mod:`repro.parallel` / :mod:`repro.distributed` — the instrumented
  parallel/distributed execution models (see DESIGN.md for how these
  substitute for the paper's OpenMP/MPI hardware).
* :mod:`repro.bench` — the harness that regenerates every table and figure.
"""

from repro.api import algorithm_spec, algorithms, solve
from repro.core.peek import PeeK, PeeKResult, peek_ksp
from repro.core.pruning import k_upper_bound_prune
from repro.graph.csr import CSRGraph
from repro.ksp import (
    ALGORITHMS,
    AlgorithmSpec,
    make_algorithm,
    nc_ksp,
    optyen_ksp,
    pnc_ksp,
    sb_ksp,
    sb_star_ksp,
    shortest_k_groups,
    yen_ksp,
)
from repro.obs import (
    NOOP_TRACER,
    NoOpTracer,
    Span,
    Tracer,
    get_tracer,
    render_tree,
    set_tracer,
    use_tracer,
    write_jsonl,
)
from repro.paths import Path
from repro.serve import Query, QueryServer, ServeResult

__version__ = "1.5.0"

__all__ = [
    "solve",
    "algorithms",
    "algorithm_spec",
    "PeeK",
    "PeeKResult",
    "peek_ksp",
    "k_upper_bound_prune",
    "CSRGraph",
    "Path",
    "ALGORITHMS",
    "AlgorithmSpec",
    "make_algorithm",
    "yen_ksp",
    "nc_ksp",
    "optyen_ksp",
    "sb_ksp",
    "sb_star_ksp",
    "pnc_ksp",
    "shortest_k_groups",
    "Query",
    "QueryServer",
    "ServeResult",
    "Span",
    "Tracer",
    "NoOpTracer",
    "NOOP_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "write_jsonl",
    "render_tree",
    "__version__",
]
