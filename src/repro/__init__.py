"""PeeK: A Prune-Centric Approach for K Shortest Path Computation (SC '23).

A from-scratch Python reproduction of the paper's system and of every
substrate it depends on.  The three public entry points most users want:

>>> from repro import peek_ksp
>>> from repro.graph.generators import grid_network
>>> g = grid_network(20, 20, seed=1)
>>> result = peek_ksp(g, 0, 399, k=4)
>>> len(result.paths)
4

* :func:`repro.peek_ksp` / :class:`repro.PeeK` — the paper's contribution.
* :mod:`repro.ksp` — the five comparison algorithms (Yen, NC, OptYen, SB,
  SB*) plus the PNC and ``SHORTEST k GROUP`` extensions.
* :mod:`repro.graph` — CSR storage, generators, I/O, benchmark suite.
* :mod:`repro.core` — K-upper-bound pruning and adaptive compaction,
  usable as a preprocessing stage for *any* KSP algorithm.
* :mod:`repro.parallel` / :mod:`repro.distributed` — the instrumented
  parallel/distributed execution models (see DESIGN.md for how these
  substitute for the paper's OpenMP/MPI hardware).
* :mod:`repro.bench` — the harness that regenerates every table and figure.
"""

from repro.core.peek import PeeK, PeeKResult, peek_ksp
from repro.core.pruning import k_upper_bound_prune
from repro.graph.csr import CSRGraph
from repro.ksp import (
    ALGORITHMS,
    make_algorithm,
    nc_ksp,
    optyen_ksp,
    pnc_ksp,
    sb_ksp,
    sb_star_ksp,
    shortest_k_groups,
    yen_ksp,
)
from repro.paths import Path

__version__ = "1.0.0"

__all__ = [
    "PeeK",
    "PeeKResult",
    "peek_ksp",
    "k_upper_bound_prune",
    "CSRGraph",
    "Path",
    "ALGORITHMS",
    "make_algorithm",
    "yen_ksp",
    "nc_ksp",
    "optyen_ksp",
    "sb_ksp",
    "sb_star_ksp",
    "pnc_ksp",
    "shortest_k_groups",
    "__version__",
]
