"""Profiling helpers: where does a PeeK query actually spend its time?

The HPC-Python workflow this repo follows is *measure first*: these
helpers give a per-stage wall-clock breakdown of the PeeK pipeline and a
cProfile summary of any callable, so a user tuning α, Δ, or K can see
which stage moved.

:func:`stage_breakdown` is a thin view over the span layer: it runs the
real :class:`~repro.core.peek.PeeK` pipeline under a private
:class:`~repro.obs.Tracer` and reads the ``prune`` / ``compact`` / ``ksp``
stage spans back — the *same* spans every traced production run emits, so
the profile and the trace can never disagree.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass, field

from repro.obs.tracer import Tracer, use_tracer

__all__ = ["StageBreakdown", "stage_breakdown", "profile_to_text"]


@dataclass
class StageBreakdown:
    """Wall-clock seconds per PeeK stage for one query."""

    prune_seconds: float
    compact_seconds: float
    ksp_seconds: float
    total_seconds: float
    strategy: str
    remaining_edges: int
    distances: list[float] = field(default_factory=list)

    def rows(self) -> list[tuple[str, float, float]]:
        """(stage, seconds, share) rows for table rendering."""
        total = max(self.total_seconds, 1e-12)
        return [
            ("k-upper-bound pruning", self.prune_seconds, self.prune_seconds / total),
            (f"compaction ({self.strategy})", self.compact_seconds, self.compact_seconds / total),
            ("KSP on remnant", self.ksp_seconds, self.ksp_seconds / total),
        ]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"total {self.total_seconds:.4f}s, {self.remaining_edges} edges kept"]
        for stage, secs, share in self.rows():
            lines.append(f"  {stage:<28} {secs:8.4f}s  {share:6.1%}")
        return "\n".join(lines)


def stage_breakdown(graph, source: int, target: int, k: int, **peek_kwargs) -> StageBreakdown:
    """Run the full PeeK pipeline once, reading per-stage times off its spans.

    Accepts the same keyword arguments as :class:`repro.core.peek.PeeK`
    (``alpha``, ``kernel``, ``strong_edge_prune``, ...); an unknown one
    raises ``TypeError`` before any work is done.  Unlike the pre-span
    implementation this times the *actual* pipeline — workspace reuse,
    ablation flags and all — not a re-enactment of it.
    """
    from repro.core.peek import PeeK
    from repro.serve.query import Query, validate_query

    validate_query(graph, Query(source=source, target=target, k=k))
    pipeline = PeeK(graph, source, target, **peek_kwargs)
    with use_tracer(Tracer()) as tracer:
        result = pipeline.run(k)

    def stage_seconds(name: str) -> float:
        return sum(s.duration for s in tracer.find(name))

    t_prune = stage_seconds("prune")
    t_compact = stage_seconds("compact")
    t_ksp = stage_seconds("ksp")
    comp = result.compaction
    return StageBreakdown(
        prune_seconds=t_prune,
        compact_seconds=t_compact,
        ksp_seconds=t_ksp,
        total_seconds=t_prune + t_compact + t_ksp,
        strategy=comp.strategy if comp else "none",
        remaining_edges=comp.remaining_edges if comp else graph.num_edges,
        distances=[p.distance for p in result.paths],
    )


def profile_to_text(fn, *args, top: int = 15, sort: str = "cumulative", **kwargs) -> str:
    """cProfile a callable and return its top functions as text.

    >>> from repro.graph.generators import grid_network
    >>> from repro.core.peek import peek_ksp
    >>> g = grid_network(10, 10, seed=0)
    >>> text = profile_to_text(peek_ksp, g, 0, 99, 4, top=5)
    >>> "function calls" in text
    True
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn(*args, **kwargs)
    finally:
        profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats(sort).print_stats(top)
    return buf.getvalue()
