"""Profiling helpers: where does a PeeK query actually spend its time?

The HPC-Python workflow this repo follows is *measure first*: these
helpers give a per-stage wall-clock breakdown of the PeeK pipeline and a
cProfile summary of any callable, so a user tuning α, Δ, or K can see
which stage moved.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass, field

__all__ = ["StageBreakdown", "stage_breakdown", "profile_to_text"]


@dataclass
class StageBreakdown:
    """Wall-clock seconds per PeeK stage for one query."""

    prune_seconds: float
    compact_seconds: float
    ksp_seconds: float
    total_seconds: float
    strategy: str
    remaining_edges: int
    distances: list[float] = field(default_factory=list)

    def rows(self) -> list[tuple[str, float, float]]:
        """(stage, seconds, share) rows for table rendering."""
        total = max(self.total_seconds, 1e-12)
        return [
            ("k-upper-bound pruning", self.prune_seconds, self.prune_seconds / total),
            (f"compaction ({self.strategy})", self.compact_seconds, self.compact_seconds / total),
            ("KSP on remnant", self.ksp_seconds, self.ksp_seconds / total),
        ]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"total {self.total_seconds:.4f}s, {self.remaining_edges} edges kept"]
        for stage, secs, share in self.rows():
            lines.append(f"  {stage:<28} {secs:8.4f}s  {share:6.1%}")
        return "\n".join(lines)


def stage_breakdown(graph, source: int, target: int, k: int, **peek_kwargs) -> StageBreakdown:
    """Run the PeeK pipeline stage by stage, timing each part.

    Accepts the same keyword arguments as :class:`repro.core.peek.PeeK`
    (``alpha``, ``kernel``, ``strong_edge_prune``, ...).
    """
    from repro.core.compaction import RegeneratedGraph, adaptive_compact
    from repro.core.pruning import k_upper_bound_prune
    from repro.ksp.optyen import OptYenKSP

    alpha = peek_kwargs.pop("alpha", 0.1)
    kernel = peek_kwargs.pop("kernel", "delta")
    strong = peek_kwargs.pop("strong_edge_prune", False)
    force = peek_kwargs.pop("compaction_force", None)
    if peek_kwargs:
        raise TypeError(f"unknown arguments: {sorted(peek_kwargs)}")

    t0 = time.perf_counter()
    pr = k_upper_bound_prune(
        graph, source, target, k, kernel=kernel, strong_edge_prune=strong
    )
    t_prune = time.perf_counter() - t0

    t0 = time.perf_counter()
    comp = adaptive_compact(
        graph, pr.keep_vertices, pr.keep_edges, alpha=alpha, force=force
    )
    t_compact = time.perf_counter() - t0

    t0 = time.perf_counter()
    if isinstance(comp.compacted, RegeneratedGraph):
        regen = comp.compacted
        inner = OptYenKSP(
            regen.graph, regen.map_vertex(source), regen.map_vertex(target)
        )
    else:
        inner = OptYenKSP(comp.compacted, source, target)
    result = inner.run(k)
    t_ksp = time.perf_counter() - t0

    return StageBreakdown(
        prune_seconds=t_prune,
        compact_seconds=t_compact,
        ksp_seconds=t_ksp,
        total_seconds=t_prune + t_compact + t_ksp,
        strategy=comp.strategy,
        remaining_edges=comp.remaining_edges,
        distances=[p.distance for p in result.paths],
    )


def profile_to_text(fn, *args, top: int = 15, sort: str = "cumulative", **kwargs) -> str:
    """cProfile a callable and return its top functions as text.

    >>> from repro.graph.generators import grid_network
    >>> from repro.core.peek import peek_ksp
    >>> g = grid_network(10, 10, seed=0)
    >>> text = profile_to_text(peek_ksp, g, 0, 99, 4, top=5)
    >>> "function calls" in text
    True
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn(*args, **kwargs)
    finally:
        profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats(sort).print_stats(top)
    return buf.getvalue()
