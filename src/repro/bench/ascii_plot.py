"""Minimal ASCII chart rendering for figure-type experiment reports.

The paper's figures are line/bar charts; a text-only environment still
benefits from *seeing* the shape, so the figure benchmarks attach a small
ASCII rendering (log-scale capable) to their saved reports.  This is
deliberately tiny — labelled series, fixed-height canvas, no dependencies.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["line_chart", "bar_chart"]

_MARKERS = "ox+*#@%&"


def _scale(values, lo, hi, steps):
    if hi <= lo:
        return [0 for _ in values]
    return [
        min(steps - 1, int((v - lo) / (hi - lo) * (steps - 1)))
        for v in values
    ]


def line_chart(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    height: int = 12,
    width: int = 60,
    logy: bool = False,
    title: str = "",
) -> str:
    """Render named series against a shared x axis.

    ``logy=True`` plots log10 of the values (zeros/negatives clamped),
    matching the paper's log-scale time axes (Fig 6/12).
    """
    pts: dict[str, list[float]] = {}
    for name, ys in series.items():
        vals = [float(v) for v in ys]
        if logy:
            vals = [math.log10(max(v, 1e-12)) for v in vals]
        pts[name] = vals
    all_vals = [v for vals in pts.values() for v in vals]
    if not all_vals:
        return title
    lo, hi = min(all_vals), max(all_vals)
    xs = [float(v) for v in x]
    xlo, xhi = min(xs), max(xs)

    canvas = [[" "] * width for _ in range(height)]
    cols = _scale(xs, xlo, xhi, width)
    for idx, (name, vals) in enumerate(pts.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        rows = _scale(vals, lo, hi, height)
        for c, r in zip(cols, rows):
            canvas[height - 1 - r][c] = marker
    lines = []
    if title:
        lines.append(title)
    top_label = f"{10**hi:.3g}" if logy else f"{hi:.3g}"
    bot_label = f"{10**lo:.3g}" if logy else f"{lo:.3g}"
    lines.append(f"{top_label:>9} ┤" + "".join(canvas[0]))
    for row in canvas[1:-1]:
        lines.append(" " * 9 + " │" + "".join(row))
    lines.append(f"{bot_label:>9} ┤" + "".join(canvas[-1]))
    lines.append(
        " " * 9
        + " └"
        + "─" * width
    )
    lines.append(f"{'':9}  {xs[0]:<12.4g}{'':{max(width - 24, 0)}}{xs[-1]:>12.4g}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(pts)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bars, one per label (the Fig 4/8-style per-graph bars)."""
    vals = [float(v) for v in values]
    if not vals:
        return title
    peak = max(vals) or 1.0
    lines = [title] if title else []
    label_w = max(len(str(lbl)) for lbl in labels)
    for lbl, v in zip(labels, vals):
        bar = "█" * max(1, int(v / peak * width)) if v > 0 else ""
        lines.append(f"{str(lbl):>{label_w}} │{bar} {v:.3g}{unit}")
    return "\n".join(lines)
