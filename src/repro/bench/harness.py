"""The experiment runner shared by every table/figure benchmark.

Responsibilities:

* hold the suite scale and the per-(graph, seed) s–t pairs so **every
  algorithm is measured on identical queries** (paper §7.1: "We use the
  same source and target pairs for PeeK and compared works");
* time single runs with a per-run deadline, recording the paper's hyphen
  for timeouts;
* cache generated graphs and pair selections across experiments.

Environment knobs (read once at construction):

* ``REPRO_SCALE`` — suite scale preset (tiny/small/medium), default small;
* ``REPRO_PAIRS`` — s–t pairs per graph, default 2 (paper: 32 — at paper
  scale; scaled down with the graphs);
* ``REPRO_DEADLINE`` — per-run deadline in seconds, default 60 (paper: 1h).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cancel import deadline_in, now
from repro.errors import ReproError
from repro.graph.suite import SUITE_NAMES, random_st_pairs, suite_graph
from repro.ksp import make_algorithm
from repro.ksp.base import KSPTimeout
from repro.obs.tracer import get_tracer
from repro.serve.query import Query, validate_query

__all__ = ["RunRecord", "ExperimentRunner"]


@dataclass
class RunRecord:
    """One timed (method, graph, K, pair) execution."""

    method: str
    graph: str
    k: int
    source: int
    target: int
    seconds: float
    timed_out: bool = False
    result: object = None

    @property
    def ok(self) -> bool:
        return not self.timed_out and self.result is not None


@dataclass
class ExperimentRunner:
    scale: str = field(
        default_factory=lambda: os.environ.get("REPRO_SCALE", "small")
    )
    pairs_per_graph: int = field(
        default_factory=lambda: int(os.environ.get("REPRO_PAIRS", "2"))
    )
    deadline_seconds: float = field(
        default_factory=lambda: float(os.environ.get("REPRO_DEADLINE", "60"))
    )
    pair_seed: int = 2023

    def graph(self, name: str):
        """The suite graph ``name`` at this runner's scale (cached)."""
        return suite_graph(name, self.scale)

    def pairs(self, name: str) -> list[tuple[int, int]]:
        """The fixed s–t pairs for graph ``name`` (same for all methods)."""
        return random_st_pairs(
            self.graph(name), self.pairs_per_graph, seed=self.pair_seed
        )

    def graph_names(self) -> tuple[str, ...]:
        return SUITE_NAMES

    # ------------------------------------------------------------------
    def time_run(
        self,
        method: str,
        graph_name: str,
        source: int,
        target: int,
        k: int,
        **kwargs,
    ) -> RunRecord:
        """Run one algorithm once under the deadline; never raises on timeout."""
        graph = self.graph(graph_name)
        validate_query(graph, Query(source=source, target=target, k=k))
        deadline = deadline_in(self.deadline_seconds)
        t0 = now()
        try:
            with get_tracer().span(
                "bench.run",
                method=method,
                graph=graph_name,
                k=k,
                source=source,
                target=target,
            ):
                algo = make_algorithm(
                    method, graph, source, target, deadline=deadline, **kwargs
                )
                result = algo.run(k)
            seconds = now() - t0
            # cheap independent audit outside the timed region: endpoints,
            # simplicity, edge existence, distances, ordering
            from repro.verify import verify_ksp_result

            report = verify_ksp_result(graph, source, target, result)
            if not report:
                raise ReproError(
                    f"{method} returned an invalid result on "
                    f"{graph_name} ({source}->{target}, k={k}): {report}"
                )
            return RunRecord(
                method=method,
                graph=graph_name,
                k=k,
                source=source,
                target=target,
                seconds=seconds,
                result=result,
            )
        except KSPTimeout:
            return RunRecord(
                method=method,
                graph=graph_name,
                k=k,
                source=source,
                target=target,
                seconds=now() - t0,
                timed_out=True,
            )

    def average_seconds(
        self, method: str, graph_name: str, k: int, **kwargs
    ) -> tuple[float | None, list[RunRecord]]:
        """Mean runtime over this graph's pairs; None when any run timed out.

        The paper reports per-graph averages over its 32 pairs and a hyphen
        when the method cannot finish — same policy here.
        """
        records = []
        for s, t in self.pairs(graph_name):
            rec = self.time_run(method, graph_name, s, t, k, **kwargs)
            records.append(rec)
            if rec.timed_out:
                return None, records
        return float(np.mean([r.seconds for r in records])), records

    def run_callable(
        self, fn: Callable[[], object]
    ) -> tuple[float, object]:
        """Time an arbitrary zero-arg callable once."""
        t0 = now()
        out = fn()
        return now() - t0, out

    def check_same_distances(self, records: list[RunRecord]) -> None:
        """Assert every completed record on the same query found the same
        distances — the harness-level cross-validation of §7.1."""
        by_query: dict[tuple, list[RunRecord]] = {}
        for r in records:
            if r.ok:
                by_query.setdefault((r.graph, r.k, r.source, r.target), []).append(r)
        for key, group in by_query.items():
            base = group[0].result.distances
            for other in group[1:]:
                if not np.allclose(base, other.result.distances):
                    raise ReproError(
                        f"distance mismatch between {group[0].method} and "
                        f"{other.method} on {key}"
                    )
