"""Plain-text and Markdown table rendering for benchmark reports.

Output mimics the paper's tables: one row per method, one column per graph,
hyphens for runs that exceeded their deadline, the best entry starred.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_markdown", "format_cell"]


def format_cell(value, *, digits: int = 2) -> str:
    """Render one table cell: floats rounded, None as the paper's hyphen."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{digits}f}"
    return str(value)


def _column_widths(header: Sequence[str], rows: list[list[str]]) -> list[int]:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    return widths


def format_table(
    header: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str = "",
    digits: int = 2,
    star_min_columns: bool = False,
) -> str:
    """Fixed-width text table.

    ``star_min_columns=True`` marks the smallest numeric value of each data
    column with ``*`` — the paper highlights the best performer per graph.
    """
    str_rows = [[format_cell(c, digits=digits) for c in row] for row in rows]
    if star_min_columns and rows:
        for col in range(1, len(header)):
            best_i, best_v = -1, None
            for i, row in enumerate(rows):
                v = row[col] if col < len(row) else None
                if isinstance(v, (int, float)) and v == v:
                    if best_v is None or v < best_v:
                        best_i, best_v = i, v
            if best_i >= 0:
                str_rows[best_i][col] += "*"
    widths = _column_widths(list(header), str_rows)
    lines = []
    if title:
        lines.append(title)
    sep = "  "
    lines.append(sep.join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(sep.join("-" * w for w in widths))
    for row in str_rows:
        padded = [c.ljust(w) for c, w in zip(row, widths)]
        lines.append(sep.join(padded))
    return "\n".join(lines)


def format_markdown(
    header: Sequence[str],
    rows: Sequence[Sequence],
    *,
    digits: int = 2,
) -> str:
    """The same table as GitHub-flavoured Markdown (for EXPERIMENTS.md)."""
    out = ["| " + " | ".join(header) + " |"]
    out.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        out.append(
            "| "
            + " | ".join(format_cell(c, digits=digits) for c in row)
            + " |"
        )
    return "\n".join(out)
