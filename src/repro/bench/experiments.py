"""One function per paper table/figure (see DESIGN.md §3 for the index).

Every function takes an :class:`~repro.bench.harness.ExperimentRunner`
(which pins the scale, the s–t pairs, and the deadline) and returns an
:class:`ExperimentReport` whose rows mirror the paper's layout.  Real
algorithm executions produce every number; the parallel/distributed entries
are simulated *from those real executions* via the instrumented cost models
(DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path as FilePath

import numpy as np

from repro.bench.harness import ExperimentRunner
from repro.bench.tables import format_table
from repro.cancel import now
from repro.core.compaction import adaptive_compact
from repro.core.peek import PeeK
from repro.core.pruning import k_upper_bound_prune
from repro.distributed import CommModel, distributed_peek
from repro.dyn import TerraceGraph
from repro.ksp import OptYenKSP
from repro.serve.query import Query, validate_query
from repro.parallel import (
    baseline_ksp_workload,
    peek_workload,
    simulate,
    speedup_curve,
)
from repro.parallel.metrics import calibrate, gteps
from repro.sssp import delta_stepping, dijkstra

__all__ = [
    "ExperimentReport",
    "fig01_coverage",
    "fig04_pruning",
    "fig06_compaction",
    "fig08_ablation",
    "fig09_shared_scaling",
    "fig10_distributed_scaling",
    "ft_checkpoint_sweep",
    "fig11_k_sweep",
    "fig12_terrace",
    "table2_parallel",
    "table3_serial",
    "ALL_EXPERIMENTS",
]


@dataclass
class ExperimentReport:
    """Rows + rendering for one regenerated table/figure."""

    experiment: str
    title: str
    header: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""
    digits: int = 2

    def render(self) -> str:
        text = format_table(
            self.header, self.rows, title=self.title, digits=self.digits
        )
        if self.notes:
            text += "\n" + self.notes
        return text

    def save(self, directory="results") -> FilePath:
        d = FilePath(directory)
        d.mkdir(parents=True, exist_ok=True)
        path = d / f"{self.experiment}.txt"
        path.write_text(self.render() + "\n", encoding="utf-8")
        return path


# ----------------------------------------------------------------------
# Figure 1 — coverage of the K shortest paths
# ----------------------------------------------------------------------


def fig01_coverage(
    runner: ExperimentRunner,
    graph_name: str = "GT",
    ks: tuple[int, ...] = (4, 16, 64, 256, 1024),
) -> ExperimentReport:
    """% of vertices/edges covered by the top-K paths vs K (paper Fig 1).

    The paper's observation that motivates everything else: even K = 4096
    covers < 0.01% of Twitter.  One PeeK run at max(ks) per pair yields the
    whole K sweep (coverage of a K prefix of the path list).
    """
    g = runner.graph(graph_name)
    k_max = max(ks)
    cov_v = {k: [] for k in ks}
    cov_e = {k: [] for k in ks}
    for s, t in runner.pairs(graph_name):
        validate_query(g, Query(source=s, target=t, k=k_max))
        res = PeeK(g, s, t).run(k_max)
        for k in ks:
            prefix = res.paths[: min(k, len(res.paths))]
            verts = set()
            edges = set()
            for p in prefix:
                verts.update(p.vertices)
                edges.update(p.edges())
            cov_v[k].append(100.0 * len(verts) / g.num_vertices)
            cov_e[k].append(100.0 * len(edges) / g.num_edges)
    rows = [
        [k, float(np.mean(cov_v[k])), float(np.mean(cov_e[k]))] for k in ks
    ]
    from repro.bench.ascii_plot import line_chart

    chart = line_chart(
        list(ks),
        {
            "covered V %": [r[1] for r in rows],
            "covered E %": [r[2] for r in rows],
        },
        title="coverage vs K",
    )
    return ExperimentReport(
        experiment="fig01_coverage",
        title=(
            f"Figure 1 — covered vertex/edge %% vs K on {graph_name} "
            f"(n={g.num_vertices}, m={g.num_edges}, scale={runner.scale})"
        ),
        header=["K", "covered V %", "covered E %"],
        rows=rows,
        notes=chart,
        digits=4,
    )


# ----------------------------------------------------------------------
# Figure 4 — pruning power
# ----------------------------------------------------------------------


def fig04_pruning(
    runner: ExperimentRunner, ks: tuple[int, ...] = (8, 128)
) -> ExperimentReport:
    """% of vertices/edges removed by K-upper-bound pruning (paper Fig 4)."""
    rows = []
    for name in runner.graph_names():
        g = runner.graph(name)
        row: list = [name]
        for k in ks:
            fv, fe = [], []
            for s, t in runner.pairs(name):
                pr = k_upper_bound_prune(g, s, t, k)
                fv.append(100.0 * pr.pruned_vertex_fraction)
                fe.append(100.0 * pr.pruned_edge_fraction(g))
            row += [float(np.mean(fv)), float(np.mean(fe))]
        rows.append(row)
    avg = ["AVG"] + [
        float(np.mean([r[i] for r in rows])) for i in range(1, 1 + 2 * len(ks))
    ]
    rows.append(avg)
    header = ["graph"]
    for k in ks:
        header += [f"pruned V % (K={k})", f"pruned E % (K={k})"]
    from repro.bench.ascii_plot import bar_chart

    chart = bar_chart(
        [r[0] for r in rows],
        [r[1] for r in rows],
        title=f"pruned vertices %, K={ks[0]}",
        unit="%",
    )
    return ExperimentReport(
        experiment="fig04_pruning",
        title=f"Figure 4 — K upper bound pruning power (scale={runner.scale})",
        header=header,
        rows=rows,
        notes=chart,
        digits=1,
    )


# ----------------------------------------------------------------------
# Figure 6 — compaction strategies, end to end
# ----------------------------------------------------------------------


def _keep_masks_for_fraction(graph, s, t, k, fraction, seed=0):
    """A keep decision retaining ``fraction`` of edges, never dropping the
    actual K shortest paths (the paper's Fig 6 workload construction)."""
    rng = np.random.default_rng(seed)
    validate_query(graph, Query(source=s, target=t, k=k))
    res = OptYenKSP(graph, s, t).run(k)
    protected_v = np.zeros(graph.num_vertices, dtype=bool)
    protected_e = np.zeros(graph.num_edges, dtype=bool)
    pairs = set()
    for p in res.paths:
        protected_v[list(p.vertices)] = True
        pairs.update(p.edges())
    src = graph.edge_sources()
    for e in range(graph.num_edges):
        if (int(src[e]), int(graph.indices[e])) in pairs:
            protected_e[e] = True
    want = int(round(fraction * graph.num_edges))
    keep_edges = protected_e.copy()
    deficit = want - int(keep_edges.sum())
    if deficit > 0:
        candidates = np.flatnonzero(~keep_edges)
        extra = rng.choice(candidates, size=min(deficit, candidates.size), replace=False)
        keep_edges[extra] = True
    keep_vertices = protected_v.copy()
    keep_vertices[src[keep_edges]] = True
    keep_vertices[graph.indices[keep_edges]] = True
    keep_vertices[[s, t]] = True
    return keep_vertices, keep_edges


def fig06_compaction(
    runner: ExperimentRunner,
    graph_name: str = "GT",
    fractions: tuple[float, ...] = (0.00005, 0.0005, 0.005, 0.05, 0.2, 0.655, 1.0),
    k: int = 8,
) -> ExperimentReport:
    """End-to-end compact + KSP time of the three strategies (paper Fig 6)."""
    g = runner.graph(graph_name)
    s, t = runner.pairs(graph_name)[0]
    rows = []
    for frac in fractions:
        keep_v, keep_e = _keep_masks_for_fraction(g, s, t, k, frac)
        row: list = [100.0 * frac]
        for strategy in ("regeneration", "edge-swap", "status-array"):
            t0 = now()
            comp = adaptive_compact(g, keep_v, keep_e, force=strategy)
            t_compact = now() - t0
            if comp.is_regenerated:
                regen = comp.compacted
                inner = OptYenKSP(
                    regen.graph, regen.map_vertex(s), regen.map_vertex(t)
                )
            else:
                inner = OptYenKSP(comp.compacted, s, t)
            t0 = now()
            inner.run(k)
            t_ksp = now() - t0
            row += [t_compact, t_ksp]
        rows.append(row)
    header = ["kept E %"]
    for strategy in ("regen", "edge-swap", "status-arr"):
        header += [f"{strategy} compact (s)", f"{strategy} KSP (s)"]
    from repro.bench.ascii_plot import line_chart

    chart = line_chart(
        [r[0] for r in rows],
        {
            "regen e2e": [r[1] + r[2] for r in rows],
            "edge-swap e2e": [r[3] + r[4] for r in rows],
            "status e2e": [r[5] + r[6] for r in rows],
        },
        logy=True,
        title="end-to-end seconds (log) vs kept-edge %",
    )
    return ExperimentReport(
        experiment="fig06_compaction",
        notes=chart,
        title=(
            f"Figure 6 — compaction strategy end-to-end times on "
            f"{graph_name} (K={k}, scale={runner.scale})"
        ),
        header=header,
        rows=rows,
        digits=4,
    )


# ----------------------------------------------------------------------
# Figure 8 — ablation of pruning and compaction
# ----------------------------------------------------------------------


def fig08_ablation(
    runner: ExperimentRunner,
    ks: tuple[int, ...] = (8, 128),
    threads: int = 32,
) -> ExperimentReport:
    """Technique benefits: base vs +pruning vs +pruning+compaction (Fig 8).

    The paper's figure is parallel (32 threads); each variant's measured
    serial run is replayed through the shared-memory simulator and the
    speedups are ratios of simulated times.
    """
    variants = {
        "base": dict(prune=False, compact=False),
        "prune": dict(compact=False),
        "full": dict(),
    }
    rows = []
    for name in runner.graph_names():
        g = runner.graph(name)
        row: list = [name]
        for k in ks:
            sims = {v: [] for v in variants}
            for s, t in runner.pairs(name):
                validate_query(g, Query(source=s, target=t, k=k))
                for label, flags in variants.items():
                    # real serial run anchors the unit cost of *this*
                    # variant (Python bookkeeping included), then the
                    # simulator redistributes its measured decomposition
                    t0 = now()
                    res = PeeK(g, s, t, **flags).run(k)
                    measured = now() - t0
                    wl = peek_workload(res)
                    cal = calibrate(wl, measured)
                    sims[label].append(
                        cal.seconds(simulate(wl, threads).time_units)
                    )
            b = float(np.mean(sims["base"]))
            row += [
                b / float(np.mean(sims["prune"])),
                b / float(np.mean(sims["full"])),
            ]
        rows.append(row)
    avg = ["AVG"] + [
        float(np.mean([r[i] for r in rows])) for i in range(1, 1 + 2 * len(ks))
    ]
    rows.append(avg)
    header = ["graph"]
    for k in ks:
        header += [f"+pruning x (K={k})", f"+prune+compact x (K={k})"]
    return ExperimentReport(
        experiment="fig08_ablation",
        title=(
            f"Figure 8 — technique benefits, simulated {threads} threads, "
            f"speedup over base (scale={runner.scale})"
        ),
        header=header,
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 9 — shared-memory scalability
# ----------------------------------------------------------------------


def fig09_shared_scaling(
    runner: ExperimentRunner,
    k: int = 8,
    threads: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
) -> ExperimentReport:
    """PeeK speedup vs thread count (paper Fig 9), simulated from real runs."""
    rows = []
    curves = []
    for name in runner.graph_names():
        g = runner.graph(name)
        per_pair = []
        for s, t in runner.pairs(name):
            validate_query(g, Query(source=s, target=t, k=k))
            res = PeeK(g, s, t).run(k)
            per_pair.append(speedup_curve(peek_workload(res), list(threads)))
        avg = {p: float(np.mean([c[p] for c in per_pair])) for p in threads}
        curves.append(avg)
        rows.append([name] + [avg[p] for p in threads])
    avg_curve = [float(np.mean([c[p] for c in curves])) for p in threads]
    rows.append(["AVG"] + avg_curve)
    from repro.bench.ascii_plot import line_chart

    chart = line_chart(
        list(threads),
        {"avg speedup": avg_curve, "ideal": [float(p) for p in threads]},
        title="speedup vs threads (AVG of suite)",
    )
    return ExperimentReport(
        experiment="fig09_shared_scaling",
        title=(
            f"Figure 9 — shared-memory scalability, K={k} "
            f"(simulated threads; scale={runner.scale})"
        ),
        header=["graph"] + [f"{p}T" for p in threads],
        rows=rows,
        notes=chart,
    )


# ----------------------------------------------------------------------
# Figure 10 — distributed scalability
# ----------------------------------------------------------------------


def fig10_distributed_scaling(
    runner: ExperimentRunner,
    k: int = 8,
    nodes: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
) -> ExperimentReport:
    """Distributed PeeK speedup vs node count + GTEPS (paper Fig 10).

    16 cores per node, as in the paper; the BSP comm constants are rescaled
    to the benchmark graph size (see ``CommModel.scaled_for``).
    """
    rows = []
    curves = []
    gteps_max = []
    for name in runner.graph_names():
        g = runner.graph(name)
        model = CommModel().scaled_for(g.num_edges)
        s, t = runner.pairs(name)[0]
        times = {}
        edges = {}
        for nn in nodes:
            rep = distributed_peek(g, s, t, k, nn, model=model)
            times[nn] = rep.time_units
            edges[nn] = rep.edges_traversed
        base = times[nodes[0]]
        curve = {nn: base / times[nn] for nn in nodes}
        curves.append(curve)
        # GTEPS at the largest configuration, converting units→seconds with
        # the same per-edge cost used for the serial anchor (~30 ns/unit in
        # pure Python — measured, not assumed, by the caller's calibration).
        t0 = now()
        delta_stepping(g, s)
        unit_s = (now() - t0) / max(g.num_edges, 1)
        biggest = nodes[-1]
        gteps_max.append(gteps(edges[biggest], times[biggest] * unit_s))
        rows.append([name] + [curve[nn] for nn in nodes])
    avg_curve = [float(np.mean([c[nn] for c in curves])) for nn in nodes]
    rows.append(["AVG"] + avg_curve)
    from repro.bench.ascii_plot import line_chart

    chart = line_chart(
        [16 * nn for nn in nodes],
        {"avg speedup": avg_curve},
        title="speedup vs total cores (AVG of suite)",
    )
    notes = (
        chart
        + f"\nGTEPS at {nodes[-1]} nodes x16 cores: "
        + ", ".join(
            f"{n}={v:.3f}" for n, v in zip(runner.graph_names(), gteps_max)
        )
    )
    return ExperimentReport(
        experiment="fig10_distributed_scaling",
        title=(
            f"Figure 10 — distributed scalability, K={k}, 16 cores/node "
            f"(simulated BSP; scale={runner.scale})"
        ),
        header=["graph"] + [f"{nn}N/{16*nn}c" for nn in nodes],
        rows=rows,
        notes=notes,
    )


# ----------------------------------------------------------------------
# Beyond the paper: fault-tolerance overhead vs checkpoint interval
# ----------------------------------------------------------------------


def ft_checkpoint_sweep(
    runner: ExperimentRunner,
    k: int = 8,
    nodes: int = 8,
    intervals: tuple[int, ...] = (1, 2, 4, 8),
) -> ExperimentReport:
    """Recovery-policy cost vs checkpoint interval under one rank kill.

    A seeded kill of rank 1 at the third relaxation-routing ``alltoallv``
    (mid-SSSP), swept over checkpoint intervals for both recovery
    policies.  Every recovered run is checked bitwise against the
    failure-free baseline; the columns decompose where the extra
    simulated time went.
    """
    from repro.distributed import FaultPlan, RecoveryConfig
    from repro.serve.faults import FaultRule

    name = runner.graph_names()[0]
    g = runner.graph(name)
    model = CommModel().scaled_for(g.num_edges)
    s, t = runner.pairs(name)[0]
    base = distributed_peek(g, s, t, k, nodes, model=model)
    rows = []
    for interval in intervals:
        for policy in ("restart", "recompute"):
            plan = FaultPlan(
                [FaultRule("dist.sssp.route", kind="rankfail", at_hit=3, rank=1)]
            )
            rep = distributed_peek(
                g,
                s,
                t,
                k,
                nodes,
                model=model,
                fault_plan=plan,
                recovery=RecoveryConfig(
                    policy=policy, checkpoint_interval=interval
                ),
            )
            # exact equality is the claim under test: recovery must be
            # bitwise, not merely close
            identical = (
                rep.result.distances == base.result.distances  # repro-lint: disable=RPR004
            )
            overhead = (
                100.0 * (rep.time_units - base.time_units) / base.time_units
            )
            rows.append(
                [
                    interval,
                    policy,
                    rep.checkpoint_units,
                    rep.wasted_units,
                    rep.recovery_units,
                    overhead,
                    "yes" if identical else "NO",
                ]
            )
    notes = (
        f"graph={name}, {nodes} nodes, rank 1 killed at the 3rd "
        "dist.sssp.route collective; failure-free baseline "
        f"= {base.time_units:.0f} units.\n"
        "restart pays checkpoint writes every interval but wastes at most "
        "one interval of work;\nrecompute writes nothing and pays the dead "
        "rank's cumulative compute share at recovery."
    )
    return ExperimentReport(
        experiment="ft_checkpoint_sweep",
        title=(
            f"Fault tolerance — overhead vs checkpoint interval, K={k} "
            f"(simulated BSP; scale={runner.scale})"
        ),
        header=[
            "interval",
            "policy",
            "ckpt units",
            "wasted",
            "recovery",
            "overhead %",
            "bitwise",
        ],
        rows=rows,
        notes=notes,
    )


# ----------------------------------------------------------------------
# Figure 11 — runtime vs K
# ----------------------------------------------------------------------


def fig11_k_sweep(
    runner: ExperimentRunner,
    ks: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128),
    methods: tuple[str, ...] = ("Yen", "NC", "OptYen", "PeeK"),
) -> ExperimentReport:
    """Serial runtime of each method as K grows 2→128 (paper Fig 11)."""
    rows = []
    for name in runner.graph_names():
        for method in methods:
            row: list = [name, method]
            for k in ks:
                mean, _ = runner.average_seconds(method, name, k)
                row.append(mean)
            rows.append(row)
    # growth factor K=2 -> K=max (the paper's headline 1.1x vs 10.3x)
    notes_lines = []
    for method in methods:
        ratios = []
        for name in runner.graph_names():
            row = next(
                r for r in rows if r[0] == name and r[1] == method
            )
            first, last = row[2], row[-1]
            if first and last:
                ratios.append(last / first)
        if ratios:
            notes_lines.append(
                f"{method}: runtime x{float(np.mean(ratios)):.1f} from "
                f"K={ks[0]} to K={ks[-1]}"
            )
    return ExperimentReport(
        experiment="fig11_k_sweep",
        title=(
            f"Figure 11 — runtime (s) vs K (serial, scale={runner.scale}; "
            "'-' = deadline exceeded)"
        ),
        header=["graph", "method"] + [f"K={k}" for k in ks],
        rows=rows,
        notes="\n".join(notes_lines),
        digits=3,
    )


# ----------------------------------------------------------------------
# Figure 12 — adaptive compaction vs Terrace
# ----------------------------------------------------------------------


def fig12_terrace(
    runner: ExperimentRunner,
    graph_name: str = "GT",
    fractions: tuple[float, ...] = (0.00005, 0.0005, 0.005, 0.05, 0.2, 0.655, 1.0),
) -> ExperimentReport:
    """Graph update + SSSP: adaptive compaction vs the Terrace-like
    dynamic container (paper Fig 12; SSSP as the downstream task)."""
    g = runner.graph(graph_name)
    s, t = runner.pairs(graph_name)[0]
    src_all = g.edge_sources()
    rows = []
    for frac in fractions:
        keep_v, keep_e = _keep_masks_for_fraction(g, s, t, 8, frac)
        # ---- PeeK adaptive compaction + SSSP ----
        t0 = now()
        comp = adaptive_compact(g, keep_v, keep_e)
        t_compact = now() - t0
        if comp.is_regenerated:
            target_graph = comp.compacted.graph
            src_v = comp.compacted.map_vertex(s)
        else:
            target_graph = comp.compacted
            src_v = s
        t0 = now()
        delta_stepping(target_graph, src_v)
        t_sssp = now() - t0
        # ---- Terrace: point-delete the removed edges, then SSSP ----
        tg = TerraceGraph.from_csr(g)
        live = keep_e & keep_v[src_all] & keep_v[g.indices]
        dead = np.flatnonzero(~live)
        t0 = now()
        if dead.size:
            tg.delete_edges(src_all[dead], g.indices[dead])
        t_terrace_del = now() - t0
        t0 = now()
        tg.sssp(s)
        t_terrace_sssp = now() - t0
        rows.append(
            [
                100.0 * frac,
                comp.strategy,
                t_compact,
                t_sssp,
                t_terrace_del,
                t_terrace_sssp,
            ]
        )
    from repro.bench.ascii_plot import line_chart

    chart = line_chart(
        [r[0] for r in rows],
        {
            "PeeK e2e": [r[2] + r[3] for r in rows],
            "Terrace e2e": [max(r[4] + r[5], 1e-6) for r in rows],
        },
        logy=True,
        title="update + SSSP seconds (log) vs kept-edge %",
    )
    return ExperimentReport(
        experiment="fig12_terrace",
        notes=chart,
        title=(
            f"Figure 12 — adaptive compaction vs Terrace-like dynamic "
            f"graph on {graph_name} (scale={runner.scale})"
        ),
        header=[
            "kept E %",
            "PeeK strategy",
            "PeeK compact (s)",
            "PeeK SSSP (s)",
            "Terrace update (s)",
            "Terrace SSSP (s)",
        ],
        rows=rows,
        digits=4,
    )


# ----------------------------------------------------------------------
# Table 2 — parallel runtime comparison
# ----------------------------------------------------------------------


def _method_workload(method: str, record) -> object:
    if method == "PeeK":
        return peek_workload(record.result)
    return baseline_ksp_workload(record.result.stats)


def table2_parallel(
    runner: ExperimentRunner,
    ks: tuple[int, ...] = (8, 128),
    methods: tuple[str, ...] = ("Yen", "NC", "OptYen", "PeeK"),
    threads: int = 32,
) -> ExperimentReport:
    """Parallel runtime, 32 threads (paper Table 2).

    Each method runs for real (serial), its measured wall-clock calibrates
    the work-unit cost, and the simulator replays its logged decomposition
    on 32 threads.  Hyphen = the serial run exceeded the deadline.
    """
    rows = []
    best_speedups = {k: [] for k in ks}
    for k in ks:
        per_method: dict[str, list] = {m: [] for m in methods}
        for name in runner.graph_names():
            sims: dict[str, float | None] = {}
            for method in methods:
                secs = []
                failed = False
                for s, t in runner.pairs(name):
                    rec = runner.time_run(method, name, s, t, k)
                    if not rec.ok:
                        failed = True
                        break
                    wl = _method_workload(method, rec)
                    cal = calibrate(wl, rec.seconds)
                    secs.append(
                        cal.seconds(simulate(wl, threads).time_units)
                    )
                sims[method] = None if failed else float(np.mean(secs))
            for method in methods:
                per_method[method].append(sims[method])
            others = [
                v for m, v in sims.items() if m != "PeeK" and v is not None
            ]
            if sims.get("PeeK") and others:
                best_speedups[k].append(min(others) / sims["PeeK"])
        for method in methods:
            rows.append([f"K={k}", method] + per_method[method])
    notes = "; ".join(
        f"K={k}: PeeK vs best baseline {float(np.mean(v)):.1f}x"
        for k, v in best_speedups.items()
        if v
    )
    return ExperimentReport(
        experiment="table2_parallel",
        title=(
            f"Table 2 — parallel runtime (s), simulated {threads} threads "
            f"(scale={runner.scale}; '-' = deadline exceeded)"
        ),
        header=["K", "method"] + list(runner.graph_names()),
        rows=rows,
        notes=notes,
        digits=3,
    )


# ----------------------------------------------------------------------
# Table 3 — serial runtime comparison
# ----------------------------------------------------------------------


def table3_serial(
    runner: ExperimentRunner,
    ks: tuple[int, ...] = (8, 128),
    methods: tuple[str, ...] = ("Yen", "NC", "OptYen", "SB", "SB*", "PeeK"),
) -> ExperimentReport:
    """Serial runtime, one thread, real wall-clock (paper Table 3)."""
    rows = []
    speedups = {k: [] for k in ks}
    for k in ks:
        per_graph: dict[str, dict[str, float | None]] = {}
        for name in runner.graph_names():
            per_graph[name] = {}
            for method in methods:
                mean, _ = runner.average_seconds(method, name, k)
                per_graph[name][method] = mean
            others = [
                v
                for m, v in per_graph[name].items()
                if m != "PeeK" and v is not None
            ]
            peek_t = per_graph[name].get("PeeK")
            if peek_t and others:
                speedups[k].append(min(others) / peek_t)
        for method in methods:
            rows.append(
                [f"K={k}", method]
                + [per_graph[name][method] for name in runner.graph_names()]
            )
    notes = "; ".join(
        f"K={k}: PeeK vs best baseline {float(np.mean(v)):.1f}x"
        for k, v in speedups.items()
        if v
    )
    return ExperimentReport(
        experiment="table3_serial",
        title=(
            f"Table 3 — serial runtime (s), real wall-clock "
            f"(scale={runner.scale}; '-' = deadline exceeded)"
        ),
        header=["K", "method"] + list(runner.graph_names()),
        rows=rows,
        notes=notes,
        digits=3,
    )


#: name → callable, used by the CLI.
ALL_EXPERIMENTS = {
    "fig01": fig01_coverage,
    "fig04": fig04_pruning,
    "fig06": fig06_compaction,
    "fig08": fig08_ablation,
    "fig09": fig09_shared_scaling,
    "fig10": fig10_distributed_scaling,
    "ftsweep": ft_checkpoint_sweep,
    "fig11": fig11_k_sweep,
    "fig12": fig12_terrace,
    "table2": table2_parallel,
    "table3": table3_serial,
}
