"""Benchmark harness: everything needed to regenerate the paper's tables
and figures lives here as library code; the ``benchmarks/`` directory holds
thin pytest-benchmark wrappers around these functions, and the ``peek-bench``
CLI exposes them directly.
"""

from repro.bench.harness import ExperimentRunner, RunRecord
from repro.bench.tables import format_table, format_markdown
from repro.bench import experiments

__all__ = [
    "ExperimentRunner",
    "RunRecord",
    "format_table",
    "format_markdown",
    "experiments",
]
