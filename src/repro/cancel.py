"""Cooperative cancellation checkpoints for the whole PeeK pipeline.

The paper's Table 3 writes "-" for runs that blow a 1-hour budget, and the
ROADMAP's production north star needs the same property per query: every
stage must observe its deadline, not just the KSP deviation loop.  The
kernels cannot be preempted (they are long NumPy batches and tight scalar
loops), so cancellation is *cooperative*: each stage calls
:func:`checkpoint` at a natural work boundary —

* Δ-stepping: once per bucket phase;
* Dijkstra: once per settle batch (every :data:`SETTLE_CHECK_INTERVAL`
  settled vertices) plus once at kernel entry;
* Algorithm 2's spSum scan: once per :data:`SCAN_CHECK_INTERVAL` inspected
  vertices;
* compaction: before the (single vectorised) build;
* the deviation loop: per iteration and per suffix search, as before.

A checkpoint raises :class:`~repro.errors.KSPTimeout` when the deadline —
an absolute ``time.perf_counter()`` value, matching the historical
``KSPAlgorithm`` convention — has passed.  The worst-case overshoot is
therefore one checkpoint interval of work, which is what the deadline
tests bound.

Fault injection
---------------
The same checkpoints double as the seams for the deterministic fault
harness (:mod:`repro.serve.faults`): an installed *fault hook* is called
with the stage name at every checkpoint and may raise.  The hook is
process-global (install it around a test, not around concurrent prod
traffic) and ``None`` by default, in which case a checkpoint with no
deadline is a single attribute load.

Virtual time
------------
The time source itself is injectable: :func:`install_clock` /
:func:`clock_scope` swap the ``perf_counter`` every deadline comparison
reads for any zero-argument float callable.  The load harness
(:mod:`repro.load`) installs a :class:`~repro.load.simclock.SimClock`
that *advances at every checkpoint* by a per-stage cost, so deadline
expiry — and therefore degradation, partial results, and shedding —
becomes a deterministic function of work done, reproducible from seeds
alone with no wall-clock in the loop.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import KSPTimeout

__all__ = [
    "SETTLE_CHECK_INTERVAL",
    "SCAN_CHECK_INTERVAL",
    "checkpoint",
    "cancellation_active",
    "deadline_in",
    "remaining",
    "now",
    "install_clock",
    "clock_scope",
    "install_fault_hook",
    "fault_scope",
]

#: Dijkstra checks its deadline every this-many settled vertices.  A power
#: of two so the hot loop's test is ``settled & (N-1) == 0``.
SETTLE_CHECK_INTERVAL = 256

#: Algorithm 2's spSum scan checks every this-many inspected vertices.
SCAN_CHECK_INTERVAL = 1024

#: the installed fault hook (``Callable[[str], None] | None``)
_fault_hook: Callable[[str], None] | None = None

#: the installed time source (``time.perf_counter`` unless replaced)
_clock: Callable[[], float] = time.perf_counter


def now() -> float:
    """The current time on the installed clock (wall-clock by default).

    Every deadline comparison in the library reads this, so swapping the
    clock via :func:`install_clock` moves the *whole* cancellation
    machinery — deadlines, budgets, backoff accounting — onto virtual
    time at once.
    """
    return _clock()


def install_clock(
    clock: Callable[[], float] | None,
) -> Callable[[], float]:
    """Install ``clock`` as the time source; returns the previous one.

    ``None`` restores ``time.perf_counter``.  Process-global, like the
    fault hook: install around a harness run, not around concurrent
    production traffic.
    """
    global _clock
    prev = _clock
    _clock = clock if clock is not None else time.perf_counter
    return prev


@contextmanager
def clock_scope(clock: Callable[[], float]) -> Iterator[None]:
    """Install ``clock`` for the duration of the block."""
    prev = install_clock(clock)
    try:
        yield
    finally:
        install_clock(prev)


def checkpoint(deadline: float | None, stage: str) -> None:
    """One cooperative cancellation point.

    Calls the installed fault hook (if any) with ``stage``, then raises
    :class:`~repro.errors.KSPTimeout` when ``deadline`` (an absolute
    value on the installed clock, ``time.perf_counter`` by default) has
    passed.
    """
    hook = _fault_hook
    if hook is not None:
        hook(stage)
    if deadline is not None and _clock() > deadline:
        raise KSPTimeout(f"{stage} exceeded its deadline")


def cancellation_active(deadline: float | None) -> bool:
    """Whether kernels should pay for in-loop checkpoints on this run.

    True when a deadline is set *or* a fault hook is installed — the hook
    must see stage names even on deadline-less runs, or injected faults
    would silently not fire.
    """
    return deadline is not None or _fault_hook is not None


def deadline_in(seconds: float | None) -> float | None:
    """Relative budget (seconds from now) → absolute deadline, or None."""
    if seconds is None:
        return None
    return _clock() + float(seconds)


def remaining(deadline: float | None) -> float:
    """Seconds left until ``deadline`` (``inf`` when none; may be <= 0)."""
    if deadline is None:
        return float("inf")
    return deadline - _clock()


def install_fault_hook(
    hook: Callable[[str], None] | None,
) -> Callable[[str], None] | None:
    """Install ``hook`` as the global fault hook; returns the previous one."""
    global _fault_hook
    prev = _fault_hook
    _fault_hook = hook
    return prev


@contextmanager
def fault_scope(hook: Callable[[str], None]) -> Iterator[None]:
    """Install ``hook`` for the duration of the block (tests, harnesses)."""
    prev = install_fault_hook(hook)
    try:
        yield
    finally:
        install_fault_hook(prev)
