"""ASCII renderers for trace data: stage tree and flame bars.

Operates on span *records* (the dicts written to JSONL) or live
:class:`~repro.obs.tracer.Span` objects, so it works equally on a
just-finished tracer and on a trace file read back days later.  Output is
plain text suitable for ``results/`` artefacts and terminal inspection.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["render_tree", "render_counters"]

_BAR_CHARS = " ▏▎▍▌▋▊▉█"


def _as_records(spans: Iterable[Any]) -> list[dict[str, Any]]:
    out = []
    for s in spans:
        out.append(s if isinstance(s, dict) else s.to_record())
    return out


def _bar(share: float, width: int) -> str:
    """A unicode block bar of ``share``·``width`` cells (eighth-steps)."""
    share = min(max(share, 0.0), 1.0)
    eighths = int(round(share * width * 8))
    full, rem = divmod(eighths, 8)
    return "█" * full + (_BAR_CHARS[rem] if rem else "")


def _fmt_value(v: float) -> str:
    if isinstance(v, float) and not v.is_integer():
        return f"{v:.4g}"
    return str(int(v))


def _counter_suffix(rec: dict[str, Any], max_items: int) -> str:
    items = sorted(rec.get("counters", {}).items())
    shown = [f"{k}={_fmt_value(v)}" for k, v in items[:max_items]]
    if len(items) > max_items:
        shown.append(f"(+{len(items) - max_items} more)")
    return "  ".join(shown)


def render_tree(
    spans: Iterable[Any],
    *,
    bar_width: int = 24,
    max_counters: int = 3,
) -> str:
    """The span forest as an indented stage tree with duration bars.

    Each line shows the span name, wall time, a bar scaled to its share of
    its root span (an inline flamegraph), the percentage, and up to
    ``max_counters`` counters.  Spans are nested under their parents and
    ordered by start time.
    """
    records = _as_records(spans)
    if not records:
        return "(no spans)"
    by_id = {r["id"]: r for r in records}
    children: dict[Any, list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    for r in records:
        parent = r.get("parent")
        if parent in by_id:
            children.setdefault(parent, []).append(r)
        else:
            roots.append(r)
    for sibs in children.values():
        sibs.sort(key=lambda r: r["start"])
    roots.sort(key=lambda r: r["start"])

    lines: list[str] = []

    def emit(rec: dict[str, Any], prefix: str, tail: str, root_dur: float) -> None:
        share = rec["duration"] / root_dur if root_dur > 0 else 0.0
        label = f"{prefix}{tail}{rec['name']}"
        counters = _counter_suffix(rec, max_counters)
        lines.append(
            f"{label:<32} {rec['duration'] * 1e3:>9.3f}ms "
            f"{_bar(share, bar_width):<{bar_width}} {share:>6.1%}"
            + (f"  {counters}" if counters else "")
        )
        kids = children.get(rec["id"], [])
        child_prefix = prefix + ("   " if tail in ("", "└─ ") else "│  ")
        for i, kid in enumerate(kids):
            kid_tail = "└─ " if i == len(kids) - 1 else "├─ "
            emit(kid, child_prefix, kid_tail, root_dur)

    for root in roots:
        emit(root, "", "", root["duration"])
    return "\n".join(lines)


def render_counters(spans: Iterable[Any]) -> str:
    """Counter totals aggregated over every span, one per line."""
    totals: dict[str, float] = {}
    for rec in _as_records(spans):
        for k, v in rec.get("counters", {}).items():
            totals[k] = totals.get(k, 0) + v
    if not totals:
        return "(no counters)"
    width = max(len(k) for k in totals)
    return "\n".join(
        f"{k:<{width}}  {_fmt_value(v)}" for k, v in sorted(totals.items())
    )
