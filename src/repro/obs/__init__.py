"""``repro.obs`` — the span-based observability layer.

One substrate for every measurement the repo makes:

>>> from repro import obs
>>> with obs.use_tracer(obs.Tracer()) as tr:
...     import repro
...     _ = repro.solve(graph, s, t, k=8)          # doctest: +SKIP
>>> print(obs.render_tree(tr.spans))               # doctest: +SKIP

See ``docs/observability.md`` for the span/counter naming scheme and the
JSONL trace format; :mod:`repro.obs.tracer` for the design constraints
(zero deps, near-free when disabled, thread-correct attribution).
"""

from repro.obs.export import load_spans, read_jsonl, write_jsonl
from repro.obs.render import render_counters, render_tree
from repro.obs.tracer import (
    NOOP_TRACER,
    NULL_SPAN,
    NoOpTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    traced,
    use_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "NoOpTracer",
    "NOOP_TRACER",
    "NULL_SPAN",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "traced",
    "write_jsonl",
    "read_jsonl",
    "load_spans",
    "render_tree",
    "render_counters",
]
