"""JSONL trace export / import.

A trace file is newline-delimited JSON: one ``meta`` record first, then
one record per finished span (the dict shape of
:meth:`repro.obs.tracer.Span.to_record`).  The format is append-friendly,
greppable, and loads with nothing but the stdlib — the same reasons the
Chrome trace and OpenTelemetry file exporters picked line-delimited JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.tracer import Tracer

__all__ = ["write_jsonl", "read_jsonl", "load_spans"]


def write_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Write every finished span of ``tracer`` to ``path`` as JSONL."""
    path = Path(path)
    records = tracer.records()
    meta = {
        "type": "meta",
        "version": 1,
        "span_count": len(records),
        "orphan_counters": dict(tracer.orphan_counters),
    }
    with path.open("w") as fh:
        fh.write(json.dumps(meta) + "\n")
        for rec in records:
            fh.write(json.dumps(rec) + "\n")
    return path


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Every record in the trace file (meta + spans), in file order."""
    out: list[dict[str, Any]] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def load_spans(path: str | Path) -> list[dict[str, Any]]:
    """Just the span records of a trace file."""
    return [r for r in read_jsonl(path) if r.get("type") == "span"]
