"""Span-based tracing + metrics: the one instrumentation substrate.

Every measured claim in the paper — pruning ratios, stage breakdowns,
K-(in)sensitivity — is a *per-phase* number, so the library carries one
uniform layer for producing them: a :class:`Tracer` whose **spans** nest
(context-manager or decorator), carry typed **counters / gauges /
histograms**, and export to JSONL for offline analysis (see
``docs/observability.md`` for the file format and
:mod:`repro.obs.render` for the ASCII stage tree).

Design constraints, in priority order:

1. **Zero dependencies** — stdlib only, importable from the innermost SSSP
   kernel without cycles (nothing here imports from ``repro``).
2. **Disabled means free.**  The global tracer defaults to
   :data:`NOOP_TRACER`; every call on it is a constant-time ``pass`` and
   hot kernels additionally gate their counter batches on
   ``tracer.enabled``, so instrumentation stays in library code
   permanently (the ``slow``-marked overhead test bounds the disabled-path
   cost at <3% of a medium KSP query).
3. **Thread-correct attribution.**  The active-span stack is
   thread-local; a worker thread opened under :meth:`Tracer.attach`
   parents its spans to the span its scheduler was running, so fan-out
   work is attributed to the query that caused it.

Instrumentation points emit *aggregates*, not events: an SSSP kernel adds
its relaxation totals once per call, never per edge — which is why the
enabled path is cheap too (one dict update per kernel invocation).
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "Span",
    "Tracer",
    "NoOpTracer",
    "NOOP_TRACER",
    "NULL_SPAN",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "traced",
]


class Span:
    """One timed region of work, with counters attached.

    Created by :meth:`Tracer.span` and activated by ``with``:  entering
    pushes it onto the owning tracer's thread-local stack (making it the
    target of :meth:`Tracer.add` calls), exiting records the duration and
    hands it to the tracer's finished list.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "thread",
        "attrs",
        "counters",
        "gauges",
        "hists",
        "start",
        "duration",
        "_tracer",
    )

    #: real spans accept counters; the shared null span reports False
    enabled = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread = threading.current_thread().name
        self.attrs = attrs
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        #: histogram name -> [count, sum, min, max]
        self.hists: dict[str, list[float]] = {}
        self.start = 0.0
        self.duration = 0.0
        self._tracer = tracer

    # -- metric types ---------------------------------------------------
    def add(self, counter: str, value: float = 1) -> None:
        """Increment a monotonic counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    def set_gauge(self, gauge: str, value: float) -> None:
        """Record a point-in-time value (last write wins)."""
        self.gauges[gauge] = float(value)

    def observe(self, hist: str, value: float) -> None:
        """Fold one observation into a (count, sum, min, max) histogram."""
        h = self.hists.get(hist)
        if h is None:
            self.hists[hist] = [1, float(value), float(value), float(value)]
        else:
            h[0] += 1
            h[1] += value
            if value < h[2]:
                h[2] = value
            if value > h[3]:
                h[3] = value

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = self._tracer._clock() - self.start
        if exc is not None:
            self.attrs["error"] = repr(exc)
        self._tracer._pop(self)
        return False

    def to_record(self) -> dict[str, Any]:
        """The span as a JSONL-ready dict (see docs/observability.md)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "thread": self.thread,
            "start": self.start,
            "duration": self.duration,
            "attrs": _json_safe(self.attrs),
            "counters": dict(self.counters),
            "gauges": _json_safe(self.gauges),
            "hists": {k: list(v) for k, v in self.hists.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration * 1e3:.3f}ms)"
        )


def _json_safe(mapping: dict[str, Any]) -> dict[str, Any]:
    """Replace non-finite floats (json.loads chokes on bare Infinity)."""
    out = {}
    for k, v in mapping.items():
        if isinstance(v, float) and (v != v or v in (float("inf"), float("-inf"))):
            out[k] = repr(v)
        else:
            out[k] = v
    return out


class _NullSpan:
    """The shared do-nothing span the no-op tracer hands out."""

    __slots__ = ()
    enabled = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, counter: str, value: float = 1) -> None:
        pass

    def set_gauge(self, gauge: str, value: float) -> None:
        pass

    def observe(self, hist: str, value: float) -> None:
        pass


NULL_SPAN = _NullSpan()


class NoOpTracer:
    """The always-installed default: every operation is a constant ``pass``.

    Hot call sites check :attr:`enabled` once and skip building their
    counter batch entirely; everything else may call methods blindly.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def current(self) -> _NullSpan:
        return NULL_SPAN

    def add(self, counter: str, value: float = 1) -> None:
        pass

    def set_gauge(self, gauge: str, value: float) -> None:
        pass

    def observe(self, hist: str, value: float) -> None:
        pass

    @contextmanager
    def attach(self, span: object) -> Iterator[None]:
        yield


NOOP_TRACER = NoOpTracer()


class Tracer:
    """Collects finished spans; the active-span stack is per-thread.

    Parameters
    ----------
    clock:
        Monotonic time source (``time.perf_counter`` by default); spans
        record ``start`` and ``duration`` in its units.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._next_id = 1
        self._tls = threading.local()
        #: finished spans, in completion order (children before parents)
        self.spans: list[Span] = []
        #: counters recorded while no span was active on the thread
        self.orphan_counters: dict[str, float] = {}

    # -- thread-local stack --------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - misnested exit
            stack.remove(span)
        with self._lock:
            self.spans.append(span)

    # -- span creation --------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; ``with tracer.span("stage"):`` activates it.

        The parent is the thread's current active span, falling back to
        the span :meth:`attach` adopted for this thread (worker-thread
        attribution), else None (a root).
        """
        stack = self._stack()
        if stack:
            parent = stack[-1].span_id
        else:
            parent = getattr(self._tls, "inherit", None)
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, name, span_id, parent, attrs)

    def current(self) -> Span | _NullSpan:
        """The thread's active span, or :data:`NULL_SPAN` when none."""
        stack = self._stack()
        return stack[-1] if stack else NULL_SPAN

    @contextmanager
    def attach(self, span: Span | int | None) -> Iterator[None]:
        """Adopt ``span`` as this thread's parent for new root spans.

        A scheduler hands the span it is executing under to its worker
        threads; spans the workers open then parent correctly even though
        the workers' own stacks start empty.
        """
        prev = getattr(self._tls, "inherit", None)
        self._tls.inherit = (
            span.span_id if isinstance(span, Span) else span
        )
        try:
            yield
        finally:
            self._tls.inherit = prev

    # -- metrics on the active span ------------------------------------
    def add(self, counter: str, value: float = 1) -> None:
        """Increment ``counter`` on the thread's active span.

        With no active span the value accumulates in
        :attr:`orphan_counters` instead of being lost.
        """
        stack = self._stack()
        if stack:
            stack[-1].add(counter, value)
        else:
            with self._lock:
                self.orphan_counters[counter] = (
                    self.orphan_counters.get(counter, 0) + value
                )

    def set_gauge(self, gauge: str, value: float) -> None:
        stack = self._stack()
        if stack:
            stack[-1].set_gauge(gauge, value)

    def observe(self, hist: str, value: float) -> None:
        stack = self._stack()
        if stack:
            stack[-1].observe(hist, value)

    # -- inspection -----------------------------------------------------
    def find(self, name: str) -> list[Span]:
        """All finished spans with this name, in completion order."""
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def total(self, counter: str) -> float:
        """Sum of one counter over every finished span (+ orphans)."""
        with self._lock:
            out = sum(s.counters.get(counter, 0) for s in self.spans)
            return out + self.orphan_counters.get(counter, 0)

    def counter_totals(self) -> dict[str, float]:
        """Every counter summed over all finished spans (+ orphans).

        Key-sorted so the dict serializes deterministically — the load
        runner exports these per run-table cell, and byte-identical
        metrics files are a contract there.
        """
        with self._lock:
            out: dict[str, float] = dict(self.orphan_counters)
            for span in self.spans:
                for name, value in span.counters.items():
                    out[name] = out.get(name, 0) + value
        return dict(sorted(out.items()))

    def records(self) -> list[dict[str, Any]]:
        """Every finished span as a JSONL-ready dict."""
        with self._lock:
            return [s.to_record() for s in self.spans]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(spans={len(self.spans)})"


# ---------------------------------------------------------------------------
# the process-global tracer
# ---------------------------------------------------------------------------
_GLOBAL: Tracer | NoOpTracer = NOOP_TRACER


def get_tracer() -> Tracer | NoOpTracer:
    """The process-global tracer (the no-op singleton unless installed)."""
    return _GLOBAL


def set_tracer(tracer: Tracer | NoOpTracer | None) -> Tracer | NoOpTracer:
    """Install ``tracer`` globally (``None`` restores the no-op); returns it."""
    global _GLOBAL
    _GLOBAL = tracer if tracer is not None else NOOP_TRACER
    return _GLOBAL


@contextmanager
def use_tracer(tracer: Tracer | NoOpTracer) -> Iterator[Tracer | NoOpTracer]:
    """Temporarily install ``tracer``; restores the previous one on exit."""
    global _GLOBAL
    prev = _GLOBAL
    _GLOBAL = tracer
    try:
        yield tracer
    finally:
        _GLOBAL = prev


def traced(name: str | None = None, **attrs: Any) -> Callable:
    """Decorator: run the function under a span on the global tracer.

    >>> @traced("load")
    ... def load(): ...
    """

    def deco(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            with get_tracer().span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return deco
