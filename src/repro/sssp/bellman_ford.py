"""Vectorised Bellman–Ford: the oracle the other kernels are tested against.

One numpy relaxation sweep over the full edge array per round, at most
``n - 1`` rounds with early exit.  O(nm) worst case, but trivially correct,
which is exactly what a reference implementation should be.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VertexError
from repro.graph.csr import CSRGraph
from repro.paths import INF
from repro.sssp.result import SSSPResult, SSSPStats

__all__ = ["bellman_ford"]


def bellman_ford(graph: CSRGraph, source: int) -> SSSPResult:
    """Bellman–Ford SSSP from ``source``.

    The library guarantees positive weights, so no negative-cycle check is
    needed; the loop simply runs until a sweep makes no improvement.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise VertexError(f"source {source} out of range [0, {n})")

    src = graph.edge_sources()
    dst = graph.indices
    w = graph.weights

    dist = np.full(n, INF, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0
    parent[source] = source
    stats = SSSPStats()

    # Group-boundary scratch, hoisted out of the sweep loop (RPR003):
    # first[0] is always True; only first[1:] is rewritten per round.
    first = np.ones(dst.size, dtype=bool)

    for _ in range(max(n - 1, 1)):
        cand = dist[src] + w
        stats.edges_relaxed += int(w.size)
        stats.phases += 1
        stats.phase_work.append(int(w.size))
        # per-target minimum via lexsort, same reduction as Δ-stepping
        order = np.lexsort((cand, dst))
        d_sorted = dst[order]
        first[1:] = d_sorted[1:] != d_sorted[:-1]
        best_t = d_sorted[first]
        best_d = cand[order][first]
        best_p = src[order][first]
        improved = best_d < dist[best_t]
        if not np.any(improved):
            break
        upd = best_t[improved]
        dist[upd] = best_d[improved]
        parent[upd] = best_p[improved]

    stats.vertices_settled = int(np.isfinite(dist).sum())
    return SSSPResult(source=source, dist=dist, parent=parent, stats=stats)
