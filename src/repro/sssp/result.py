"""Shared result/statistics types for the SSSP kernels."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SSSPStats", "SSSPResult"]


@dataclass
class SSSPStats:
    """Work counters every SSSP kernel fills in.

    These feed the parallel cost-model simulator (see
    :mod:`repro.parallel`): ``edges_relaxed`` is the data-parallel work,
    ``phases`` the number of synchronisation points a parallel execution of
    the same traversal would need (Δ-stepping inner iterations; for
    Dijkstra it equals the settled count because the algorithm is inherently
    one-vertex-at-a-time).
    """

    edges_relaxed: int = 0
    vertices_settled: int = 0
    heap_pushes: int = 0
    phases: int = 0
    #: Per-phase edge-relaxation counts; only Δ-stepping fills this in.
    phase_work: list[int] = field(default_factory=list)

    @property
    def total_work(self) -> int:
        """Abstract work units: edge relaxations plus vertex settles."""
        return self.edges_relaxed + self.vertices_settled


@dataclass
class SSSPResult:
    """Distances and parents from one SSSP run.

    ``dist[v]`` is ``inf`` for unreached vertices and ``parent[v]`` is ``-1``
    (with ``parent[source] == source``).  For a *reverse* SSSP (run on the
    transpose graph from the target) the arrays are in transpose-space:
    ``dist[v]`` is the v→target distance and ``parent[v]`` is the next hop
    toward the target.
    """

    source: int
    dist: np.ndarray
    parent: np.ndarray
    stats: SSSPStats = field(default_factory=SSSPStats)

    def reached(self, v: int) -> bool:
        """True when ``v`` was reached from the source."""
        return bool(np.isfinite(self.dist[v]))

    def num_reached(self) -> int:
        """Number of vertices with a finite distance."""
        return int(np.isfinite(self.dist).sum())

    # Cheap accessors shared with WorkspaceResult, so KSP code can consume
    # either result type without touching the O(n) arrays.
    def dist_of(self, v: int) -> float:
        """Scalar distance read (``inf`` when unreached)."""
        return float(self.dist[v])

    def parent_of(self, v: int) -> int:
        """Scalar parent read (``-1`` when unreached)."""
        return int(self.parent[v])

    def reconstruct(self, vertex: int) -> list[int] | None:
        """``[source, ..., vertex]`` from the parent array, or ``None``."""
        from repro.paths import reconstruct_path

        return reconstruct_path(self.parent, self.source, vertex)
