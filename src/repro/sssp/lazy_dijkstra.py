"""Pausable, resumable Dijkstra — the SSSP-reuse engine behind SB*.

The SB* algorithm (Al Zoobi, Coudert, Nisse) avoids recomputing reverse
shortest-path trees from scratch: when a deviation search needs the distance
of one more vertex, it *resumes* a previously paused Dijkstra instead of
starting over.  :class:`LazyDijkstra` is that primitive: construction does no
work; :meth:`distance_to` settles vertices only until the queried vertex is
final, and subsequent queries continue from the paused heap state.
"""

from __future__ import annotations

import heapq
from typing import Collection

import numpy as np

from repro.errors import VertexError
from repro.graph.csr import CSRGraph
from repro.paths import INF
from repro.sssp.result import SSSPResult, SSSPStats

__all__ = ["LazyDijkstra"]


class LazyDijkstra:
    """Incremental Dijkstra from a fixed source on a fixed graph.

    Parameters
    ----------
    graph:
        The graph to search.  Pass ``graph.reverse()`` with the KSP target
        as ``source`` to get an incrementally-computed reverse SP tree.
    source:
        Root vertex.
    banned_vertices:
        Vertices excluded from the search, fixed for the lifetime of this
        instance (a new removal set needs a new instance — SB* shares
        instances between deviations with the same removal set).
    workspace:
        A :class:`~repro.sssp.workspace.SSSPWorkspace` bound to ``graph``.
        When given, ``dist``/``parent``/``settled`` are *borrowed* from the
        workspace's reusable buffer pool instead of freshly allocated, and
        the previous tenant's writes are undone sparsely (O(its work), not
        O(n)).  Only one workspace-backed instance may be live at a time —
        acquiring revokes the previous tenant — so this suits sequential
        throwaway trees, not SB's simultaneous cache.  :meth:`snapshot`
        copies out of the pool and is safe to keep.
    """

    def __init__(
        self,
        graph: CSRGraph,
        source: int,
        *,
        banned_vertices: Collection[int] | np.ndarray | None = None,
        workspace=None,
    ) -> None:
        n = graph.num_vertices
        if not 0 <= source < n:
            raise VertexError(f"source {source} out of range [0, {n})")
        self.graph = graph
        self.source = source
        if workspace is not None:
            if workspace.graph is not graph:
                raise ValueError(
                    "workspace is bound to a different graph; create one "
                    "SSSPWorkspace per graph"
                )
            self.dist, self.parent, self.settled, self._touched = (
                workspace.acquire_numpy()
            )
        else:
            self.dist = np.full(n, INF, dtype=np.float64)
            self.parent = np.full(n, -1, dtype=np.int64)
            self.settled = np.zeros(n, dtype=bool)
            self._touched = None
        self.stats = SSSPStats()
        if banned_vertices is None:
            self._banned = None
        elif isinstance(banned_vertices, np.ndarray) and banned_vertices.dtype == bool:
            self._banned = banned_vertices.copy()
        else:
            self._banned = np.zeros(n, dtype=bool)
            ids = list(banned_vertices)
            if ids:
                self._banned[np.asarray(ids, dtype=np.int64)] = True
        if self._banned is not None and self._banned[source]:
            raise VertexError(f"source {source} is banned")
        self.dist[source] = 0.0
        self.parent[source] = source
        if self._touched is not None:
            self._touched.append(source)
        self._heap: list[tuple[float, int]] = [(0.0, source)]

    @property
    def exhausted(self) -> bool:
        """True when every reachable vertex has been settled."""
        return not self._heap

    def distance_to(self, v: int) -> float:
        """Settle vertices until ``v`` is final; return its distance.

        Returns ``inf`` when ``v`` is unreachable (or banned).  Each call
        resumes from where the previous one paused — this is the "resume the
        previously computed SSSP" behaviour the paper attributes to SB*.
        """
        if not 0 <= v < self.graph.num_vertices:
            raise VertexError(f"vertex {v} out of range")
        if self.settled[v]:
            return float(self.dist[v])
        if self._banned is not None and self._banned[v]:
            return INF

        heap = self._heap
        dist = self.dist
        parent = self.parent
        settled = self.settled
        banned = self._banned
        touched = self._touched
        begins, ends, indices, weights, edge_mask = self.graph.adjacency_arrays()
        stats = self.stats
        push = heapq.heappush
        pop = heapq.heappop

        while heap:
            d, u = pop(heap)
            if settled[u]:
                continue
            settled[u] = True
            stats.vertices_settled += 1
            lo, hi = begins[u], ends[u]
            for e in range(lo, hi):
                if edge_mask is not None and not edge_mask[e]:
                    continue
                t = indices[e]
                if settled[t]:
                    continue
                if banned is not None and banned[t]:
                    continue
                stats.edges_relaxed += 1
                nd = d + weights[e]
                if nd < dist[t]:
                    dist[t] = nd
                    parent[t] = u
                    if touched is not None:
                        touched.append(t)
                    push(heap, (nd, t))
                    stats.heap_pushes += 1
            if u == v:
                return float(d)
        return float(dist[v]) if settled[v] else INF

    def run_to_completion(self) -> SSSPResult:
        """Settle everything reachable and return a full :class:`SSSPResult`."""
        heap = self._heap
        while heap:
            head = heap[0][1]
            if self.settled[head]:
                heapq.heappop(heap)  # stale entry: lazy deletion
                continue
            self.distance_to(head)
        self.stats.phases = self.stats.vertices_settled
        return SSSPResult(
            source=self.source,
            dist=self.dist,
            parent=self.parent,
            stats=self.stats,
        )

    def snapshot(self) -> "LazyDijkstra":
        """Deep-copy the paused state (SB stores one per prefix tree)."""
        clone = object.__new__(LazyDijkstra)
        clone.graph = self.graph
        clone.source = self.source
        clone.dist = self.dist.copy()
        clone.parent = self.parent.copy()
        clone.settled = self.settled.copy()
        clone._touched = None  # the copy owns its arrays outright
        clone.stats = SSSPStats(
            edges_relaxed=self.stats.edges_relaxed,
            vertices_settled=self.stats.vertices_settled,
            heap_pushes=self.stats.heap_pushes,
            phases=self.stats.phases,
            phase_work=list(self.stats.phase_work),
        )
        clone._banned = None if self._banned is None else self._banned.copy()
        clone._heap = list(self._heap)
        return clone

    def memory_bytes(self) -> int:
        """Approximate state size — SB's space/time trade-off is about this."""
        base = self.dist.nbytes + self.parent.nbytes + self.settled.nbytes
        if self._banned is not None:
            base += self._banned.nbytes
        return int(base + 16 * len(self._heap))
