"""Reusable, epoch-stamped SSSP workspaces — the KSP hot-path engine.

A Yen-style KSP run issues thousands of spur-search Dijkstras against one
graph.  Each fresh-allocation call pays O(n) before a single edge is
relaxed: three ``np.full`` arrays, plus a banned-vertex mask rebuilt from a
Python collection.  For a K=64 query on a 100k-vertex graph that is tens of
millions of wasted writes.  :class:`SSSPWorkspace` amortises all of it:

* ``dist``/``parent`` and the settled flags live in flat arrays that are
  **never cleared**.  A per-vertex *epoch stamp* records which query last
  wrote each slot; a slot whose stamp is stale reads as "+inf / unreached /
  unsettled".  Bumping the generation counter therefore *is* the reset —
  per-query setup is O(1) instead of O(n).
* the graph's CSR arrays are mirrored once into flat Python lists, because
  a scalar Dijkstra loop over list storage runs ~2x faster than the same
  loop doing per-element NumPy indexing (measured by
  ``benchmarks/bench_hot_path.py``; see also the repo's HPC-Python notes).
  The mirror is built lazily, so solvers that never need a repair search
  (OptYen on friendly graphs) never pay it.
* the banned-vertex mask is maintained **incrementally**: consecutive spur
  searches of one deviation pass differ by a single prefix vertex, so
  :meth:`apply_bans` flips only the set difference instead of rebuilding a
  ``bool[n]`` mask per call.

``dijkstra(..., workspace=ws)`` runs on this state and returns a
:class:`WorkspaceResult` whose values are bitwise-identical to the
fresh-allocation kernel's output (the property tests assert exactly that).
A workspace serves **one query at a time**: results read the shared state
through their epoch, and a result left over from an earlier epoch raises
``RuntimeError`` on access unless it was materialised first.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.paths import INF

__all__ = ["SSSPWorkspace", "WorkspaceResult"]


class SSSPWorkspace:
    """Reusable traversal state for repeated SSSP queries on one graph.

    Parameters
    ----------
    graph:
        Anything implementing the adjacency-array protocol (a
        :class:`~repro.graph.csr.CSRGraph` or a compaction view).  The
        workspace is permanently bound to it; passing the workspace to a
        kernel running on a different graph raises.

    Notes
    -----
    The workspace is not thread-safe and serves one in-flight query at a
    time.  ``dist``/``parent`` reads must go through the owning query's
    :class:`WorkspaceResult` (which knows its epoch); everything else here
    is the kernels' private scratch space.
    """

    __slots__ = (
        "graph",
        "n",
        "epoch",
        "_dist",
        "_parent",
        "_dstamp",
        "_sstamp",
        "_ban_bytes",
        "ban",
        "_ban_current",
        "_adj",
        "_np_dist",
        "_np_parent",
        "_np_settled",
        "_np_touched",
        "_ds_dist",
        "_ds_parent",
        "_ds_needs",
        "_ds_inr",
        "_ds_touched",
    )

    def __init__(self, graph) -> None:
        self.graph = graph
        n = int(graph.num_vertices)
        self.n = n
        #: generation counter; bumped once per query by :meth:`next_epoch`
        self.epoch = 0
        # scalar-kernel state (flat Python lists; see module docstring)
        self._dist: list[float] = [INF] * n
        self._parent: list[int] = [-1] * n
        self._dstamp: list[int] = [0] * n  # epoch that last wrote dist/parent
        self._sstamp: list[int] = [0] * n  # epoch that settled the vertex
        # incremental banned-vertex mask: a bytearray for ~2x faster scalar
        # reads, with a zero-copy NumPy bool view for vectorised consumers
        self._ban_bytes = bytearray(n)
        self.ban = np.frombuffer(self._ban_bytes, dtype=np.uint8).view(np.bool_)
        self._ban_current: set[int] = set()
        self._adj: tuple | None = None
        # reusable NumPy buffers for array-based tenants (LazyDijkstra)
        self._np_dist: np.ndarray | None = None
        self._np_parent: np.ndarray | None = None
        self._np_settled: np.ndarray | None = None
        self._np_touched: list[int] = []
        # reusable Δ-stepping buffers (delta_stepping tenancy)
        self._ds_dist: np.ndarray | None = None
        self._ds_parent: np.ndarray | None = None
        self._ds_needs: np.ndarray | None = None
        self._ds_inr: np.ndarray | None = None
        self._ds_touched: list[int] = []

    # ------------------------------------------------------------------
    # epoch-stamped scalar state
    # ------------------------------------------------------------------
    def next_epoch(self) -> int:
        """Start a new query: O(1), invalidates every stale slot at once."""
        self.epoch += 1
        return self.epoch

    def scalar_state(self) -> tuple[list[float], list[int], list[int], list[int]]:
        """``(dist, parent, dist_stamp, settled_stamp)`` for a scalar kernel."""
        return self._dist, self._parent, self._dstamp, self._sstamp

    def adjacency_lists(self) -> tuple:
        """The bound graph's adjacency protocol mirrored into Python lists.

        Built on first use and cached: ``(begins, ends, indices, weights,
        edge_mask)`` with ``edge_mask`` ``None`` when the graph has no edge
        filtering (plain CSR).
        """
        if self._adj is None:
            begins, ends, indices, weights, edge_mask = self.graph.adjacency_arrays()
            self._adj = (
                begins.tolist(),
                ends.tolist(),
                indices.tolist(),
                weights.tolist(),
                None if edge_mask is None else edge_mask.tolist(),
            )
        return self._adj

    # ------------------------------------------------------------------
    # incremental banned-vertex mask
    # ------------------------------------------------------------------
    def apply_bans(self, ids: Iterable[int]) -> None:
        """Make the mask equal ``set(ids)`` by flipping only the delta.

        Consecutive deviations of one KSP iteration grow the prefix by one
        vertex, so this is O(1) amortised there; arbitrary jumps (e.g.
        PNC's deferred repairs) cost the symmetric difference — still far
        below the O(n) rebuild the fresh-allocation path performs.
        """
        new = ids if isinstance(ids, (set, frozenset)) else {int(v) for v in ids}
        cur = self._ban_current
        if new == cur:
            return
        bb = self._ban_bytes
        for v in cur - new:
            bb[v] = 0
        for v in new - cur:
            bb[v] = 1
        self._ban_current = set(new)

    def is_banned(self, v: int) -> bool:
        """Scalar read of the incremental mask."""
        return bool(self._ban_bytes[v])

    @property
    def ban_bytes(self) -> bytearray:
        """The mask as a bytearray (fastest scalar-loop reads)."""
        return self._ban_bytes

    # ------------------------------------------------------------------
    # reusable NumPy buffers (LazyDijkstra tenancy)
    # ------------------------------------------------------------------
    def acquire_numpy(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[int]]:
        """Lend the reusable ``dist``/``parent``/``settled`` NumPy buffers.

        The previous tenant's writes are undone *sparsely*: tenants append
        every labelled vertex to the returned ``touched`` list, and the next
        acquisition resets exactly those slots — O(previous query's work),
        not O(n).  Only one tenant may hold the buffers at a time; acquiring
        again revokes the previous tenant's view.
        """
        if self._np_dist is None:
            n = self.n
            self._np_dist = np.full(n, INF, dtype=np.float64)
            self._np_parent = np.full(n, -1, dtype=np.int64)
            self._np_settled = np.zeros(n, dtype=bool)
        elif self._np_touched:
            idx = np.asarray(self._np_touched, dtype=np.int64)
            self._np_dist[idx] = INF
            self._np_parent[idx] = -1
            self._np_settled[idx] = False
        self._np_touched = []
        return self._np_dist, self._np_parent, self._np_settled, self._np_touched

    def acquire_delta(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[int]]:
        """Lend the reusable Δ-stepping buffers.

        Returns ``(dist, parent, needs, in_r, touched)`` under the same
        tenancy contract as :meth:`acquire_numpy`: the previous tenant's
        writes are undone sparsely from its ``touched`` list (every vertex
        the kernel labelled — including a run cancelled mid-bucket, whose
        partial writes are all in ``touched`` because the kernel appends
        eagerly), so acquisition costs O(previous query's work), not O(n).
        Only one tenant may hold the buffers at a time.
        """
        if self._ds_dist is None:
            n = self.n
            self._ds_dist = np.full(n, INF, dtype=np.float64)
            self._ds_parent = np.full(n, -1, dtype=np.int64)
            self._ds_needs = np.zeros(n, dtype=bool)
            self._ds_inr = np.zeros(n, dtype=bool)
        elif self._ds_touched:
            idx = np.asarray(self._ds_touched, dtype=np.int64)
            self._ds_dist[idx] = INF
            self._ds_parent[idx] = -1
            self._ds_needs[idx] = False
            self._ds_inr[idx] = False
        self._ds_touched = []
        return (
            self._ds_dist,
            self._ds_parent,
            self._ds_needs,
            self._ds_inr,
            self._ds_touched,
        )

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Approximate resident size of the workspace state."""
        n = self.n
        total = 8 * 4 * n + n  # four pointer lists + ban bytes
        if self._adj is not None:
            begins, _, indices, weights, edge_mask = self._adj
            total += 8 * (len(begins) * 2 + len(indices) + len(weights))
            if edge_mask is not None:
                total += 8 * len(edge_mask)
        if self._np_dist is not None:
            total += self._np_dist.nbytes + self._np_parent.nbytes
            total += self._np_settled.nbytes
        if self._ds_dist is not None:
            total += self._ds_dist.nbytes + self._ds_parent.nbytes
            total += self._ds_needs.nbytes + self._ds_inr.nbytes
        return int(total)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SSSPWorkspace(n={self.n}, epoch={self.epoch}, "
            f"adj_cached={self._adj is not None})"
        )


class WorkspaceResult:
    """An SSSP result that reads the workspace state through its epoch.

    Duck-types :class:`~repro.sssp.result.SSSPResult`: it exposes
    ``source``, ``stats``, ``reached``/``num_reached`` and lazy ``dist``/
    ``parent`` array properties, plus the cheap accessors the KSP hot path
    uses (:meth:`dist_of`, :meth:`parent_of`, :meth:`reconstruct`) that cost
    O(1)/O(path) instead of materialising O(n) arrays.

    Validity: the accessors read the live workspace and are valid **until
    the workspace starts its next query**; after that they raise
    ``RuntimeError``.  Accessing ``.dist``/``.parent`` (or calling
    :meth:`materialize`) snapshots the values into private arrays that stay
    valid forever — that is the slow compatibility path, equal element-wise
    to what the fresh-allocation kernel would have returned.
    """

    __slots__ = ("source", "stats", "_ws", "_epoch", "_dist_arr", "_parent_arr")

    def __init__(self, ws: SSSPWorkspace, source: int, epoch: int, stats) -> None:
        self.source = int(source)
        self.stats = stats
        self._ws = ws
        self._epoch = epoch
        self._dist_arr: np.ndarray | None = None
        self._parent_arr: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _check_fresh(self) -> None:
        if self._ws.epoch != self._epoch:
            raise RuntimeError(
                "stale WorkspaceResult: the workspace has started a newer "
                "query; call materialize() before reusing the workspace if "
                "you need the arrays to outlive it"
            )

    def reached(self, v: int) -> bool:
        """True when ``v`` was labelled by this query."""
        if self._dist_arr is not None:
            return bool(np.isfinite(self._dist_arr[v]))
        self._check_fresh()
        return self._ws._dstamp[v] == self._epoch

    def num_reached(self) -> int:
        """Number of vertices with a finite distance."""
        if self._dist_arr is not None:
            return int(np.isfinite(self._dist_arr).sum())
        self._check_fresh()
        ep = self._epoch
        return sum(1 for s in self._ws._dstamp if s == ep)

    def dist_of(self, v: int) -> float:
        """O(1) distance read (``inf`` when unreached)."""
        if self._dist_arr is not None:
            return float(self._dist_arr[v])
        self._check_fresh()
        return self._ws._dist[v] if self._ws._dstamp[v] == self._epoch else INF

    def parent_of(self, v: int) -> int:
        """O(1) parent read (``-1`` when unreached)."""
        if self._parent_arr is not None:
            return int(self._parent_arr[v])
        self._check_fresh()
        return self._ws._parent[v] if self._ws._dstamp[v] == self._epoch else -1

    def reconstruct(self, vertex: int) -> list[int] | None:
        """Walk parents from ``vertex`` back to the source — O(path length).

        Same contract as :func:`repro.paths.reconstruct_path`: returns
        ``[source, ..., vertex]`` or ``None`` when ``vertex`` is unreached.
        """
        if self._parent_arr is not None:
            from repro.paths import reconstruct_path

            return reconstruct_path(self._parent_arr, self.source, vertex)
        self._check_fresh()
        ws = self._ws
        ep = self._epoch
        source = self.source
        vertex = int(vertex)
        if ws._dstamp[vertex] != ep and vertex != source:
            return None
        parent = ws._parent
        out = [vertex]
        limit = ws.n + 1
        while out[-1] != source:
            out.append(parent[out[-1]])
            if len(out) > limit:  # pragma: no cover - corrupt-state guard
                raise RuntimeError("parent chain contains a cycle")
        out.reverse()
        return out

    # ------------------------------------------------------------------
    def materialize(self) -> None:
        """Snapshot ``dist``/``parent`` into arrays that outlive the epoch."""
        if self._dist_arr is not None:
            return
        self._check_fresh()
        ws = self._ws
        ep = self._epoch
        n = ws.n
        dist_arr = np.full(n, INF, dtype=np.float64)
        parent_arr = np.full(n, -1, dtype=np.int64)
        dstamp = ws._dstamp
        wdist = ws._dist
        wparent = ws._parent
        for v in range(n):
            if dstamp[v] == ep:
                dist_arr[v] = wdist[v]
                parent_arr[v] = wparent[v]
        self._dist_arr = dist_arr
        self._parent_arr = parent_arr

    @property
    def dist(self) -> np.ndarray:
        """``float64[n]`` distances — materialises a snapshot on first use."""
        self.materialize()
        assert self._dist_arr is not None
        return self._dist_arr

    @property
    def parent(self) -> np.ndarray:
        """``int64[n]`` parents — materialises a snapshot on first use."""
        self.materialize()
        assert self._parent_arr is not None
        return self._parent_arr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "materialized" if self._dist_arr is not None else f"epoch={self._epoch}"
        return f"WorkspaceResult(source={self.source}, {state})"
