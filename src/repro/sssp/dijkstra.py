"""Binary-heap Dijkstra with the deviation-search hooks Yen-style KSP needs.

This kernel is deliberately a tight scalar loop: inside a KSP run it is
called thousands of times on small remaining graphs, where the fixed cost of
vectorised machinery would dominate.  The numpy arrays of the CSR are read
directly (local-variable aliases hoisted out of the loop, per the
optimisation guide), and lazy deletion keeps the heap simple.

Two execution modes share the same relaxation logic and produce
bitwise-identical labels:

* **fresh allocation** (``workspace=None``, the default): every call
  allocates its own ``dist``/``parent``/``settled`` arrays — simple,
  re-entrant, and exactly the historical behaviour;
* **workspace reuse** (``workspace=SSSPWorkspace(graph)``): per-query setup
  is O(1) via epoch stamps, the banned-vertex mask is maintained
  incrementally, and the scalar loop runs over the workspace's Python-list
  mirror of the CSR (~2x faster than per-element NumPy indexing).  This is
  the KSP spur-search hot path.
"""

from __future__ import annotations

import heapq
from typing import Collection

import numpy as np

from repro.cancel import SETTLE_CHECK_INTERVAL, cancellation_active, checkpoint
from repro.errors import VertexError
from repro.graph.csr import CSRGraph
from repro.obs.tracer import get_tracer
from repro.paths import INF
from repro.sssp.result import SSSPResult, SSSPStats
from repro.sssp.workspace import SSSPWorkspace, WorkspaceResult

__all__ = ["dijkstra"]


def dijkstra(
    graph: CSRGraph,
    source: int,
    *,
    target: int | None = None,
    banned_vertices: Collection[int] | np.ndarray | None = None,
    banned_edges: Collection[tuple[int, int]] | None = None,
    cutoff: float | None = None,
    workspace: SSSPWorkspace | None = None,
    deadline: float | None = None,
) -> SSSPResult | WorkspaceResult:
    """Single-source shortest paths from ``source``.

    Parameters
    ----------
    graph:
        The CSR graph.  For a reverse SSSP pass ``graph.reverse()`` and the
        target as ``source``.
    target:
        Stop as soon as this vertex is settled (Yen's suffix searches only
        need the one distance).  The returned ``dist`` is still valid for
        every vertex settled before the stop.
    banned_vertices:
        Vertices to treat as deleted (Yen's prefix/"red" vertices).  Either
        an iterable of ids or a ``bool[n]`` mask.  The source itself must
        not be banned.
    banned_edges:
        Set of ``(u, v)`` pairs to skip (Yen's removed deviation edges).
    cutoff:
        Abandon label values strictly greater than this (used by the
        K-upper-bound-aware repair searches: any suffix longer than the
        bound can never enter the K results).
    workspace:
        A :class:`~repro.sssp.workspace.SSSPWorkspace` bound to ``graph``.
        When given, the query reuses the workspace's epoch-stamped state
        (O(1) setup, incremental ban mask) and returns a
        :class:`~repro.sssp.workspace.WorkspaceResult` — same values, valid
        until the workspace's next query unless materialised.  Id-iterable
        ``banned_vertices`` are folded into the workspace's incremental
        mask; a ``bool[n]`` mask is honoured directly in either mode.
    deadline:
        Absolute ``time.perf_counter()`` value after which the kernel
        cooperatively raises :class:`~repro.errors.KSPTimeout`, checked at
        entry and once per settle batch
        (:data:`repro.cancel.SETTLE_CHECK_INTERVAL` vertices).

    Returns
    -------
    SSSPResult | WorkspaceResult
        ``dist``/``parent`` arrays plus work counters.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise VertexError(f"source {source} out of range [0, {n})")
    if target is not None and not 0 <= target < n:
        raise VertexError(f"target {target} out of range [0, {n})")

    if workspace is not None:
        if workspace.graph is not graph:
            raise ValueError(
                "workspace is bound to a different graph; create one "
                "SSSPWorkspace per graph"
            )
        return _dijkstra_workspace(
            workspace, source, target, banned_vertices, banned_edges, cutoff, deadline
        )

    banned_mask: np.ndarray | None
    if banned_vertices is None:
        banned_mask = None
    elif isinstance(banned_vertices, np.ndarray) and banned_vertices.dtype == bool:
        banned_mask = banned_vertices
    else:
        banned_mask = np.zeros(n, dtype=bool)
        ids = list(banned_vertices)
        if ids:
            banned_mask[np.asarray(ids, dtype=np.int64)] = True
    if banned_mask is not None and banned_mask[source]:
        raise VertexError(f"source {source} is banned")

    dist = np.full(n, INF, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.int64)
    settled = np.zeros(n, dtype=bool)
    stats = SSSPStats()

    dist[source] = 0.0
    parent[source] = source
    heap: list[tuple[float, int]] = [(0.0, source)]
    push = heapq.heappush
    pop = heapq.heappop

    begins, ends, indices, weights, edge_mask = graph.adjacency_arrays()
    check_edges = bool(banned_edges)
    check_cancel = cancellation_active(deadline)
    if check_cancel:
        checkpoint(deadline, "sssp.dijkstra")

    while heap:
        d, u = pop(heap)
        if settled[u]:
            continue  # stale heap entry (lazy deletion)
        settled[u] = True
        stats.vertices_settled += 1
        if (
            check_cancel
            and stats.vertices_settled & (SETTLE_CHECK_INTERVAL - 1) == 0
        ):
            checkpoint(deadline, "sssp.dijkstra")
        if u == target:
            break
        lo, hi = begins[u], ends[u]
        for e in range(lo, hi):
            if edge_mask is not None and not edge_mask[e]:
                continue
            v = indices[e]
            if settled[v]:
                continue
            if banned_mask is not None and banned_mask[v]:
                continue
            if check_edges and (u, v) in banned_edges:  # type: ignore[operator]
                continue
            stats.edges_relaxed += 1
            nd = d + weights[e]
            if cutoff is not None and nd > cutoff:
                continue
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
                stats.heap_pushes += 1

    # A serial Dijkstra settles one vertex per step, which is exactly its
    # parallel-phase structure: report it so the simulator can model the
    # non-scalable inner loop.
    stats.phases = stats.vertices_settled
    tracer = get_tracer()
    if tracer.enabled:
        tracer.add("sssp.calls")
        tracer.add("sssp.edges_relaxed", stats.edges_relaxed)
        tracer.add("sssp.vertices_settled", stats.vertices_settled)
        tracer.add("sssp.heap_pushes", stats.heap_pushes)
    return SSSPResult(source=source, dist=dist, parent=parent, stats=stats)


def _dijkstra_workspace(
    ws: SSSPWorkspace,
    source: int,
    target: int | None,
    banned_vertices,
    banned_edges,
    cutoff: float | None,
    deadline: float | None,
) -> WorkspaceResult:
    """The epoch-stamped kernel: same labels, O(1) per-query setup."""
    # Resolve the banned-vertex input.  A caller-supplied bool mask is
    # honoured as-is (it is already O(1) to consume); id iterables fold into
    # the workspace's incremental mask so repeat callers pay only the delta
    # between consecutive ban sets instead of an O(n) rebuild.
    ban: np.ndarray | bytearray | None
    if banned_vertices is None:
        ws.apply_bans(())
        ban = None
    elif (
        isinstance(banned_vertices, np.ndarray) and banned_vertices.dtype == bool
    ):
        ban = banned_vertices
        if ban[source]:
            raise VertexError(f"source {source} is banned")
    else:
        ws.apply_bans(banned_vertices)
        ban = ws.ban_bytes
        if ban[source]:
            raise VertexError(f"source {source} is banned")

    stats = SSSPStats()
    ep = ws.next_epoch()
    dist, parent, dstamp, sstamp = ws.scalar_state()
    begins, ends, indices, weights, edge_mask = ws.adjacency_lists()

    source = int(source)
    tgt = -1 if target is None else int(target)
    check_edges = bool(banned_edges)
    check_ban = ban is not None
    check_cancel = cancellation_active(deadline)
    if check_cancel:
        checkpoint(deadline, "sssp.dijkstra")

    dist[source] = 0.0
    parent[source] = source
    dstamp[source] = ep
    heap: list[tuple[float, int]] = [(0.0, source)]
    push = heapq.heappush
    pop = heapq.heappop

    settled_ct = 0
    relaxed = 0
    pushes = 0

    while heap:
        d, u = pop(heap)
        if sstamp[u] == ep:
            continue  # stale heap entry (lazy deletion)
        sstamp[u] = ep
        settled_ct += 1
        if check_cancel and settled_ct & (SETTLE_CHECK_INTERVAL - 1) == 0:
            checkpoint(deadline, "sssp.dijkstra")
        if u == tgt:
            break
        lo, hi = begins[u], ends[u]
        for e in range(lo, hi):
            if edge_mask is not None and not edge_mask[e]:
                continue
            v = indices[e]
            if sstamp[v] == ep:
                continue
            if check_ban and ban[v]:
                continue
            if check_edges and (u, v) in banned_edges:
                continue
            relaxed += 1
            nd = d + weights[e]
            if cutoff is not None and nd > cutoff:
                continue
            if dstamp[v] != ep or nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                dstamp[v] = ep
                push(heap, (nd, v))
                pushes += 1

    stats.vertices_settled = settled_ct
    stats.edges_relaxed = relaxed
    stats.heap_pushes = pushes
    stats.phases = settled_ct
    tracer = get_tracer()
    if tracer.enabled:
        tracer.add("sssp.calls")
        tracer.add("sssp.edges_relaxed", relaxed)
        tracer.add("sssp.vertices_settled", settled_ct)
        tracer.add("sssp.heap_pushes", pushes)
        tracer.add("workspace.queries")
        if ep > 1:
            tracer.add("workspace.epoch_reuses")
    return WorkspaceResult(ws, source, ep, stats)
