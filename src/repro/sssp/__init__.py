"""Single-source shortest path kernels.

Four kernels with one result contract (:class:`SSSPResult`):

* :mod:`repro.sssp.dijkstra` — binary-heap Dijkstra; the workhorse used
  inside every KSP algorithm (supports target early-stop and banned
  vertices/edges for Yen-style deviations).
* :mod:`repro.sssp.delta_stepping` — Meyer–Sanders Δ-stepping, the
  "parallel SSSP" of the paper; a frontier-centric bucket driver with
  three bitwise-equivalent relax engines selected by ``backend=``
  (``"vectorized"`` numpy frontier kernel, ``"scalar"`` reference loop,
  ``"mp"`` shared-memory multiprocessing via
  :class:`repro.parallel.mp_backend.SharedMemoryDeltaExecutor`).  Emits a
  per-phase work log for the parallel simulator.
* :mod:`repro.sssp.bellman_ford` — reference implementation for tests.
* :mod:`repro.sssp.lazy_dijkstra` — pausable/resumable Dijkstra used by the
  SB* algorithm's SSSP-reuse optimisation.

Plus the reuse layer the KSP hot path is built on:

* :mod:`repro.sssp.workspace` — epoch-stamped :class:`SSSPWorkspace` state
  that ``dijkstra(..., workspace=...)`` and :class:`LazyDijkstra` reuse
  across back-to-back queries, making per-query setup O(1) instead of O(n).
"""

from repro.sssp.result import SSSPResult, SSSPStats
from repro.sssp.workspace import SSSPWorkspace, WorkspaceResult
from repro.sssp.dijkstra import dijkstra
from repro.sssp.delta_stepping import delta_stepping
from repro.sssp.bellman_ford import bellman_ford
from repro.sssp.lazy_dijkstra import LazyDijkstra

__all__ = [
    "SSSPResult",
    "SSSPStats",
    "SSSPWorkspace",
    "WorkspaceResult",
    "dijkstra",
    "delta_stepping",
    "bellman_ford",
    "LazyDijkstra",
]
