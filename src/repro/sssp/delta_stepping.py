"""Meyer–Sanders Δ-stepping with frontier-centric, backend-pluggable relaxation.

This is the paper's parallel SSSP (§6.2).  The algorithm groups vertices
into distance buckets of width Δ; one bucket is processed at a time, and all
edge relaxations inside a bucket step are independent — that step is the
data-parallel unit the paper parallelises with OpenMP.

The kernel is split into a shared *bucket driver* and pluggable *relaxation
engines*, GBBS-style (frontier arrays in, improved-vertex arrays out):

* the driver owns the bucket schedule — the dirty-list frontier tracking,
  the ``needs``/``in_r`` flags, the per-phase work log, deadline
  checkpoints, and footprint recording — and is the same for every backend,
  so each backend sees the identical sequence of relaxation batches;
* a ``"vectorized"`` engine (default) expands each frontier with the
  repeat/cumsum edge map over the graph's cached light/heavy split
  (:meth:`~repro.graph.csr.CSRGraph.light_heavy_split`) and reduces
  duplicate targets with one packed-key sort + ``np.minimum.reduceat``;
* a ``"scalar"`` engine relaxes the same batches one edge at a time in
  plain Python — the auditable reference the fast engines are verified
  bitwise against;
* an ``"mp"`` engine (:mod:`repro.parallel.mp_backend`) partitions each
  frontier across real worker processes over
  ``multiprocessing.shared_memory`` arrays.

Because the driver is shared and every engine resolves duplicate targets
with the same first-minimum-per-target rule, the three backends produce
**bitwise-identical** ``dist`` *and* ``parent`` arrays (tested property).
Per-step edge counts are logged in ``stats.phase_work`` and consumed by the
:mod:`repro.parallel` simulator to derive the thread-scaling curves of
Figure 9.
"""

from __future__ import annotations

import numpy as np

from repro.cancel import cancellation_active, checkpoint
from repro.errors import KSPError, VertexError
from repro.graph.csr import CSRGraph
from repro.obs.tracer import get_tracer
from repro.paths import INF
from repro.sssp.result import SSSPResult, SSSPStats

__all__ = ["delta_stepping", "choose_delta", "BACKENDS"]

#: the Δ-stepping execution backends, in "reference first" order
BACKENDS = ("scalar", "vectorized", "mp")

_EMPTY_I64 = np.empty(0, dtype=np.int64)


def choose_delta(graph: CSRGraph) -> float:
    """The standard Δ heuristic: max edge weight / average out-degree.

    Meyer & Sanders show Δ = Θ(max-weight / degree) balances the number of
    bucket phases against re-relaxation work on random weights.

    Raises
    ------
    KSPError
        When the edge-weight statistics are degenerate (zero or NaN mean
        weight).  Validated CSR construction rejects such weights, but
        graphs built with ``check=False`` can smuggle them in, and the
        heuristic would otherwise return a zero/NaN Δ that the kernel
        rejects with a far less useful message.
    """
    if graph.num_edges == 0:
        return 1.0
    mean_w = float(graph.weights.mean())
    if not np.isfinite(mean_w) or mean_w <= 0.0:
        raise KSPError(
            f"cannot choose a Δ bucket width: mean edge weight is {mean_w!r} "
            "(weights must be finite and strictly positive; was the graph "
            "built with check=False?)"
        )
    avg_deg = max(graph.num_edges / max(graph.num_vertices, 1), 1.0)
    return float(graph.weights.max()) / avg_deg


def _expand_frontier(
    frontier: np.ndarray, begins: np.ndarray, ends: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather the edge positions of every frontier vertex.

    Returns ``(edge_idx, edge_src)`` where ``edge_idx`` indexes the CSR edge
    arrays and ``edge_src`` is the frontier vertex each edge leaves from.
    Pure numpy, no Python loop: the classic repeat/cumsum expansion.
    """
    starts = begins[frontier]
    counts = ends[frontier] - starts
    gathered = int(counts.sum())  # edge count, not a path cost (RPR004)
    if gathered == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    # offset of each vertex's block inside the flat output
    block_starts = np.zeros(frontier.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=block_starts[1:])
    edge_idx = (
        np.arange(gathered, dtype=np.int64)
        - np.repeat(block_starts, counts)
        + np.repeat(starts, counts)
    )
    edge_src = np.repeat(frontier, counts)
    return edge_idx, edge_src


def _relax_batch(
    dist: np.ndarray,
    parent: np.ndarray,
    targets: np.ndarray,
    cands: np.ndarray,
    sources: np.ndarray,
) -> np.ndarray:
    """Apply a batch of relaxation requests; return the improved vertices.

    Duplicate targets are reduced to their minimum candidate first, ties
    broken by batch position (earliest wins), so ``parent`` stays consistent
    with ``dist``.  The reduction packs ``(target, position)`` into one
    int64 key, sorts once, and takes per-group minima with
    ``np.minimum.reduceat`` — ~2× faster than the two-key lexsort it
    replaces, with identical winner selection (the lexsort path survives as
    the fallback for batches too large to pack).
    """
    bs = int(targets.size)
    if bs == 0:
        return targets
    shift = bs.bit_length()
    if int(targets.max()) < (1 << (62 - shift)):
        key = (targets << shift) | np.arange(bs, dtype=np.int64)
        key.sort()  # keys are unique: position bits break every tie
        t_sorted = key >> shift
        pos = key & ((1 << shift) - 1)
        c_sorted = cands[pos]
        group_first = np.ones(bs, dtype=bool)
        group_first[1:] = t_sorted[1:] != t_sorted[:-1]
        starts = np.flatnonzero(group_first)
        gmin = np.minimum.reduceat(c_sorted, starts)
        counts = np.diff(starts, append=bs)
        # winner = earliest batch position attaining its group's minimum;
        # gmin values are exact copies of c_sorted entries, so the equality
        # test selects group members, not approximately-close costs
        seq = np.arange(bs, dtype=np.int64)
        at_min = np.where(c_sorted == np.repeat(gmin, counts), seq, bs)
        win = pos[np.minimum.reduceat(at_min, starts)]
        best_t = t_sorted[starts]
        best_d = gmin
        best_p = sources[win]
    else:  # pragma: no cover - needs n * batch > 2^62
        order = np.lexsort((cands, targets))
        t_sorted = targets[order]
        group_first = np.ones(t_sorted.size, dtype=bool)
        group_first[1:] = t_sorted[1:] != t_sorted[:-1]
        best_t = t_sorted[group_first]
        best_d = cands[order][group_first]
        best_p = sources[order][group_first]
    improved = best_d < dist[best_t]
    upd_t = best_t[improved]
    dist[upd_t] = best_d[improved]
    parent[upd_t] = best_p[improved]
    return upd_t


# ----------------------------------------------------------------------
# relaxation engines
# ----------------------------------------------------------------------
class _VectorizedEngine:
    """Batched edge-map relaxation over NumPy arrays (the default backend).

    Plain CSR graphs go through the cached light/heavy split, so selecting
    a batch's edge class is pure range slicing; compaction views (which
    carry an ``edge_mask``) fall back to per-batch boolean filtering against
    the same traversal protocol every kernel uses.
    """

    def __init__(self, graph, delta, vertex_mask, dist, parent) -> None:
        self.vertex_mask = vertex_mask
        self.dist = dist
        self.parent = parent
        begins, ends, indices, weights, edge_mask = graph.adjacency_arrays()
        if edge_mask is None and hasattr(graph, "light_heavy_split"):
            begins, light_ends, ends, indices, weights = graph.light_heavy_split(
                delta
            )
            self.light_ends = light_ends
            self.light = None
            self.edge_mask = None
        else:
            self.light_ends = None
            self.light = weights <= delta
            self.edge_mask = edge_mask
        self.begins = begins
        self.ends = ends
        self.indices = indices
        self.weights = weights

    def relax(self, frontier, light: bool, label: str, recorder):
        """Relax ``frontier``'s light or heavy edges; return ``(improved,
        batch_size)`` with ``improved`` in ascending vertex order."""
        if self.light_ends is not None:
            if light:
                edge_idx, edge_src = _expand_frontier(
                    frontier, self.begins, self.light_ends
                )
            else:
                edge_idx, edge_src = _expand_frontier(
                    frontier, self.light_ends, self.ends
                )
        else:
            edge_idx, edge_src = _expand_frontier(frontier, self.begins, self.ends)
            if edge_idx.size:
                keep = self.light[edge_idx] if light else ~self.light[edge_idx]
                if self.edge_mask is not None:
                    keep &= self.edge_mask[edge_idx]
                edge_idx, edge_src = edge_idx[keep], edge_src[keep]
        if edge_idx.size == 0:
            return _EMPTY_I64, 0
        targets = self.indices[edge_idx]
        if self.vertex_mask is not None:
            ok = self.vertex_mask[targets]
            edge_idx, edge_src, targets = edge_idx[ok], edge_src[ok], targets[ok]
            if edge_idx.size == 0:
                return _EMPTY_I64, 0
        cands = self.dist[edge_src] + self.weights[edge_idx]
        improved = _relax_batch(self.dist, self.parent, targets, cands, edge_src)
        if recorder is not None:
            recorder.record_step(label, edge_src, targets, improved)
        return improved, int(edge_idx.size)


class _ScalarEngine:
    """Per-edge Python-loop relaxation — the auditable reference backend.

    Builds the exact batches the vectorized engine would (same edge
    enumeration order, same masks), gathers candidate distances against the
    phase-start snapshot, and commits with the same first-minimum-per-target
    rule as :func:`_relax_batch` — so its results are bitwise-identical to
    the fast backends, one honest edge at a time.
    """

    def __init__(self, graph, delta, vertex_mask, dist, parent) -> None:
        self.vertex_mask = None if vertex_mask is None else vertex_mask.tolist()
        self.dist = dist
        self.parent = parent
        begins, ends, indices, weights, edge_mask = graph.adjacency_arrays()
        if edge_mask is None and hasattr(graph, "light_heavy_split"):
            begins, light_ends, ends, indices, weights = graph.light_heavy_split(
                delta
            )
            self.light_ends = light_ends.tolist()
            self.light = None
            self.edge_mask = None
        else:
            self.light_ends = None
            self.light = (weights <= delta).tolist()
            self.edge_mask = None if edge_mask is None else edge_mask.tolist()
        self.begins = begins.tolist()
        self.ends = ends.tolist()
        self.indices = indices.tolist()
        self.weights = weights.tolist()

    def relax(self, frontier, light: bool, label: str, recorder):
        dist = self.dist
        indices = self.indices
        weights = self.weights
        vmask = self.vertex_mask
        # gather: all candidate reads happen before any commit, so the
        # per-edge loop sees the same phase-start snapshot the one-shot
        # vectorised batch does
        best: dict[int, tuple[float, int]] = {}
        batch_src: list[int] = []
        batch_tgt: list[int] = []
        nedges = 0
        # one bucket's frontier; the driver checkpoints per bucket phase
        # (the documented policy in repro/cancel.py)
        for u in frontier.tolist():  # contracts: disable=CTR201 (bounded)
            if self.light_ends is not None:
                if light:
                    lo, hi = self.begins[u], self.light_ends[u]
                else:
                    lo, hi = self.light_ends[u], self.ends[u]
            else:
                lo, hi = self.begins[u], self.ends[u]
            du = float(dist[u])
            for e in range(lo, hi):
                if self.light_ends is None:
                    if self.light[e] is not light:
                        continue
                    if self.edge_mask is not None and not self.edge_mask[e]:
                        continue
                t = indices[e]
                if vmask is not None and not vmask[t]:
                    continue
                nedges += 1
                if recorder is not None:
                    batch_src.append(u)
                    batch_tgt.append(t)
                c = du + weights[e]
                cur = best.get(t)
                if cur is None or c < cur[0]:
                    best[t] = (c, u)
        if nedges == 0:
            return _EMPTY_I64, 0
        # commit: strict-< against the pre-batch distances, ascending
        # target order to match _relax_batch's improved-vertex order
        parent = self.parent
        improved: list[int] = []
        for t in sorted(best):
            c, u = best[t]
            if c < float(dist[t]):
                dist[t] = c
                parent[t] = u
                improved.append(t)
        out = (
            np.asarray(improved, dtype=np.int64) if improved else _EMPTY_I64
        )
        if recorder is not None:
            recorder.record_step(
                label,
                np.asarray(batch_src, dtype=np.int64),
                np.asarray(batch_tgt, dtype=np.int64),
                out,
            )
        return out, nedges


# ----------------------------------------------------------------------
# the shared bucket driver
# ----------------------------------------------------------------------
def _run_buckets(
    engine,
    source: int,
    delta: float,
    stats: SSSPStats,
    deadline: float | None,
    recorder,
    needs: np.ndarray,
    in_r: np.ndarray,
    touched: list[int] | None,
) -> None:
    """Drive the bucket schedule over ``engine``; mutates engine.dist/parent.

    The driver is backend-independent: every engine receives the identical
    sequence of (frontier, edge-class) batches, which is what makes the
    backends bitwise-interchangeable.  Frontier membership is tracked with
    a *dirty list* (arrays of recently-improved vertices) instead of an
    O(n) flag scan per phase; stale entries (vertices whose flag was
    cleared, or re-improved vertices appended twice) are dropped lazily at
    bucket-selection time.
    """
    dist = engine.dist
    parent = engine.parent
    dist[source] = 0.0
    parent[source] = source
    needs[source] = True
    if touched is not None:
        touched.append(int(source))
    dirty: list[np.ndarray] = [np.asarray([source], dtype=np.int64)]
    check_cancel = cancellation_active(deadline)

    while dirty:
        if check_cancel:
            checkpoint(deadline, "sssp.delta")
        pending = dirty[0] if len(dirty) == 1 else np.concatenate(dirty)
        # lazy deletion: drop cleared flags, then duplicates from re-improves
        pending = pending[needs[pending]]
        if pending.size == 0:
            break
        pending = np.unique(pending)
        bucket_ids = np.floor_divide(dist[pending], delta).astype(np.int64)
        i = int(bucket_ids.min())
        lo, hi = i * delta, (i + 1) * delta
        in_bucket = bucket_ids == i
        frontier = pending[in_bucket]
        rest = pending[~in_bucket]
        dirty = [rest] if rest.size else []
        settles: list[np.ndarray] = []

        # ---- light-edge inner loop: may reinsert into bucket i ----
        while frontier.size:
            if check_cancel:
                checkpoint(deadline, "sssp.delta")
            needs[frontier] = False
            newly_removed = frontier[~in_r[frontier]]
            if newly_removed.size:
                in_r[newly_removed] = True
                settles.append(newly_removed)
            improved, nedges = engine.relax(frontier, True, f"light-{i}", recorder)
            stats.edges_relaxed += nedges
            stats.phases += 1
            stats.phase_work.append(nedges)
            if improved.size:
                if touched is not None:
                    touched.extend(improved.tolist())
                here = dist[improved] < hi  # improvements never drop below lo
                outside = improved[~here]
                # only vertices not already flagged join the dirty list —
                # every needs-True vertex stays listed at most once per flip
                fresh_outside = outside[~needs[outside]]
                needs[improved] = True
                if fresh_outside.size:
                    dirty.append(fresh_outside)
                frontier = improved[here]
            else:
                frontier = _EMPTY_I64

        # ---- heavy edges of everything settled in bucket i, once ----
        settled_now = settles[0] if len(settles) == 1 else np.concatenate(settles)
        stats.vertices_settled += int(settled_now.size)
        improved, nedges = engine.relax(settled_now, False, f"heavy-{i}", recorder)
        stats.edges_relaxed += nedges
        stats.phases += 1
        stats.phase_work.append(nedges)
        if improved.size:
            if touched is not None:
                touched.extend(improved.tolist())
            # heavy candidates exceed lo + Δ = hi, so all land in later buckets
            fresh = improved[~needs[improved]]
            needs[improved] = True
            if fresh.size:
                dirty.append(fresh)
        in_r[settled_now] = False  # sparse reset for the next bucket


def delta_stepping(
    graph: CSRGraph,
    source: int,
    *,
    delta: float | None = None,
    vertex_mask: np.ndarray | None = None,
    footprint_recorder=None,
    deadline: float | None = None,
    backend: str = "vectorized",
    workspace=None,
    num_workers: int = 2,
    executor=None,
) -> SSSPResult:
    """Δ-stepping SSSP from ``source``.

    Parameters
    ----------
    delta:
        Bucket width; defaults to :func:`choose_delta`.
    vertex_mask:
        Optional ``bool[n]`` of *usable* vertices; masked-out vertices are
        treated as deleted (this is how the status-array compaction strategy
        runs its downstream SSSP without rebuilding the CSR).
    footprint_recorder:
        Optional :class:`repro.analysis.race.DeltaSteppingFootprints` (or
        any object with its ``record_step`` signature).  When given, every
        bucket step's real read/write footprint — frontier sources and
        relaxation targets read, improved vertices written — is recorded
        as the gather → barrier → commit phase decomposition, which the
        race detector then audits.  Diagnostics only; adds Python-loop
        overhead per recorded step and changes no result.  The mp backend
        additionally understands recorders with a ``record_mp_step`` method
        (:class:`repro.analysis.race.MPBackendFootprints`) and hands those
        the per-worker chunk decomposition instead.
    deadline:
        Absolute ``time.perf_counter()`` value after which the kernel
        cooperatively raises :class:`~repro.errors.KSPTimeout`.  Checked
        once per bucket phase (light inner step and heavy step), so the
        overshoot is bounded by one relaxation batch.
    backend:
        ``"vectorized"`` (default) — batched NumPy edge-map relaxation;
        ``"scalar"`` — the per-edge reference loop; ``"mp"`` — real-core
        shared-memory multiprocessing
        (:class:`repro.parallel.mp_backend.SharedMemoryDeltaExecutor`).
        All three produce bitwise-identical ``dist`` and ``parent``.
    workspace:
        A :class:`~repro.sssp.workspace.SSSPWorkspace` bound to ``graph``.
        When given, the run borrows the workspace's reusable Δ-stepping
        buffers (:meth:`~repro.sssp.workspace.SSSPWorkspace.acquire_delta`)
        instead of allocating O(n) arrays, and the returned result's
        ``dist``/``parent`` are *views of the live buffers* — copy them
        before the workspace's next acquisition if they must outlive it.
        Cancellation mid-run leaves the workspace reusable.  Not accepted
        by the mp backend (its state lives in shared memory).
    num_workers:
        mp backend only: worker-process count (≥ 1).
    executor:
        mp backend only: a pre-built ``SharedMemoryDeltaExecutor`` to reuse
        across runs (amortises process spawn + graph upload).  Must be
        built on ``graph`` with a matching Δ.  When omitted, a throwaway
        executor is created and torn down inside the call.

    Notes
    -----
    ``stats.phase_work`` records the edge-relaxation count of every inner
    (light) step and every heavy step; ``stats.phases`` is the number of
    such steps.  Distances equal Dijkstra's exactly (tested property).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise VertexError(f"source {source} out of range [0, {n})")
    if vertex_mask is not None and not vertex_mask[source]:
        raise VertexError(f"source {source} is masked out")
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    if delta is None:
        delta = choose_delta(graph) if executor is None else executor.delta
    if delta <= 0:
        raise ValueError("delta must be positive")

    stats = SSSPStats()
    tracer = get_tracer()
    touched: list[int] | None = None

    with tracer.span("sssp.delta", backend=backend):
        if backend == "mp":
            if workspace is not None:
                raise ValueError(
                    "the mp backend keeps its state in shared memory and "
                    "does not accept workspace="
                )
            from repro.parallel.mp_backend import SharedMemoryDeltaExecutor

            own_executor = executor is None
            if own_executor:
                executor = SharedMemoryDeltaExecutor(
                    graph, num_workers=num_workers, delta=delta
                )
            else:
                executor.check_compatible(graph, delta)
            needs = np.zeros(n, dtype=bool)
            in_r = np.zeros(n, dtype=bool)
            try:
                executor.begin_run(vertex_mask)
                _run_buckets(
                    executor,
                    source,
                    delta,
                    stats,
                    deadline,
                    footprint_recorder,
                    needs,
                    in_r,
                    None,
                )
                dist = executor.dist.copy()
                parent = executor.parent.copy()
            finally:
                if own_executor:
                    executor.close()
        else:
            if workspace is not None:
                if workspace.graph is not graph:
                    raise ValueError(
                        "workspace is bound to a different graph; create one "
                        "per graph"
                    )
                dist, parent, needs, in_r, touched = workspace.acquire_delta()
            else:
                dist = np.full(n, INF, dtype=np.float64)
                parent = np.full(n, -1, dtype=np.int64)
                needs = np.zeros(n, dtype=bool)
                in_r = np.zeros(n, dtype=bool)
            engine_cls = (
                _ScalarEngine if backend == "scalar" else _VectorizedEngine
            )
            engine = engine_cls(graph, delta, vertex_mask, dist, parent)
            _run_buckets(
                engine,
                source,
                delta,
                stats,
                deadline,
                footprint_recorder,
                needs,
                in_r,
                touched,
            )

    if tracer.enabled:
        tracer.add("sssp.calls")
        tracer.add("sssp.edges_relaxed", stats.edges_relaxed)
        tracer.add("sssp.vertices_settled", stats.vertices_settled)
        tracer.add("sssp.bucket_phases", stats.phases)
    return SSSPResult(source=source, dist=dist, parent=parent, stats=stats)
