"""Meyer–Sanders Δ-stepping with numpy-vectorised bucket relaxation.

This is the paper's parallel SSSP (§6.2).  The algorithm groups vertices
into distance buckets of width Δ; one bucket is processed at a time, and all
edge relaxations inside a bucket step are independent — that step is the
data-parallel unit the paper parallelises with OpenMP.

In this reproduction each bucket step relaxes *every frontier edge in one
vectorised numpy batch* (gather edges → candidate distances → per-target
argmin via lexsort), which is both the fastest way to run the algorithm in
pure Python and a faithful record of the parallel structure: the per-step
edge counts are logged in ``stats.phase_work`` and consumed by the
:mod:`repro.parallel` simulator to derive the thread-scaling curves of
Figure 9.
"""

from __future__ import annotations

import numpy as np

from repro.cancel import cancellation_active, checkpoint
from repro.errors import VertexError
from repro.graph.csr import CSRGraph
from repro.obs.tracer import get_tracer
from repro.paths import INF
from repro.sssp.result import SSSPResult, SSSPStats

__all__ = ["delta_stepping", "choose_delta"]


def choose_delta(graph: CSRGraph) -> float:
    """The standard Δ heuristic: max edge weight / average out-degree.

    Meyer & Sanders show Δ = Θ(max-weight / degree) balances the number of
    bucket phases against re-relaxation work on random weights.
    """
    if graph.num_edges == 0:
        return 1.0
    avg_deg = max(graph.num_edges / max(graph.num_vertices, 1), 1.0)
    return float(graph.weights.max()) / avg_deg


def _expand_frontier(
    frontier: np.ndarray, begins: np.ndarray, ends: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather the edge positions of every frontier vertex.

    Returns ``(edge_idx, edge_src)`` where ``edge_idx`` indexes the CSR edge
    arrays and ``edge_src`` is the frontier vertex each edge leaves from.
    Pure numpy, no Python loop: the classic repeat/cumsum expansion.
    """
    starts = begins[frontier]
    counts = ends[frontier] - starts
    gathered = int(counts.sum())  # edge count, not a path cost (RPR004)
    if gathered == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    # offset of each vertex's block inside the flat output
    block_starts = np.zeros(frontier.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=block_starts[1:])
    edge_idx = (
        np.arange(gathered, dtype=np.int64)
        - np.repeat(block_starts, counts)
        + np.repeat(starts, counts)
    )
    edge_src = np.repeat(frontier, counts)
    return edge_idx, edge_src


def _relax_batch(
    dist: np.ndarray,
    parent: np.ndarray,
    targets: np.ndarray,
    cands: np.ndarray,
    sources: np.ndarray,
) -> np.ndarray:
    """Apply a batch of relaxation requests; return the improved vertices.

    Duplicate targets are reduced to their minimum candidate first
    (lexsort + first-of-group), so ``parent`` stays consistent with ``dist``.
    """
    if targets.size == 0:
        return targets
    order = np.lexsort((cands, targets))
    t_sorted = targets[order]
    first = np.ones(t_sorted.size, dtype=bool)
    first[1:] = t_sorted[1:] != t_sorted[:-1]
    best_t = t_sorted[first]
    best_d = cands[order][first]
    best_p = sources[order][first]
    improved = best_d < dist[best_t]
    upd_t = best_t[improved]
    dist[upd_t] = best_d[improved]
    parent[upd_t] = best_p[improved]
    return upd_t


def delta_stepping(
    graph: CSRGraph,
    source: int,
    *,
    delta: float | None = None,
    vertex_mask: np.ndarray | None = None,
    footprint_recorder=None,
    deadline: float | None = None,
) -> SSSPResult:
    """Δ-stepping SSSP from ``source``.

    Parameters
    ----------
    delta:
        Bucket width; defaults to :func:`choose_delta`.
    vertex_mask:
        Optional ``bool[n]`` of *usable* vertices; masked-out vertices are
        treated as deleted (this is how the status-array compaction strategy
        runs its downstream SSSP without rebuilding the CSR).
    footprint_recorder:
        Optional :class:`repro.analysis.race.DeltaSteppingFootprints` (or
        any object with its ``record_step`` signature).  When given, every
        bucket step's real read/write footprint — frontier sources and
        relaxation targets read, improved vertices written — is recorded
        as the gather → barrier → commit phase decomposition, which the
        race detector then audits.  Diagnostics only; adds Python-loop
        overhead per recorded step and changes no result.
    deadline:
        Absolute ``time.perf_counter()`` value after which the kernel
        cooperatively raises :class:`~repro.errors.KSPTimeout`.  Checked
        once per bucket phase (light inner step and heavy step), so the
        overshoot is bounded by one vectorised relaxation batch.

    Notes
    -----
    ``stats.phase_work`` records the edge-relaxation count of every inner
    (light) step and every heavy step; ``stats.phases`` is the number of
    such steps.  Distances equal Dijkstra's exactly (tested property).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise VertexError(f"source {source} out of range [0, {n})")
    if vertex_mask is not None and not vertex_mask[source]:
        raise VertexError(f"source {source} is masked out")
    if delta is None:
        delta = choose_delta(graph)
    if delta <= 0:
        raise ValueError("delta must be positive")

    begins, ends, indices, weights, edge_mask = graph.adjacency_arrays()
    light = weights <= delta

    dist = np.full(n, INF, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0
    parent[source] = source
    stats = SSSPStats()

    # needs[v]: v's distance improved since it was last relaxed.
    needs = np.zeros(n, dtype=bool)
    needs[source] = True
    # in_r[v]: v was removed from the current bucket.  Allocated once and
    # reset *sparsely* at the end of each bucket — an O(n) allocation per
    # bucket iteration is exactly the hot-path waste RPR003 polices.
    in_r = np.zeros(n, dtype=bool)

    def usable(targets: np.ndarray) -> np.ndarray:
        if vertex_mask is None:
            return np.ones(targets.size, dtype=bool)
        return vertex_mask[targets]

    check_cancel = cancellation_active(deadline)

    while True:
        if check_cancel:
            checkpoint(deadline, "sssp.delta")
        pending = np.flatnonzero(needs)
        if pending.size == 0:
            break
        bucket_of_pending = np.floor_divide(dist[pending], delta).astype(np.int64)
        i = int(bucket_of_pending.min())
        lo, hi = i * delta, (i + 1) * delta

        frontier = pending[bucket_of_pending == i]
        # ---- light-edge inner loop: may reinsert into bucket i ----
        while frontier.size:
            if check_cancel:
                checkpoint(deadline, "sssp.delta")
            needs[frontier] = False
            in_r[frontier] = True
            edge_idx, edge_src = _expand_frontier(frontier, begins, ends)
            if edge_idx.size:
                keep = light[edge_idx]
                if edge_mask is not None:
                    keep &= edge_mask[edge_idx]
                edge_idx, edge_src = edge_idx[keep], edge_src[keep]
            if edge_idx.size:
                targets = indices[edge_idx]
                ok = usable(targets)
                edge_idx, edge_src, targets = (
                    edge_idx[ok],
                    edge_src[ok],
                    targets[ok],
                )
                cands = dist[edge_src] + weights[edge_idx]
                improved = _relax_batch(dist, parent, targets, cands, edge_src)
                needs[improved] = True
                stats.edges_relaxed += int(edge_idx.size)
                if footprint_recorder is not None:
                    footprint_recorder.record_step(
                        f"light-{i}", edge_src, targets, improved
                    )
            stats.phases += 1
            stats.phase_work.append(int(edge_idx.size))
            pending_now = np.flatnonzero(needs)
            if pending_now.size == 0:
                frontier = pending_now
            else:
                d_now = dist[pending_now]
                frontier = pending_now[(d_now >= lo) & (d_now < hi)]

        # ---- heavy edges of everything settled in bucket i, once ----
        settled_now = np.flatnonzero(in_r)
        stats.vertices_settled += int(settled_now.size)
        edge_idx, edge_src = _expand_frontier(settled_now, begins, ends)
        if edge_idx.size:
            keep = ~light[edge_idx]
            if edge_mask is not None:
                keep &= edge_mask[edge_idx]
            edge_idx, edge_src = edge_idx[keep], edge_src[keep]
        if edge_idx.size:
            targets = indices[edge_idx]
            ok = usable(targets)
            edge_idx, edge_src, targets = edge_idx[ok], edge_src[ok], targets[ok]
            cands = dist[edge_src] + weights[edge_idx]
            improved = _relax_batch(dist, parent, targets, cands, edge_src)
            needs[improved] = True
            stats.edges_relaxed += int(edge_idx.size)
            if footprint_recorder is not None:
                footprint_recorder.record_step(
                    f"heavy-{i}", edge_src, targets, improved
                )
        stats.phases += 1
        stats.phase_work.append(int(edge_idx.size))
        in_r[settled_now] = False  # sparse reset for the next bucket

    tracer = get_tracer()
    if tracer.enabled:
        tracer.add("sssp.calls")
        tracer.add("sssp.edges_relaxed", stats.edges_relaxed)
        tracer.add("sssp.vertices_settled", stats.vertices_settled)
        tracer.add("sssp.bucket_phases", stats.phases)
    return SSSPResult(source=source, dist=dist, parent=parent, stats=stats)
