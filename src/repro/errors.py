"""Exception hierarchy for the PeeK reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphFormatError(ReproError):
    """A graph file or edge array is malformed (bad shape, dtype, header)."""


class InvalidWeightError(ReproError):
    """An edge weight violates the paper's precondition ``w > 0``.

    PeeK (Definition 1) requires strictly positive weights; Dijkstra,
    Δ-stepping, and the K-upper-bound argument are all unsound otherwise.
    """


class VertexError(ReproError, IndexError):
    """A vertex id is out of range for the graph it was used with."""


class UnreachableTargetError(ReproError):
    """The target vertex is not reachable from the source vertex."""


class KSPError(ReproError):
    """A K-shortest-path query could not be satisfied as requested."""


class PartitionError(ReproError):
    """A distributed partition is inconsistent (overlap, gap, bad rank)."""


class CommError(ReproError):
    """Misuse of the simulated MPI communicator (bad rank, tag reuse...)."""


class SanitizerError(ReproError):
    """A runtime sanitizer check failed (see :mod:`repro.analysis.sanitize`).

    Raised only when sanitizers are enabled (``repro.solve(...,
    sanitize=True)`` or ``RPR_SANITIZE=1``); carries the structured
    :class:`~repro.analysis.findings.Finding` on ``.finding``.
    """

    def __init__(self, message: str, finding=None) -> None:
        super().__init__(message)
        self.finding = finding
