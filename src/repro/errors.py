"""Exception hierarchy for the PeeK reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphFormatError(ReproError):
    """A graph file or edge array is malformed (bad shape, dtype, header)."""


class InvalidWeightError(ReproError):
    """An edge weight violates the paper's precondition ``w > 0``.

    PeeK (Definition 1) requires strictly positive weights; Dijkstra,
    Δ-stepping, and the K-upper-bound argument are all unsound otherwise.
    """


class VertexError(ReproError, IndexError):
    """A vertex id is out of range for the graph it was used with."""


class UnreachableTargetError(ReproError):
    """The target vertex is not reachable from the source vertex."""


class KSPError(ReproError):
    """A K-shortest-path query could not be satisfied as requested."""


class KSPTimeout(KSPError):
    """Raised when a pipeline stage exceeds its deadline (the paper's '-').

    Every stage of the PeeK pipeline — the pruning SSSPs, the compaction
    build, and the KSP deviation loop — observes the deadline through the
    cooperative checkpoints in :mod:`repro.cancel`, so a timeout surfaces
    within one checkpoint interval of the budget, never after an unbounded
    stage run.  (Historically exported from :mod:`repro.ksp.base`, which
    still re-exports it.)
    """


class ServerOverloadError(ReproError):
    """The serving layer shed this query: too many queries in flight.

    Raised by :class:`repro.serve.QueryServer` admission control before any
    pipeline work starts; the caller may retry later.
    """


class PartitionError(ReproError):
    """A distributed partition is inconsistent (overlap, gap, bad rank)."""


class CommError(ReproError):
    """Misuse of the simulated MPI communicator (bad rank, tag reuse...)."""


class SanitizerError(ReproError):
    """A runtime sanitizer check failed (see :mod:`repro.analysis.sanitize`).

    Raised only when sanitizers are enabled (``repro.solve(...,
    sanitize=True)`` or ``RPR_SANITIZE=1``); carries the structured
    :class:`~repro.analysis.findings.Finding` on ``.finding``.
    """

    def __init__(self, message: str, finding=None) -> None:
        super().__init__(message)
        self.finding = finding
