"""Exception hierarchy for the PeeK reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphFormatError(ReproError):
    """A graph file or edge array is malformed (bad shape, dtype, header)."""


class InvalidWeightError(ReproError):
    """An edge weight violates the paper's precondition ``w > 0``.

    PeeK (Definition 1) requires strictly positive weights; Dijkstra,
    Δ-stepping, and the K-upper-bound argument are all unsound otherwise.
    """


class VertexError(ReproError, IndexError):
    """A vertex id is out of range for the graph it was used with."""


class UnreachableTargetError(ReproError):
    """The target vertex is not reachable from the source vertex."""


class KSPError(ReproError):
    """A K-shortest-path query could not be satisfied as requested."""


class KSPTimeout(KSPError):
    """Raised when a pipeline stage exceeds its deadline (the paper's '-').

    Every stage of the PeeK pipeline — the pruning SSSPs, the compaction
    build, and the KSP deviation loop — observes the deadline through the
    cooperative checkpoints in :mod:`repro.cancel`, so a timeout surfaces
    within one checkpoint interval of the budget, never after an unbounded
    stage run.  (Historically exported from :mod:`repro.ksp.base`, which
    still re-exports it.)
    """


class ServerOverloadError(ReproError):
    """The serving layer shed this query: too many queries in flight.

    Raised by :class:`repro.serve.QueryServer` admission control before any
    pipeline work starts; the caller may retry later.
    """


class PartitionError(ReproError):
    """A distributed partition is inconsistent (overlap, gap, bad rank)."""


class CommError(ReproError):
    """Misuse of the simulated MPI communicator (bad rank, tag reuse...)."""


class RankFailure(ReproError):
    """A simulated computing node died mid-job (see ``docs/parallel_model.md``).

    Mirrors how MPI programs actually observe node loss: the failure
    surfaces at the next *collective* the dead rank participates in, not
    at the instant of death.  Raised by
    :class:`~repro.distributed.comm.SimComm` when a
    :class:`~repro.distributed.comm.FaultPlan` has killed a rank; caught
    and recovered by :class:`~repro.distributed.supervisor.DistSupervisor`
    (or propagated to the caller when no supervisor is attached).
    """

    def __init__(
        self, rank: int, *, stage: str = "", superstep: int | None = None
    ) -> None:
        where = f" during {stage!r}" if stage else ""
        at = f" (superstep {superstep})" if superstep is not None else ""
        super().__init__(f"rank {rank} failed{where}{at}")
        self.rank = rank
        self.stage = stage
        self.superstep = superstep


class RecoveryExhaustedError(ReproError):
    """The distributed supervisor gave up: too many rank failures.

    Carries the rank whose failure exceeded ``max_recoveries`` and the
    recovery count — the partial-outcome record of an abandoned job.
    """

    def __init__(self, rank: int, recoveries: int, max_recoveries: int) -> None:
        super().__init__(
            f"giving up after {recoveries} recoveries "
            f"(max_recoveries={max_recoveries}): rank {rank} failed again"
        )
        self.rank = rank
        self.recoveries = recoveries
        self.max_recoveries = max_recoveries


class SanitizerError(ReproError):
    """A runtime sanitizer check failed (see :mod:`repro.analysis.sanitize`).

    Raised only when sanitizers are enabled (``repro.solve(...,
    sanitize=True)`` or ``RPR_SANITIZE=1``); carries the structured
    :class:`~repro.analysis.findings.Finding` on ``.finding``.
    """

    def __init__(self, message: str, finding=None) -> None:
        super().__init__(message)
        self.finding = finding
