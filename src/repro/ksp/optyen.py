"""OptYen (Ajwani, Duriakova, Hurley, Meyer, Schickedanz — ICPP 2018).

The state-of-the-art *parallel* baseline of the paper.  OptYen keeps exactly
one **static** reverse shortest-path tree rooted at the target (computed once
up front) and uses it for an *express* candidate at each deviation vertex:

1. among the deviation vertex's allowed out-neighbours ``w``, pick
   ``w* = argmin  w(v,w) + distTgt[w]`` — a lower bound on any allowed
   suffix, because ``distTgt`` is the unconstrained shortest distance;
2. if ``w*``'s tree path to the target is *clean* (touches no banned vertex,
   does not revisit the deviation vertex or prefix), it achieves the lower
   bound and is therefore the optimal suffix — no SSSP needed;
3. otherwise *repair* with a fresh Dijkstra, exactly like Yen.

Unlike NC, nothing is ever updated: the tree is computed once, which is what
makes OptYen parallel-friendly (the paper's §1.1 observation).
"""

from __future__ import annotations

import numpy as np

from repro.errors import UnreachableTargetError
from repro.ksp.base import DeviationKSP, KSPResult
from repro.paths import INF
from repro.sssp.dijkstra import dijkstra

__all__ = ["OptYenKSP", "optyen_ksp"]


class OptYenKSP(DeviationKSP):
    """OptYen: static reverse SP tree, express-or-repair suffix search."""

    name = "OptYen"
    lawler_default = True

    def _prepare(self) -> None:
        rev = dijkstra(self.graph.reverse(), self.target, deadline=self.deadline)
        self.stats.init_work += self.stats.add_sssp(rev.stats)
        #: dist_tgt[v] = shortest v→target distance in the *full* graph
        self.dist_tgt = rev.dist
        #: next_hop[v] = next vertex on v's tree path toward the target
        self.next_hop = rev.parent
        if not np.isfinite(self.dist_tgt[self.source]):
            raise UnreachableTargetError(
                f"target {self.target} unreachable from {self.source}"
            )

    def _first_path(self):
        # The reverse tree already encodes the shortest path — walk it
        # instead of running another SSSP.
        from repro.paths import Path, reconstruct_reverse_path

        verts = reconstruct_reverse_path(self.next_hop, self.source, self.target)
        assert verts is not None
        return Path(
            distance=float(self.dist_tgt[self.source]), vertices=tuple(verts)
        )

    # ------------------------------------------------------------------
    #: below this out-degree the scalar scan beats NumPy's fixed call cost
    _VECTOR_MIN_DEGREE = 24

    def _best_first_hop(
        self, dev_vertex, banned_vertices, banned_edges
    ) -> tuple[int, float] | None:
        """``(w*, bound)`` minimising ``w(v,w) + distTgt[w]`` over allowed w.

        High-degree vertices use one masked vectorised argmin over the
        adjacency slice; low-degree ones keep the scalar scan (NumPy's
        per-call overhead dominates below ~two dozen neighbours).  Ties on
        the bound break toward the smallest vertex id in both paths.
        """
        targets, weights = self.graph.neighbors(dev_vertex)
        dist_tgt = self.dist_tgt
        if targets.size >= self._VECTOR_MIN_DEGREE:
            vals = weights + dist_tgt[targets]
            if banned_vertices:
                ban = np.fromiter(
                    banned_vertices, dtype=np.int64, count=len(banned_vertices)
                )
                vals[np.isin(targets, ban)] = INF
            if banned_edges:
                for u, w in banned_edges:
                    if u == dev_vertex:
                        vals[targets == w] = INF
            best_val = vals.min()
            if not np.isfinite(best_val):
                return None
            best_w = int(targets[vals == best_val].min())
            return best_w, float(best_val)
        best_w, best_val = -1, INF
        for w, wt in zip(targets.tolist(), weights.tolist()):
            if w in banned_vertices:
                continue
            if (dev_vertex, w) in banned_edges:
                continue
            val = wt + dist_tgt[w]
            if val < best_val or (val == best_val and w < best_w):
                best_w, best_val = w, val
        if best_w < 0 or not np.isfinite(best_val):
            return None
        return best_w, float(best_val)

    def _tree_suffix(
        self, dev_vertex, first_hop, banned_vertices
    ) -> tuple[int, ...] | None:
        """Walk the static tree from ``first_hop``; None when dirty.

        Dirty means: a banned (prefix) vertex, the deviation vertex itself,
        or ``first_hop`` again appears on the tree path — the concatenated
        candidate would not be simple.
        """
        path = [dev_vertex, first_hop]
        u = first_hop
        next_hop = self.next_hop
        while u != self.target:
            u = int(next_hop[u])
            if u < 0:
                return None  # detached from tree (possible on masked views)
            if u in banned_vertices or u == dev_vertex or u == first_hop:
                return None
            path.append(u)
        return tuple(path)

    def _find_suffix(self, dev_vertex, banned_vertices, banned_edges, prefix):
        hop = self._best_first_hop(dev_vertex, banned_vertices, banned_edges)
        if hop is None:
            # No allowed first hop can reach the target even in the full
            # graph — no suffix exists, skip the SSSP entirely.
            self._log_task(1)
            return None
        w_star, bound = hop
        suffix = self._tree_suffix(dev_vertex, w_star, banned_vertices)
        if suffix is not None:
            self.stats.express_hits += 1
            self._log_task(len(suffix))
            return bound, suffix, True
        return self._dijkstra_suffix(dev_vertex, banned_vertices, banned_edges)


def optyen_ksp(graph, source: int, target: int, k: int, **kwargs) -> KSPResult:
    """Thin alias for :func:`repro.solve` with ``algorithm="OptYen"``."""
    from repro.api import solve

    return solve(graph, source, target, k, algorithm="OptYen", **kwargs)
