"""Parsimonious Sidetrack-Based KSP — PSB, PSB-v2, PSB-v3 (paper §8).

SB's weakness is memory: one cached reverse SP tree per removal set.  The
PSB family (Al Zoobi, Coudert, Nisse) keeps SB's deviation logic but is
*parsimonious* about which trees it retains:

* **PSB** — "only store a computed reverse SSSP tree after finding a
  useful subpath in that tree": a tree is cached only once it has produced
  an express candidate; trees that immediately fail (forcing a repair) are
  discarded and recomputed if ever needed again.
* **PSB-v2** — "defines a static threshold with the hope of predicting
  whether a reverse SSSP tree will lead to a path that can become one of
  the extracted candidates": the tree is kept only when its candidate's
  distance is within ``threshold ×`` the best pool candidate — trees
  producing hopeless (far-from-extraction) candidates aren't worth their
  memory.
* **PSB-v3** — "goes further by dynamically changing the threshold during
  KSP computation": the threshold tightens while the cache is over budget
  and relaxes while it is under.

All three return exactly the same paths as SB/Yen (caching policy cannot
affect correctness — a discarded tree is simply recomputed); the tests
assert both the agreement and the intended memory ordering
``peak(PSB*) ≤ peak(SB)``.
"""

from __future__ import annotations

from repro.ksp.base import KSPResult
from repro.ksp.sidetrack import SidetrackKSP
from repro.sssp.lazy_dijkstra import LazyDijkstra

__all__ = ["PSBKSP", "PSBv2KSP", "PSBv3KSP", "psb_ksp"]


class PSBKSP(SidetrackKSP):
    """PSB: cache a reverse tree only after it proves useful."""

    name = "PSB"
    eager_trees = True

    def _prepare(self) -> None:
        #: trees built but not yet proven useful (kept only for the
        #: duration of the current deviation search).  Must exist before
        #: the parent's _prepare builds the root tree through _tree_for.
        self._probation: dict[frozenset[int], LazyDijkstra] = {}
        super()._prepare()

    # -- caching policy hooks ------------------------------------------
    def _should_cache(self, removal_set, suffix_dist: float) -> bool:
        """PSB keeps any tree that produced an express candidate."""
        return True

    def _tree_for(self, removal_set):
        tree = self._trees.get(removal_set)
        if tree is not None:
            return tree
        tree = self._probation.get(removal_set)
        if tree is not None:
            return tree
        tree = LazyDijkstra(
            self._rev_graph,
            self.target,
            banned_vertices=removal_set or None,
        )
        if self.eager_trees:
            tree.run_to_completion()
        self.stats.sssp_calls += 1
        # enters on probation; promotion happens on express success
        self._probation = {removal_set: tree}  # at most one probationer
        # a discarded tree may be rebuilt: its work ledger must restart,
        # or the next _charge() delta would go negative
        self._tree_charged[removal_set] = 0
        return tree

    def _promote(self, removal_set, tree, suffix_dist: float) -> None:
        if removal_set in self._trees:
            return
        if self._should_cache(removal_set, suffix_dist):
            self._trees[removal_set] = tree
            total = sum(t.memory_bytes() for t in self._trees.values())
            if total > self.stats.peak_tree_bytes:
                self.stats.peak_tree_bytes = total
        self._probation.pop(removal_set, None)

    def _find_suffix(self, dev_vertex, banned_vertices, banned_edges, prefix):
        found = super()._find_suffix(
            dev_vertex, banned_vertices, banned_edges, prefix
        )
        tree = self._probation.get(banned_vertices) or self._trees.get(
            banned_vertices
        )
        if found is not None and tree is not None:
            suffix_dist = found[0]
            self._promote(banned_vertices, tree, suffix_dist)
        return found


class PSBv2KSP(PSBKSP):
    """PSB-v2: static usefulness threshold on the candidate's distance.

    A tree is only worth keeping when the candidate it produced is close
    enough to the current extraction frontier to plausibly be extracted:
    ``suffix candidate distance ≤ threshold × best pool distance``.
    """

    name = "PSB-v2"

    def __init__(self, *args, threshold: float = 1.5, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if threshold < 1.0:
            raise ValueError("threshold must be >= 1.0")
        self.threshold = threshold

    def _frontier_distance(self) -> float:
        if self._pool:
            return self._pool[0].distance
        return float("inf")

    def _should_cache(self, removal_set, suffix_dist: float) -> bool:
        frontier = self._frontier_distance()
        if frontier == float("inf"):
            return True
        return suffix_dist <= self.threshold * frontier


class PSBv3KSP(PSBv2KSP):
    """PSB-v3: the threshold adapts to a memory budget during the run.

    While the cached trees exceed ``memory_budget_bytes`` the threshold
    tightens (×0.9 per decision); while under budget it relaxes (×1.05,
    capped).  This bounds memory without a hard eviction pass.
    """

    name = "PSB-v3"

    def __init__(
        self, *args, memory_budget_bytes: int = 8 << 20, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        if memory_budget_bytes <= 0:
            raise ValueError("memory budget must be positive")
        self.memory_budget_bytes = memory_budget_bytes
        self._threshold_cap = self.threshold

    def _should_cache(self, removal_set, suffix_dist: float) -> bool:
        current = sum(t.memory_bytes() for t in self._trees.values())
        if current > self.memory_budget_bytes:
            self.threshold = max(1.0, self.threshold * 0.9)
        else:
            self.threshold = min(self._threshold_cap, self.threshold * 1.05)
        return super()._should_cache(removal_set, suffix_dist)


def psb_ksp(
    graph, source: int, target: int, k: int, *, variant: str = "v1", **kwargs
) -> KSPResult:
    """Thin alias for :func:`repro.solve`; ``variant`` ∈ {"v1", "v2", "v3"}."""
    from repro.api import solve

    name = {"v1": "PSB", "v2": "PSB-v2", "v3": "PSB-v3"}[variant]
    return solve(graph, source, target, k, algorithm=name, **kwargs)
