"""Name → algorithm registry used by :func:`repro.solve`, the CLI, and the
benchmark harness.

The names match the paper's tables exactly ("Yen", "NC", "OptYen", "SB",
"SB*", "PeeK") so benchmark output reads like the paper.  Each entry is an
:class:`AlgorithmSpec`: the factory plus capability flags, so callers can
validate keyword arguments *before* construction instead of forwarding
blind and failing deep inside a constructor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.ksp.node_classification import NodeClassificationKSP
from repro.ksp.optyen import OptYenKSP
from repro.ksp.pnc import PostponedNCKSP
from repro.ksp.psb import PSBKSP, PSBv2KSP, PSBv3KSP
from repro.ksp.sidetrack import SidetrackKSP
from repro.ksp.sidetrack_star import SidetrackStarKSP
from repro.ksp.yen import YenKSP

__all__ = ["AlgorithmSpec", "ALGORITHMS", "make_algorithm"]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registry entry: factory + capabilities.

    The capability flags drive keyword validation (each flag admits its
    keyword) and let harnesses select algorithms structurally — e.g. "every
    deviation-based algorithm" for a workspace A/B, or "everything that
    supports a deadline" for the timeout sweep.

    The spec is callable with the factory's signature, after validating the
    keywords, so ``ALGORITHMS[name](graph, s, t, **kw)`` keeps working.
    """

    name: str
    factory: Callable
    summary: str = ""
    #: accepts ``deadline=`` (the benchmark harness' 1-hour cap)
    supports_deadline: bool = True
    #: accepts ``use_workspace=`` (epoch-stamped SSSP workspace reuse)
    supports_workspace: bool = True
    #: accepts ``lawler=`` (Lawler's deviation-index optimisation)
    supports_lawler: bool = True
    #: built on the :class:`~repro.ksp.base.DeviationKSP` loop
    is_deviation_based: bool = True
    #: accepts ``sssp_backend=`` (Δ-stepping execution backend:
    #: scalar / vectorized / mp — see :func:`repro.sssp.delta_stepping`)
    supports_sssp_backend: bool = False
    #: algorithm-specific keywords beyond the capability-implied ones
    extra_kwargs: frozenset[str] = field(default_factory=frozenset)

    @property
    def valid_kwargs(self) -> frozenset[str]:
        """Every keyword this algorithm's factory accepts."""
        out = set(self.extra_kwargs)
        if self.supports_deadline:
            out.add("deadline")
        if self.supports_workspace:
            out.add("use_workspace")
        if self.supports_lawler:
            out.add("lawler")
        if self.supports_sssp_backend:
            out.add("sssp_backend")
        return frozenset(out)

    def validate_kwargs(self, kwargs: dict) -> None:
        """Raise ``TypeError`` naming any keyword the factory won't take."""
        unknown = set(kwargs) - self.valid_kwargs
        if unknown:
            raise TypeError(
                f"{self.name} does not accept "
                f"{', '.join(sorted(unknown))}; valid keyword(s): "
                f"{', '.join(sorted(self.valid_kwargs)) or '(none)'}"
            )

    def __call__(self, graph, source: int, target: int, **kwargs):
        self.validate_kwargs(kwargs)
        return self.factory(graph, source, target, **kwargs)


def _peek_factory(graph, source, target, **kwargs):
    # Imported lazily: repro.core depends on repro.ksp, not vice versa.
    from repro.core.peek import PeeK

    return PeeK(graph, source, target, **kwargs)


def _spec(name: str, factory: Callable, summary: str, **flags) -> AlgorithmSpec:
    return AlgorithmSpec(name=name, factory=factory, summary=summary, **flags)


#: Every benchmarkable KSP algorithm, keyed by its table name.
ALGORITHMS: dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        _spec("Yen", YenKSP, "Yen 1971: one Dijkstra per deviation"),
        _spec(
            "NC",
            NodeClassificationKSP,
            "Feng 2014: reverse SP tree + vertex colours",
        ),
        _spec(
            "OptYen",
            OptYenKSP,
            "Ajwani et al. 2018: static reverse tree, express-or-repair",
        ),
        _spec(
            "SB",
            SidetrackKSP,
            "Kurz-Mutzel 2016: cached per-prefix reverse SP trees",
        ),
        _spec(
            "SB*",
            SidetrackStarKSP,
            "Al Zoobi et al.: paused/resumable reverse trees",
        ),
        _spec(
            "PNC",
            PostponedNCKSP,
            "postponed repairs: lower-bound candidates fixed on extraction",
        ),
        _spec(
            "PSB",
            PSBKSP,
            "SB with a distance-threshold tree-cache admission rule",
            extra_kwargs=frozenset({"threshold"}),
        ),
        _spec(
            "PSB-v2",
            PSBv2KSP,
            "PSB with per-iteration threshold adaptation",
            extra_kwargs=frozenset({"threshold"}),
        ),
        _spec(
            "PSB-v3",
            PSBv3KSP,
            "PSB under an explicit tree-cache memory budget",
            extra_kwargs=frozenset({"threshold", "memory_budget_bytes"}),
        ),
        _spec(
            "PeeK",
            _peek_factory,
            "SC '23: K-upper-bound prune + adaptive compaction + OptYen",
            supports_lawler=False,
            is_deviation_based=False,
            supports_sssp_backend=True,
            extra_kwargs=frozenset(
                {
                    "alpha",
                    "prune",
                    "compact",
                    "kernel",
                    "strong_edge_prune",
                    "compaction_force",
                }
            ),
        ),
    )
}


def make_algorithm(name: str, graph, source: int, target: int, **kwargs):
    """Instantiate algorithm ``name`` for one s→t query.

    ``kwargs`` are validated against the :class:`AlgorithmSpec` (a bad
    keyword raises ``TypeError`` naming the valid ones) and forwarded —
    ``deadline``, ``lawler``, ``use_workspace``, and for PeeK the
    pruning/compaction flags.
    """
    try:
        spec = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        ) from None
    return spec(graph, source, target, **kwargs)
