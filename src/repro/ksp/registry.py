"""Name → algorithm registry used by the benchmark harness and CLI.

The names match the paper's tables exactly ("Yen", "NC", "OptYen", "SB",
"SB*", "PeeK") so benchmark output reads like the paper.
"""

from __future__ import annotations

from typing import Callable

from repro.ksp.node_classification import NodeClassificationKSP
from repro.ksp.optyen import OptYenKSP
from repro.ksp.pnc import PostponedNCKSP
from repro.ksp.psb import PSBKSP, PSBv2KSP, PSBv3KSP
from repro.ksp.sidetrack import SidetrackKSP
from repro.ksp.sidetrack_star import SidetrackStarKSP
from repro.ksp.yen import YenKSP

__all__ = ["ALGORITHMS", "make_algorithm"]


def _peek_factory(graph, source, target, **kwargs):
    # Imported lazily: repro.core depends on repro.ksp, not vice versa.
    from repro.core.peek import PeeK

    return PeeK(graph, source, target, **kwargs)


#: Every benchmarkable KSP algorithm, keyed by its table name.
ALGORITHMS: dict[str, Callable] = {
    "Yen": YenKSP,
    "NC": NodeClassificationKSP,
    "OptYen": OptYenKSP,
    "SB": SidetrackKSP,
    "SB*": SidetrackStarKSP,
    "PNC": PostponedNCKSP,
    "PSB": PSBKSP,
    "PSB-v2": PSBv2KSP,
    "PSB-v3": PSBv3KSP,
    "PeeK": _peek_factory,
}


def make_algorithm(name: str, graph, source: int, target: int, **kwargs):
    """Instantiate algorithm ``name`` for one s→t query.

    ``kwargs`` are forwarded (``deadline``, ``lawler``, and for PeeK the
    pruning/compaction flags).
    """
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        ) from None
    return factory(graph, source, target, **kwargs)
