"""K-shortest-simple-path algorithms.

All five comparison algorithms from the paper (§7) plus the two extensions
its introduction and related-work sections describe:

* :class:`~repro.ksp.yen.YenKSP` — Yen 1971, the foundational algorithm.
* :class:`~repro.ksp.node_classification.NodeClassificationKSP` — NC,
  Feng 2014 (reverse SP tree + red/yellow/green vertex colours).
* :class:`~repro.ksp.optyen.OptYenKSP` — Ajwani et al. 2018, the
  state-of-the-art parallel baseline (one static reverse tree,
  express/repair candidate generation).
* :class:`~repro.ksp.sidetrack.SidetrackKSP` — SB, Kurz–Mutzel 2016
  (cached per-prefix reverse SP trees).
* :class:`~repro.ksp.sidetrack_star.SidetrackStarKSP` — SB*, Al Zoobi et
  al. (resumable-SSSP tree reuse), the state-of-the-art serial baseline.
* :class:`~repro.ksp.pnc.PostponedNCKSP` — PNC (§8): postpone repairs
  until a non-simple candidate is actually extracted.
* :func:`~repro.ksp.grouped.shortest_k_groups` — GQL's ``SHORTEST k GROUP``.

Every algorithm shares the deviation framework in :mod:`repro.ksp.base` and
returns identical results (tested property); they differ in how a deviation's
shortest suffix is found, which is exactly where their performance diverges.
"""

from repro.ksp.base import KSPResult, KSPStats, KSPAlgorithm
from repro.ksp.yen import YenKSP, yen_ksp
from repro.ksp.node_classification import NodeClassificationKSP, nc_ksp
from repro.ksp.optyen import OptYenKSP, optyen_ksp
from repro.ksp.sidetrack import SidetrackKSP, sb_ksp
from repro.ksp.sidetrack_star import SidetrackStarKSP, sb_star_ksp
from repro.ksp.pnc import PostponedNCKSP, pnc_ksp
from repro.ksp.psb import PSBKSP, PSBv2KSP, PSBv3KSP, psb_ksp
from repro.ksp.kwalks import k_shortest_walks
from repro.ksp.grouped import shortest_k_groups, PathGroup
from repro.ksp.registry import ALGORITHMS, AlgorithmSpec, make_algorithm

__all__ = [
    "KSPResult",
    "KSPStats",
    "KSPAlgorithm",
    "YenKSP",
    "yen_ksp",
    "NodeClassificationKSP",
    "nc_ksp",
    "OptYenKSP",
    "optyen_ksp",
    "SidetrackKSP",
    "sb_ksp",
    "SidetrackStarKSP",
    "sb_star_ksp",
    "PostponedNCKSP",
    "pnc_ksp",
    "PSBKSP",
    "PSBv2KSP",
    "PSBv3KSP",
    "psb_ksp",
    "k_shortest_walks",
    "shortest_k_groups",
    "PathGroup",
    "ALGORITHMS",
    "AlgorithmSpec",
    "make_algorithm",
]
