"""Node Classification KSP (Feng 2014) — the paper's "NC" baseline.

NC maintains a reverse shortest-path tree toward the target and classifies
vertices per deviation into three colours:

* **red** — on the current prefix (excluded from any suffix);
* **green** — the vertex's tree path to the target avoids every red vertex;
* **yellow** — everything else.

If the deviation vertex's best allowed first hop is green, the candidate is
read straight off the tree.  Otherwise an SSSP over the non-red subgraph is
needed.  The classification machinery is the point of the algorithm *and*
its weakness: the tree is refreshed every outer iteration and the colours
are recomputed for every deviation — Θ(n) work per deviation that the paper
blames for NC's poor showing on large graphs (§7.2 observation iii).  This
implementation reproduces both the savings and the overhead.
"""

from __future__ import annotations

import numpy as np

from repro.errors import UnreachableTargetError
from repro.ksp.base import DeviationKSP, KSPResult
from repro.paths import INF
from repro.sssp.dijkstra import dijkstra

__all__ = ["NodeClassificationKSP", "nc_ksp"]


class NodeClassificationKSP(DeviationKSP):
    """NC: per-iteration reverse tree refresh + per-deviation colouring."""

    name = "NC"
    lawler_default = True

    def _prepare(self) -> None:
        self._refresh_tree()
        if not np.isfinite(self.dist_tgt[self.source]):
            raise UnreachableTargetError(
                f"target {self.target} unreachable from {self.source}"
            )
        # vertices ordered by distance-to-target; colour propagation must
        # process parents before children and this order guarantees it
        self._order = np.argsort(self.dist_tgt, kind="stable")

    def _refresh_tree(self) -> None:
        """(Re)compute the reverse SP tree — NC's dynamic-update overhead."""
        rev = dijkstra(self.graph.reverse(), self.target)
        work = self.stats.add_sssp(rev.stats)
        self.stats.init_work += work
        self.dist_tgt = rev.dist
        self.next_hop = rev.parent
        self._finite = np.isfinite(rev.dist)

    def _first_path(self):
        from repro.paths import Path, reconstruct_reverse_path

        verts = reconstruct_reverse_path(self.next_hop, self.source, self.target)
        assert verts is not None
        return Path(
            distance=float(self.dist_tgt[self.source]), vertices=tuple(verts)
        )

    def iter_paths(self):
        # Wrap the framework loop so the tree is refreshed once per accepted
        # path — the "updating the reverse SP tree" cost the paper describes.
        inner = super().iter_paths()
        first = True
        for path in inner:
            if not first:
                self._refresh_tree()
                self._log_refresh_to_last_iteration()
            first = False
            yield path

    def _log_refresh_to_last_iteration(self) -> None:
        # Refresh happens between iterations; attribute it to the serial
        # portion of the iteration that just completed.
        if self.stats.iteration_serial:
            self.stats.iteration_serial[-1] += self.graph.num_edges

    # ------------------------------------------------------------------
    def _green_mask(self, banned_vertices: frozenset[int]) -> np.ndarray:
        """Colour propagation: green = tree path avoids all red vertices.

        One pass over vertices in increasing distance-to-target order; a
        vertex inherits greenness from its tree next-hop.  Θ(n) per call —
        NC's per-deviation overhead, charged to the serial work log.
        """
        n = self.graph.num_vertices
        green = np.zeros(n, dtype=bool)
        finite = self._finite
        next_hop = self.next_hop
        target = self.target
        if target not in banned_vertices:
            green[target] = True
        for u in self._order.tolist():
            if u == target or not finite[u]:
                continue
            if u in banned_vertices:
                continue
            nh = int(next_hop[u])
            if nh >= 0 and green[nh]:
                green[u] = True
        self._log_serial(n)
        return green

    def _tree_suffix(self, dev_vertex, first_hop) -> tuple[int, ...] | None:
        path = [dev_vertex, first_hop]
        u = first_hop
        while u != self.target:
            u = int(self.next_hop[u])
            if u < 0 or u == dev_vertex:
                return None
            path.append(u)
        return tuple(path)

    def _find_suffix(self, dev_vertex, banned_vertices, banned_edges, prefix):
        green = self._green_mask(banned_vertices)
        targets, weights = self.graph.neighbors(dev_vertex)
        best_w, best_val = -1, INF
        dist_tgt = self.dist_tgt
        for w, wt in zip(targets.tolist(), weights.tolist()):
            if w in banned_vertices or (dev_vertex, w) in banned_edges:
                continue
            val = wt + dist_tgt[w]
            if val < best_val or (val == best_val and w < best_w):
                best_w, best_val = w, val
        if best_w < 0 or not np.isfinite(best_val):
            self._log_task(1)
            return None
        if green[best_w]:
            suffix = self._tree_suffix(dev_vertex, best_w)
            if suffix is not None:
                self.stats.express_hits += 1
                self._log_task(len(suffix))
                return float(best_val), suffix, True
        # yellow case: SSSP over the yellow region with green exits
        status, found = self._yellow_sssp(
            dev_vertex, banned_vertices, banned_edges, green
        )
        if status == "found":
            return found
        if status == "exhausted":
            return None  # provably no red-free suffix exists
        # a rare dirty concatenation: Yen-style full fallback
        return self._dijkstra_suffix(dev_vertex, banned_vertices, banned_edges)

    def _yellow_sssp(self, dev_vertex, banned_vertices, banned_edges, green):
        """Feng's yellow-region search: Dijkstra from the deviation vertex
        over non-red vertices, where settling a *green* vertex ``u`` closes
        a candidate ``d(v,u) + distTgt[u]`` (its tree path to the target is
        red-free by definition).  The search stops as soon as no unsettled
        label can beat the best closed candidate — this early exit over the
        green frontier is NC's saving over Yen's full searches.

        Soundness: any red-free suffix must touch a green vertex (the
        target itself is green), and both of its segments are bounded below
        by the Dijkstra label and ``distTgt``; the minimum closed candidate
        whose concatenation is simple is therefore optimal.  A non-simple
        concatenation (tree path re-entering the Dijkstra prefix) returns
        None and the caller falls back.
        """
        import heapq

        from repro.paths import INF, reconstruct_path

        graph = self.graph
        n = graph.num_vertices
        ws = self._get_workspace()
        if ws is not None:
            # Epoch-stamped reuse: O(1) setup, incremental ban mask, and the
            # scalar loop runs over the workspace's Python-list CSR mirror.
            ep = ws.next_epoch()
            dist, parent, dstamp, sstamp = ws.scalar_state()
            begins, ends, indices, weights, edge_mask = ws.adjacency_lists()
            ws.apply_bans(banned_vertices)
            ban = ws.ban_bytes
        else:
            # Fresh-allocation baseline: same loop over NumPy storage with a
            # trivially-fresh epoch, so the two modes cannot drift apart.
            ep = 1
            dist = np.full(n, INF, dtype=np.float64)
            parent = np.full(n, -1, dtype=np.int64)
            dstamp = np.zeros(n, dtype=np.int64)
            sstamp = np.zeros(n, dtype=np.int64)
            begins, ends, indices, weights, edge_mask = graph.adjacency_arrays()
            ban = np.zeros(n, dtype=bool)
            if banned_vertices:
                ban[np.fromiter(banned_vertices, np.int64, len(banned_vertices))] = True
        dev_vertex = int(dev_vertex)
        dist[dev_vertex] = 0.0
        parent[dev_vertex] = dev_vertex
        dstamp[dev_vertex] = ep
        heap = [(0.0, dev_vertex)]
        dist_tgt = self.dist_tgt
        best_u, best_total = -1, INF
        work = 0
        settled_count = 0
        check_edges = bool(banned_edges)
        while heap:
            d, u = heapq.heappop(heap)
            if sstamp[u] == ep:
                continue
            if d >= best_total:
                break  # no remaining label can improve the closed candidate
            sstamp[u] = ep
            settled_count += 1
            work += 1
            if green[u] and u != dev_vertex:
                total = d + float(dist_tgt[u])
                if total < best_total:
                    best_u, best_total = u, total
                continue  # green vertices are exits; no need to expand them
            lo, hi = begins[u], ends[u]
            for e in range(lo, hi):
                if edge_mask is not None and not edge_mask[e]:
                    continue
                v = indices[e]
                if sstamp[v] == ep or ban[v]:
                    continue
                if check_edges and u == dev_vertex and (u, v) in banned_edges:
                    continue
                work += 1
                nd = d + weights[e]
                if dstamp[v] != ep or nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    dstamp[v] = ep
                    heapq.heappush(heap, (nd, v))
        self.stats.sssp_calls += 1
        self.stats.vertices_settled += settled_count
        self.stats.edges_relaxed += work
        self._log_task(work)
        if best_u < 0:
            # the search drained without touching any green vertex: every
            # red-free route to the target is cut — no suffix exists
            return "exhausted", None
        prefix_part = reconstruct_path(parent, dev_vertex, best_u)
        if prefix_part is None:  # pragma: no cover - settled implies a path
            return "dirty", None
        if best_u == self.target:
            full = prefix_part
        else:
            tree_part = self._tree_suffix(best_u, int(self.next_hop[best_u]))
            if tree_part is None:
                return "dirty", None
            # tree_part is [best_u, next, ..., t]; prefix ends at best_u
            full = prefix_part + list(tree_part[1:])
        seen: set[int] = set()
        for x in full:
            if x in seen:
                return "dirty", None  # concatenation not simple
            seen.add(x)
        return "found", (float(best_total), tuple(full), True)


def nc_ksp(graph, source: int, target: int, k: int, **kwargs) -> KSPResult:
    """Thin alias for :func:`repro.solve` with ``algorithm="NC"``."""
    from repro.api import solve

    return solve(graph, source, target, k, algorithm="NC", **kwargs)
