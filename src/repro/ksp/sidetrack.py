"""Sidetrack-based KSP (SB — Kurz & Mutzel 2016).

SB eliminates most of Yen's SSSP calls by caching one **reverse shortest-path
tree per removal set** (the prefix vertices a deviation must avoid).  The
shortest suffix from a deviation vertex ``v`` is then

    min over allowed first hops w  of   w(v, w) + dist_{G∖R}(w → t),

read directly from the cached tree for ``R``, plus that tree's path — an
exact answer by construction, because the tree lives on exactly the graph
the suffix must live in (unlike OptYen's full-graph tree, which only gives a
lower bound).  Deviations along the same accepted path share prefixes, so
consecutive deviations hit the cache.

The cost is memory: one ``O(n)`` tree per distinct removal set — the
"obvious memory issue" the paper describes (§1.1).  ``stats.peak_tree_bytes``
tracks it; the SB-vs-SB* benchmark shows the time/space trade-off.

The cached trees must live simultaneously, so they own their arrays and do
*not* share the solver's SSSP workspace; only the rare forward-Dijkstra
repair (a tree path looping through the deviation vertex) runs on the
shared epoch-stamped state via :meth:`DeviationKSP._dijkstra_suffix`.
"""

from __future__ import annotations

from repro.errors import UnreachableTargetError
from repro.ksp.base import DeviationKSP, KSPResult
from repro.paths import INF
from repro.sssp.lazy_dijkstra import LazyDijkstra

__all__ = ["SidetrackKSP", "sb_ksp"]


class SidetrackKSP(DeviationKSP):
    """SB: per-removal-set reverse SP trees, computed eagerly in full."""

    name = "SB"
    lawler_default = True

    #: SB materialises each tree completely when first needed; SB*
    #: (:class:`~repro.ksp.sidetrack_star.SidetrackStarKSP`) overrides this
    #: to resume lazily instead.
    eager_trees = True

    def _prepare(self) -> None:
        self._rev_graph = self.graph.reverse()
        self._trees: dict[frozenset[int], LazyDijkstra] = {}
        #: work units of each tree already folded into ``self.stats``
        self._tree_charged: dict[frozenset[int], int] = {}
        root = self._tree_for(frozenset())
        self.stats.init_work += self._charge(frozenset(), root)
        if root.distance_to(self.source) == INF:
            raise UnreachableTargetError(
                f"target {self.target} unreachable from {self.source}"
            )

    # ------------------------------------------------------------------
    # tree cache
    # ------------------------------------------------------------------
    def _tree_for(self, removal_set: frozenset[int]) -> LazyDijkstra:
        """Fetch or build the reverse tree avoiding ``removal_set``."""
        tree = self._trees.get(removal_set)
        if tree is None:
            tree = LazyDijkstra(
                self._rev_graph,
                self.target,
                banned_vertices=removal_set or None,
            )
            if self.eager_trees:
                tree.run_to_completion()
            self._trees[removal_set] = tree
            self._tree_charged[removal_set] = 0
            self.stats.sssp_calls += 1
            total = sum(t.memory_bytes() for t in self._trees.values())
            if total > self.stats.peak_tree_bytes:
                self.stats.peak_tree_bytes = total
        return tree

    def _charge(self, removal_set: frozenset[int], tree: LazyDijkstra) -> int:
        """Fold the tree's work into stats since the last charge; return delta."""
        now = tree.stats.total_work
        before = self._tree_charged[removal_set]
        delta = now - before
        if delta:
            self._tree_charged[removal_set] = now
            # split roughly as the underlying counters did
            self.stats.edges_relaxed += delta  # dominated by relaxations
        return delta

    # ------------------------------------------------------------------
    def _first_path(self):
        from repro.paths import Path

        tree = self._tree_for(frozenset())
        dist = tree.distance_to(self.source)
        self.stats.init_work += self._charge(frozenset(), tree)
        verts = self._tree_walk(tree, self.source)
        assert verts is not None
        return Path(distance=float(dist), vertices=tuple(verts))

    def _tree_walk(self, tree: LazyDijkstra, start: int) -> list[int] | None:
        """Follow the reverse tree's parents from ``start`` to the target."""
        if not tree.settled[start]:
            return None
        out = [int(start)]
        while out[-1] != self.target:
            nxt = int(tree.parent[out[-1]])
            if nxt < 0:
                return None
            out.append(nxt)
        return out

    def _find_suffix(self, dev_vertex, banned_vertices, banned_edges, prefix):
        tree = self._tree_for(banned_vertices)
        targets, weights = self.graph.neighbors(dev_vertex)
        best_w, best_val = -1, INF
        for w, wt in zip(targets.tolist(), weights.tolist()):
            if w in banned_vertices or (dev_vertex, w) in banned_edges:
                continue
            val = wt + tree.distance_to(w)
            if val < best_val or (val == best_val and w < best_w):
                best_w, best_val = w, val
        work = self._charge(banned_vertices, tree) + int(targets.size)
        if best_w < 0 or best_val == INF:
            self._log_task(max(work, 1))
            return None
        suffix = self._tree_walk(tree, best_w)
        if suffix is None or dev_vertex in suffix:
            # tree path loops back through the deviation vertex: repair with
            # a fresh forward Dijkstra (rare)
            self.stats.repairs += 1
            return self._dijkstra_suffix(dev_vertex, banned_vertices, banned_edges)
        self.stats.express_hits += 1
        self._log_task(max(work, len(suffix)))
        return float(best_val), [dev_vertex, *suffix], True


def sb_ksp(graph, source: int, target: int, k: int, **kwargs) -> KSPResult:
    """Thin alias for :func:`repro.solve` with ``algorithm="SB"``."""
    from repro.api import solve

    return solve(graph, source, target, k, algorithm="SB", **kwargs)
