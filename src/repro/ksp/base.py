"""The shared deviation framework all KSP algorithms are built on.

Yen's algorithm and every descendant (NC, OptYen, SB, SB*, PNC, and PeeK's
customised KSP stage) share one loop: take the last accepted path, walk its
*deviation vertices*, find for each the shortest suffix that avoids the
path's prefix and the already-used deviation edges, push the concatenations
into a candidate pool, and accept the pool's minimum as the next path.

:class:`DeviationKSP` implements that loop once — including Lawler's
deviation-index optimisation, candidate de-duplication, deadline handling,
and the per-iteration task log the parallel simulator consumes.  Concrete
algorithms override a single hook, :meth:`DeviationKSP._find_suffix`, which
is precisely where their performance characteristics live.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator

from repro.cancel import checkpoint
from repro.errors import KSPError, KSPTimeout, UnreachableTargetError, VertexError
from repro.obs.tracer import get_tracer
from repro.paths import Path
from repro.sssp.dijkstra import dijkstra

__all__ = [
    "KSPStats",
    "KSPResult",
    "KSPTimeout",  # re-exported from repro.errors (historical home)
    "KSPAlgorithm",
    "DeviationKSP",
    "Candidate",
]


@dataclass
class KSPStats:
    """Work accounting for one KSP run.

    ``iteration_tasks`` drives the paper's two-level parallel strategy in the
    simulator: entry *i* lists the work (edge relaxations + settles) of each
    independent suffix search of outer iteration *i* — these are the tasks
    that run concurrently on different threads.  ``iteration_serial`` holds
    per-iteration work that cannot be task-parallelised (e.g. NC's colour
    propagation, tree rebuilds).
    """

    sssp_calls: int = 0
    express_hits: int = 0
    candidates_generated: int = 0
    candidates_deduped: int = 0
    repairs: int = 0
    edges_relaxed: int = 0
    vertices_settled: int = 0
    init_work: int = 0
    peak_tree_bytes: int = 0
    iteration_tasks: list[list[int]] = field(default_factory=list)
    iteration_serial: list[int] = field(default_factory=list)

    @property
    def total_work(self) -> int:
        """Abstract serial work units for the whole run."""
        return self.edges_relaxed + self.vertices_settled

    def add_sssp(self, sssp_stats) -> int:
        """Fold one SSSP's counters in; returns its work units."""
        self.sssp_calls += 1
        self.edges_relaxed += sssp_stats.edges_relaxed
        self.vertices_settled += sssp_stats.vertices_settled
        return sssp_stats.total_work


@dataclass
class KSPResult:
    """The K shortest simple paths plus run statistics.

    ``paths`` is sorted by ``(distance, vertices)`` and may be shorter than
    ``k_requested`` when the graph has fewer than K simple s→t paths.
    """

    paths: list[Path]
    k_requested: int
    stats: KSPStats = field(default_factory=KSPStats)

    @property
    def distances(self) -> list[float]:
        """The path distances, ascending."""
        return [p.distance for p in self.paths]

    def covered_vertices(self) -> set[int]:
        """Vertices appearing in at least one returned path (Figure 1)."""
        out: set[int] = set()
        for p in self.paths:
            out.update(p.vertices)
        return out

    def covered_edges(self) -> set[tuple[int, int]]:
        """Edges appearing in at least one returned path (Figure 1)."""
        out: set[tuple[int, int]] = set()
        for p in self.paths:
            out.update(p.edges())
        return out


@dataclass(order=True)
class Candidate:
    """A candidate path in the pool.

    ``exact`` is False only for PNC's postponed candidates, whose recorded
    distance is a lower bound that must be repaired before acceptance.
    """

    distance: float
    vertices: tuple[int, ...]
    deviation_index: int = field(compare=False)
    exact: bool = field(compare=False, default=True)


class KSPAlgorithm:
    """Minimal interface every KSP algorithm exposes.

    Subclasses implement :meth:`iter_paths`; :meth:`run` collects K of them.
    """

    #: Short name used in benchmark tables ("Yen", "NC", "OptYen", ...).
    name: str = "?"

    def __init__(self, graph, source: int, target: int, *, deadline: float | None = None):
        n = graph.num_vertices
        if not 0 <= source < n:
            raise VertexError(f"source {source} out of range [0, {n})")
        if not 0 <= target < n:
            raise VertexError(f"target {target} out of range [0, {n})")
        if source == target:
            raise KSPError("source and target must differ for a KSP query")
        self.graph = graph
        self.source = source
        self.target = target
        self.deadline = deadline
        self.stats = KSPStats()

    def iter_paths(self) -> Iterator[Path]:
        """Yield the shortest simple s→t paths in non-decreasing distance."""
        raise NotImplementedError

    def run(self, k: int) -> KSPResult:
        """Return the K shortest simple paths (fewer when exhausted).

        The run executes under a ``ksp`` span on the global tracer; the
        run's :class:`KSPStats` are folded into the span's counters when
        tracing is enabled (see ``docs/observability.md``).
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        tracer = get_tracer()
        with tracer.span("ksp", algorithm=self.name, k=k) as span:
            paths: list[Path] = []
            for path in self.iter_paths():
                paths.append(path)
                if len(paths) == k:
                    break
            if tracer.enabled:
                self._emit_obs(span)
        return KSPResult(paths=paths, k_requested=k, stats=self.stats)

    def _emit_obs(self, span) -> None:
        """Fold this run's stats into the closing span (enabled path only)."""
        st = self.stats
        span.add("ksp.spur_searches", sum(len(t) for t in st.iteration_tasks))
        span.add("ksp.sssp_calls", st.sssp_calls)
        # the algorithm's own aggregate (includes resumable-SSSP work that
        # never goes through the standalone kernels, e.g. SB*'s LazyDijkstra)
        span.add("ksp.edges_relaxed", st.edges_relaxed)
        span.add("ksp.vertices_settled", st.vertices_settled)
        span.add("ksp.express_hits", st.express_hits)
        span.add("ksp.candidates_generated", st.candidates_generated)
        span.add("ksp.candidates_deduped", st.candidates_deduped)
        span.add("ksp.repairs", st.repairs)

    def _check_deadline(self) -> None:
        checkpoint(self.deadline, self.name)


class DeviationKSP(KSPAlgorithm):
    """Yen-style deviation loop with a pluggable suffix search.

    Parameters
    ----------
    graph, source, target:
        The query.  ``graph`` is anything implementing the adjacency-array
        protocol (a :class:`~repro.graph.csr.CSRGraph` or a compaction view).
    lawler:
        Apply Lawler's optimisation: deviations of an accepted path start at
        the index where it deviated from its own parent, skipping suffix
        searches that would only regenerate known candidates.  Classic Yen
        runs with ``lawler=False``; every later algorithm uses True.
    deadline:
        ``time.perf_counter()`` value after which :class:`KSPTimeout` is
        raised — benchmark harness support for the paper's 1-hour cap.
    use_workspace:
        Reuse one epoch-stamped :class:`~repro.sssp.workspace.SSSPWorkspace`
        across every spur-search Dijkstra of the run (default).  Per-search
        setup drops from O(n) to O(1) and the banned-vertex mask is
        maintained incrementally; results are identical.  ``False`` restores
        the historical fresh-allocation path (the benchmark baseline).
    """

    lawler_default = True

    def __init__(
        self,
        graph,
        source: int,
        target: int,
        *,
        lawler: bool | None = None,
        deadline: float | None = None,
        use_workspace: bool = True,
    ) -> None:
        super().__init__(graph, source, target, deadline=deadline)
        self.lawler = self.lawler_default if lawler is None else lawler
        self.use_workspace = use_workspace
        self._workspace = None
        self._pool: list[Candidate] = []
        self._seen: set[tuple[int, ...]] = set()

    def _get_workspace(self):
        """The solver's shared SSSP workspace (``None`` when disabled)."""
        if not self.use_workspace:
            return None
        if self._workspace is None:
            from repro.sssp.workspace import SSSPWorkspace

            self._workspace = SSSPWorkspace(self.graph)
        return self._workspace

    def _emit_obs(self, span) -> None:
        super()._emit_obs(span)
        if self._workspace is not None:
            # epoch count == SSSP queries served by the one reused state
            span.set_gauge("workspace.epochs", self._workspace.epoch)
            span.set_gauge(
                "workspace.memory_bytes", self._workspace.memory_bytes()
            )

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def _prepare(self) -> None:
        """One-time setup before the first path is produced.

        Algorithms that build auxiliary structures (reverse SP trees)
        override this; they must add the setup cost to ``stats.init_work``.
        """

    def _first_path(self) -> Path:
        """The 1st shortest path; default is a target-stopped Dijkstra."""
        res = dijkstra(
            self.graph,
            self.source,
            target=self.target,
            workspace=self._get_workspace(),
            deadline=self.deadline,
        )
        self.stats.init_work += self.stats.add_sssp(res.stats)
        if not res.reached(self.target):
            raise UnreachableTargetError(
                f"target {self.target} unreachable from {self.source}"
            )
        verts = res.reconstruct(self.target)
        assert verts is not None
        return Path(distance=res.dist_of(self.target), vertices=tuple(verts))

    def _find_suffix(
        self,
        dev_vertex: int,
        banned_vertices: frozenset[int],
        banned_edges: frozenset[tuple[int, int]],
        prefix: tuple[int, ...],
    ):
        """Find the shortest simple suffix dev_vertex→target.

        Must avoid ``banned_vertices`` entirely and not start with any edge
        in ``banned_edges``.  Returns ``(distance, suffix_vertices, exact)``
        or ``None`` when no suffix exists.  ``exact=False`` marks a postponed
        (lower-bound) candidate that needs repair before acceptance (PNC).

        The returned work must be appended to ``self._iteration_tasks`` by
        the implementation (via :meth:`_log_task`).
        """
        raise NotImplementedError

    def _repair(self, cand: Candidate) -> Candidate | None:
        """Turn a postponed candidate into an exact one (PNC hook)."""
        raise KSPError(f"{self.name} produced a postponed candidate but has no repair")

    # ------------------------------------------------------------------
    # framework
    # ------------------------------------------------------------------
    def _log_task(self, work: int) -> None:
        """Record one suffix search's work for the two-level parallel model."""
        self._iteration_tasks.append(int(work))

    def _log_serial(self, work: int) -> None:
        """Record per-iteration work that cannot be task-parallelised."""
        self._iteration_serial += int(work)

    def iter_paths(self) -> Iterator[Path]:
        self._prepare()
        first = self._first_path()
        self._seen.add(first.vertices)
        yield first

        accepted: list[tuple[Path, int]] = [(first, 0)]
        while True:
            self._check_deadline()
            prev, dev_from = accepted[-1]
            start = dev_from if self.lawler else 0
            self._iteration_tasks: list[int] = []
            self._iteration_serial = 0
            verts = prev.vertices
            # distance of verts[:i+1], accumulated as the loop walks the path
            prefix_dist = 0.0
            for i in range(start):
                w = self.graph.edge_weight(verts[i], verts[i + 1])
                assert w is not None
                prefix_dist += w
            for i in range(start, len(verts) - 1):
                self._check_deadline()
                dev_vertex = verts[i]
                prefix = verts[: i + 1]
                banned_vertices = frozenset(prefix[:-1])
                banned_edges = self._deviation_edges(accepted, prefix)
                found = self._find_suffix(
                    dev_vertex, banned_vertices, banned_edges, prefix
                )
                if found is not None:
                    suf_dist, suf_verts, exact = found
                    cand_verts = prefix[:-1] + tuple(suf_verts)
                    if cand_verts not in self._seen:
                        self.stats.candidates_generated += 1
                        heapq.heappush(
                            self._pool,
                            Candidate(
                                distance=prefix_dist + suf_dist,
                                vertices=cand_verts,
                                deviation_index=i,
                                exact=exact,
                            ),
                        )
                        self._seen.add(cand_verts)
                    else:
                        self.stats.candidates_deduped += 1
                w = self.graph.edge_weight(verts[i], verts[i + 1])
                assert w is not None, "accepted path uses a missing edge"
                prefix_dist += w
            self.stats.iteration_tasks.append(self._iteration_tasks)
            self.stats.iteration_serial.append(self._iteration_serial)

            nxt = self._pop_exact()
            if nxt is None:
                return
            path = Path(distance=nxt.distance, vertices=nxt.vertices)
            accepted.append((path, nxt.deviation_index))
            yield path

    def _pop_exact(self) -> Candidate | None:
        """Pop the minimum candidate, repairing postponed ones as needed."""
        while self._pool:
            self._check_deadline()
            cand = heapq.heappop(self._pool)
            if cand.exact:
                return cand
            self.stats.repairs += 1
            repaired = self._repair(cand)
            if repaired is not None and repaired.vertices not in self._seen:
                self._seen.add(repaired.vertices)
                heapq.heappush(self._pool, repaired)
        return None

    def _deviation_edges(
        self, accepted: list[tuple[Path, int]], prefix: tuple[int, ...]
    ) -> frozenset[tuple[int, int]]:
        """Edges that previous paths take out of this prefix (Alg. 1 line 6)."""
        i = len(prefix) - 1
        v = prefix[-1]
        banned = set()
        for p, _ in accepted:
            pv = p.vertices
            if len(pv) > i + 1 and pv[: i + 1] == prefix:
                banned.add((v, pv[i + 1]))
        return frozenset(banned)

    # ------------------------------------------------------------------
    # helpers shared by the concrete suffix searches
    # ------------------------------------------------------------------
    def _dijkstra_suffix(
        self,
        dev_vertex: int,
        banned_vertices: frozenset[int],
        banned_edges: frozenset[tuple[int, int]],
        *,
        cutoff: float | None = None,
    ):
        """Target-stopped Dijkstra — Yen's (and every repair's) suffix.

        Runs on the solver's shared epoch-stamped workspace when enabled,
        so back-to-back spur searches pay O(1) setup and only the ban-set
        delta; results are identical to the fresh-allocation kernel.
        """
        res = dijkstra(
            self.graph,
            dev_vertex,
            target=self.target,
            banned_vertices=banned_vertices,
            banned_edges=banned_edges,
            cutoff=cutoff,
            workspace=self._get_workspace(),
            deadline=self.deadline,
        )
        work = self.stats.add_sssp(res.stats)
        self._log_task(work)
        if not res.reached(self.target):
            return None
        verts = res.reconstruct(self.target)
        assert verts is not None
        return res.dist_of(self.target), tuple(verts), True
