"""Yen's algorithm (Yen 1971) — Algorithm 1 of the paper.

Every deviation runs a target-stopped Dijkstra on the graph with the
prefix vertices and the used deviation edges removed.  O(Kn(m + n log n));
this is the baseline everything else beats.

Being nothing *but* spur searches, Yen benefits the most from the shared
epoch-stamped SSSP workspace (:mod:`repro.sssp.workspace`): all of its
Dijkstras reuse one set of traversal arrays with O(1) per-search setup and
an incrementally-maintained banned-vertex mask.  Pass
``use_workspace=False`` for the historical fresh-allocation behaviour.
"""

from __future__ import annotations

from repro.ksp.base import DeviationKSP, KSPResult

__all__ = ["YenKSP", "yen_ksp"]


class YenKSP(DeviationKSP):
    """Classic Yen: one SSSP per deviation vertex, no auxiliary structures.

    ``lawler=True`` enables Lawler's 1972 refinement (skip deviation indices
    before the parent's own deviation point); the paper's Yen baseline runs
    without it, so that is the default here.
    """

    name = "Yen"
    lawler_default = False

    def _find_suffix(self, dev_vertex, banned_vertices, banned_edges, prefix):
        return self._dijkstra_suffix(dev_vertex, banned_vertices, banned_edges)


def yen_ksp(graph, source: int, target: int, k: int, **kwargs) -> KSPResult:
    """Thin alias for :func:`repro.solve` with ``algorithm="Yen"``."""
    from repro.api import solve

    return solve(graph, source, target, k, algorithm="Yen", **kwargs)
