"""Postponed Node Classification (PNC) — the paper's §8 extension.

PNC observes that most candidates produced by expensive suffix searches are
never extracted from the pool, so it *postpones* the expensive part: every
deviation immediately inserts the cheap express candidate read off the
static reverse tree, **even when that candidate is not simple**, recording
only its (lower-bound) distance.  Only when a non-simple candidate is
actually popped as the pool minimum is it "repaired" with a real SSSP and
re-inserted at its exact distance.

Correctness: the express value ``w(v,w*) + distTgt[w*]`` never exceeds the
true shortest allowed suffix (distTgt is the unconstrained distance), so a
postponed entry sorts at or before the position its repaired version will
occupy — the pool minimum is therefore never wrongly accepted.

Repair SSSPs run through the solver-shared epoch-stamped workspace
(:mod:`repro.sssp.workspace`).  Unlike the in-order deviation searches,
repairs jump to an *older* banned-vertex set, which the workspace's
incremental mask handles by flipping the symmetric difference — still far
cheaper than the O(n) mask rebuild of the fresh-allocation path.
"""

from __future__ import annotations

from repro.ksp.base import Candidate, KSPResult
from repro.ksp.optyen import OptYenKSP

__all__ = ["PostponedNCKSP", "pnc_ksp"]


class PostponedNCKSP(OptYenKSP):
    """PNC: insert express lower bounds eagerly, repair lazily on extraction."""

    name = "PNC"

    def _prepare(self) -> None:
        super()._prepare()
        #: deviation context needed to repair a postponed candidate later:
        #: vertices-tuple -> (dev_vertex, banned_vertices, banned_edges)
        self._postponed: dict[tuple[int, ...], tuple] = {}
        #: serial for placeholder uniqueness: two deviations can share a
        #: prefix and a dirty tree walk while differing in banned edges —
        #: their placeholders must not collide in the pool's dedup set
        self._postpone_serial = 0

    def _find_suffix(self, dev_vertex, banned_vertices, banned_edges, prefix):
        hop = self._best_first_hop(dev_vertex, banned_vertices, banned_edges)
        if hop is None:
            self._log_task(1)
            return None
        w_star, bound = hop
        suffix = self._tree_suffix(dev_vertex, w_star, banned_vertices)
        if suffix is not None:
            self.stats.express_hits += 1
            self._log_task(len(suffix))
            return bound, suffix, True
        # Non-simple express path: postpone.  Use the raw (dirty) tree walk
        # as the placeholder vertex tuple; it is unique per deviation and
        # never collides with a real simple path because it repeats a vertex.
        self._postpone_serial += 1
        # The trailing negative sentinel makes every placeholder unique:
        # it can never equal a real path (vertex ids are non-negative) nor
        # another placeholder generated under a different deviation context.
        placeholder = self._dirty_tree_tuple(dev_vertex, w_star) + (
            -self._postpone_serial,
        )
        self._postponed[prefix[:-1] + placeholder] = (
            dev_vertex,
            banned_vertices,
            banned_edges,
        )
        self._log_task(len(placeholder))
        return bound, placeholder, False

    def _dirty_tree_tuple(self, dev_vertex, first_hop) -> tuple[int, ...]:
        """The tree walk including any banned/duplicate vertices, bounded."""
        path = [dev_vertex, first_hop]
        u = first_hop
        seen = {first_hop}
        n = self.graph.num_vertices
        while u != self.target and len(path) <= n + 1:
            u = int(self.next_hop[u])
            if u < 0:
                break
            path.append(u)
            if u in seen:
                break  # cycle through repeated vertex; placeholder is enough
            seen.add(u)
        return tuple(path)

    def _repair(self, cand: Candidate) -> Candidate | None:
        """Run the postponed SSSP and return the exact candidate."""
        # Recover the deviation context from the placeholder tuple.
        dev_index = cand.deviation_index
        prefix = cand.vertices[: dev_index + 1]
        dev_vertex = prefix[-1]
        ctx = self._postponed.pop(cand.vertices, None)
        if ctx is None:  # pragma: no cover - defensive
            return None
        _, banned_vertices, banned_edges = ctx
        found = self._dijkstra_suffix(dev_vertex, banned_vertices, banned_edges)
        if found is None:
            return None
        dist, suffix, _ = found
        prefix_dist = 0.0
        for a, b in zip(prefix[:-1], prefix[1:]):
            w = self.graph.edge_weight(a, b)
            assert w is not None
            prefix_dist += w
        return Candidate(
            distance=prefix_dist + dist,
            vertices=prefix[:-1] + suffix,
            deviation_index=dev_index,
            exact=True,
        )


def pnc_ksp(graph, source: int, target: int, k: int, **kwargs) -> KSPResult:
    """Thin alias for :func:`repro.solve` with ``algorithm="PNC"``."""
    from repro.api import solve

    return solve(graph, source, target, k, algorithm="PNC", **kwargs)
