"""K shortest *walks* — the non-simple relaxation of KSP (extension).

Eppstein's classic algorithm (the paper's ref [23]) solves a different
problem from PeeK: the K shortest *walks*, which may revisit vertices.
Walks are much cheaper to enumerate than simple paths — no deviation
machinery is needed — and some applications (latency estimation, random
walk analysis) genuinely want them, so the library ships this variant for
completeness and as a lower-bound oracle: the i-th shortest walk is never
longer than the i-th shortest simple path, which the test suite exploits.

The implementation is the standard k-label Dijkstra: a vertex may be
settled up to K times; the j-th settlement of the target yields the j-th
shortest walk.  O(K·m·log(K·n)) time, no per-vertex colour or tree state.
"""

from __future__ import annotations

import heapq

from repro.errors import VertexError
from repro.ksp.base import KSPResult, KSPStats
from repro.paths import Path

__all__ = ["k_shortest_walks"]


def k_shortest_walks(
    graph,
    source: int,
    target: int,
    k: int,
    *,
    max_hops: int | None = None,
) -> KSPResult:
    """The K shortest (possibly non-simple) s→t walks.

    Parameters
    ----------
    max_hops:
        Optional cap on walk length in edges, defaulting to ``2n`` — walks
        longer than that cannot be among the K shortest for any K ≤ n on
        positively-weighted graphs of interest, and the cap guards against
        pathological K on tiny cycles.

    Returns
    -------
    KSPResult
        Paths in non-decreasing distance; ``is_simple()`` may be False.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise VertexError(f"source {source} out of range [0, {n})")
    if not 0 <= target < n:
        raise VertexError(f"target {target} out of range [0, {n})")
    if k < 1:
        raise ValueError("k must be >= 1")
    if max_hops is None:
        max_hops = 2 * n

    stats = KSPStats()
    begins, ends, indices, weights, edge_mask = graph.adjacency_arrays()

    settled_count = [0] * n
    paths: list[Path] = []
    # heap entries: (distance, hops, vertices as tuple)
    heap: list[tuple[float, int, tuple[int, ...]]] = [(0.0, 0, (source,))]
    while heap and len(paths) < k:
        d, hops, verts = heapq.heappop(heap)
        u = verts[-1]
        if settled_count[u] >= k:
            continue
        settled_count[u] += 1
        stats.vertices_settled += 1
        if u == target:
            paths.append(Path(distance=d, vertices=verts))
            # do NOT stop expanding: longer walks may pass through the
            # target and return (they are still s→t walks)
        if hops >= max_hops:
            continue
        lo, hi = begins[u], ends[u]
        for e in range(lo, hi):
            if edge_mask is not None and not edge_mask[e]:
                continue
            v = indices[e]
            if settled_count[v] >= k:
                continue
            stats.edges_relaxed += 1
            heapq.heappush(heap, (d + weights[e], hops + 1, verts + (int(v),)))
    return KSPResult(paths=paths, k_requested=k, stats=stats)
