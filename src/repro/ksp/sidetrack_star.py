"""SB* — sidetrack-based KSP with resumable-SSSP tree reuse.

Al Zoobi, Coudert & Nisse's improvement over SB, and the paper's
state-of-the-art *serial* baseline: instead of materialising each reverse
shortest-path tree completely when a new removal set appears, SB* keeps
each tree's Dijkstra **paused** and resumes it only far enough to answer the
current deviation's ``distance_to(w)`` queries (see
:class:`~repro.sssp.lazy_dijkstra.LazyDijkstra`).

Deviation queries only ever need the distances of the deviation vertex's
immediate neighbours, which sit close to the target's distance frontier on
most candidate paths, so the resumed searches settle a small fraction of the
graph — that is the entire speed advantage over SB.  The price is keeping
paused heap state alive per tree: "it costs even more space to record the
status of the previously computed SSSPs" (§1.1), visible in
``stats.peak_tree_bytes``.
"""

from __future__ import annotations

from repro.ksp.base import KSPResult
from repro.ksp.sidetrack import SidetrackKSP

__all__ = ["SidetrackStarKSP", "sb_star_ksp"]


class SidetrackStarKSP(SidetrackKSP):
    """SB*: identical deviation logic to SB, lazily-resumed trees."""

    name = "SB*"
    eager_trees = False


def sb_star_ksp(graph, source: int, target: int, k: int, **kwargs) -> KSPResult:
    """Thin alias for :func:`repro.solve` with ``algorithm="SB*"``."""
    from repro.api import solve

    return solve(graph, source, target, k, algorithm="SB*", **kwargs)
