"""``SHORTEST k GROUP`` — the GQL / SQL:2023 PGQ grouped-KSP variant.

The paper's introduction notes that the new ISO GQL query language and the
SQL/PGQ extension standardise two KSP forms: plain ``SHORTEST k`` (what
every algorithm in :mod:`repro.ksp` computes) and ``SHORTEST k GROUP``,
which buckets paths by equal length and returns the *k shortest groups* —
each group containing every simple path of that length.

This module implements the group form on top of any path iterator, so the
accelerated PeeK pipeline serves GQL group queries for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.paths import Path

__all__ = ["PathGroup", "shortest_k_groups"]


@dataclass
class PathGroup:
    """All simple s→t paths sharing one distance."""

    distance: float
    paths: list[Path] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.paths)


def shortest_k_groups(
    algorithm,
    k: int,
    *,
    rel_tol: float = 1e-9,
    max_paths: int | None = None,
) -> list[PathGroup]:
    """Return the ``k`` shortest *groups* of equal-length s→t paths.

    Parameters
    ----------
    algorithm:
        A constructed :class:`~repro.ksp.base.KSPAlgorithm` (any of them,
        including PeeK) — its :meth:`iter_paths` supplies paths in
        non-decreasing distance, so groups close as soon as a strictly
        longer path appears.
    k:
        Number of distance groups wanted.
    rel_tol:
        Two distances within this relative tolerance belong to one group
        (floating-point accumulated weights are never exactly equal).
    max_paths:
        Safety cap on the total paths enumerated; unit-weight graphs can
        have exponentially many paths per group.  When hit, the last group
        is returned possibly incomplete.

    Returns
    -------
    list[PathGroup]
        At most ``k`` groups, ascending by distance.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    groups: list[PathGroup] = []
    produced = 0
    for path in algorithm.iter_paths():
        if groups and math.isclose(
            path.distance, groups[-1].distance, rel_tol=rel_tol, abs_tol=rel_tol
        ):
            groups[-1].paths.append(path)
        else:
            if len(groups) == k:
                break
            groups.append(PathGroup(distance=path.distance, paths=[path]))
        produced += 1
        if max_paths is not None and produced >= max_paths:
            break
    return groups
