"""Distributed Δ-stepping over a row partition (paper §6.2).

The SPMD structure mirrors the Graph500-style distributed Δ-stepping the
paper builds on: each rank owns a contiguous vertex range (all their
out-edges are local under 1-D row partitioning), relaxes its own bucket
frontier, and routes relaxation *requests* ``(target, distance, parent)``
to the target's owner with an ``alltoallv``; owners apply the requests with
the same vectorised per-target argmin reduction the serial kernel uses.
Bucket advancement is agreed with an ``allreduce`` per step.

Distances and parents are bit-identical to serial Δ-stepping/Dijkstra
(tested property), and every message is accounted by the
:class:`~repro.distributed.comm.SimComm` BSP model.

Robustness hooks (all optional, all zero-cost when unused):

* ``deadline=`` — each superstep passes a cooperative cancellation
  checkpoint (stage ``"dist.sssp"``), so a distributed run observes its
  budget like every single-process kernel does;
* ``supervisor=`` — a :class:`~repro.distributed.supervisor.
  DistSupervisor`: the mutable per-rank state (tentative distances,
  parents, bucket membership) is checkpointed at bucket boundaries and a
  :class:`~repro.errors.RankFailure` raised by a collective is recovered
  in place, with results bitwise-identical to a failure-free run;
* ``footprint_recorder=`` — a :class:`~repro.analysis.race.
  DistDeltaFootprints`: declares each superstep's gather/route/commit
  read/write sets to the communicator's race detector, with the
  collectives acting as the barriers.
"""

from __future__ import annotations

import numpy as np

from repro.cancel import cancellation_active, checkpoint
from repro.distributed.comm import SimComm
from repro.distributed.partition import RowPartition
from repro.errors import RankFailure, VertexError
from repro.paths import INF
from repro.sssp.delta_stepping import _expand_frontier, _relax_batch, choose_delta
from repro.sssp.result import SSSPResult, SSSPStats

__all__ = ["distributed_delta_stepping"]

_REQ_BYTES = 24  # one request = (int64 target, float64 dist, int64 parent)


def _route_requests(
    comm: SimComm,
    partition: RowPartition,
    per_rank_requests: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Group each rank's requests by owner and exchange them."""
    r = comm.num_ranks
    send: list[list] = [[None] * r for _ in range(r)]
    for i, (targets, cands, srcs) in enumerate(per_rank_requests):
        if targets.size == 0:
            for j in range(r):
                send[i][j] = _empty_req()
            continue
        owners = partition.owner_of(targets)
        order = np.argsort(owners, kind="stable")
        targets, cands, srcs, owners = (
            targets[order],
            cands[order],
            srcs[order],
            owners[order],
        )
        bounds = np.searchsorted(owners, np.arange(r + 1))
        for j in range(r):
            sl = slice(bounds[j], bounds[j + 1])
            send[i][j] = (targets[sl], cands[sl], srcs[sl])
    recv = comm.alltoallv(send, stage="dist.sssp.route")
    merged: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for j in range(r):
        ts = [blk[0] for blk in recv[j] if blk is not None and blk[0].size]
        if not ts:
            merged.append(_empty_req())
            continue
        merged.append(
            (
                np.concatenate(ts),
                np.concatenate(
                    [blk[1] for blk in recv[j] if blk is not None and blk[0].size]
                ),
                np.concatenate(
                    [blk[2] for blk in recv[j] if blk is not None and blk[0].size]
                ),
            )
        )
    return merged


def _empty_req() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    return (
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.float64),
        np.empty(0, dtype=np.int64),
    )


def distributed_delta_stepping(
    partition: RowPartition,
    source: int,
    comm: SimComm,
    *,
    delta: float | None = None,
    deadline: float | None = None,
    supervisor=None,
    footprint_recorder=None,
) -> SSSPResult:
    """Run Δ-stepping across the partition's ranks through ``comm``.

    Returns a standard :class:`~repro.sssp.result.SSSPResult`; the
    communication/compute accounting accumulates into ``comm.report``.
    See the module docstring for ``deadline=`` / ``supervisor=`` /
    ``footprint_recorder=``.
    """
    graph = partition.graph
    n = graph.num_vertices
    if not 0 <= source < n:
        raise VertexError(f"source {source} out of range [0, {n})")
    if delta is None:
        delta = choose_delta(graph)
    r = comm.num_ranks

    begins, ends, indices, weights, _ = graph.adjacency_arrays()
    light = weights <= delta

    dist = np.full(n, INF, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0
    parent[source] = source
    needs = np.zeros(n, dtype=bool)
    needs[source] = True
    stats = SSSPStats()
    check_cancel = cancellation_active(deadline)

    ranges = [partition.local_range(i) for i in range(r)]

    def local_pending_min_bucket(i_rank: int) -> float:
        lo, hi = ranges[i_rank]
        idx = np.flatnonzero(needs[lo:hi])
        if idx.size == 0:
            return INF
        return float(np.floor(dist[lo + idx] / delta).min())

    def expand(i_rank: int, frontier: np.ndarray, want_light: bool):
        edge_idx, edge_src = _expand_frontier(frontier, begins, ends)
        if edge_idx.size:
            keep = light[edge_idx] if want_light else ~light[edge_idx]
            edge_idx, edge_src = edge_idx[keep], edge_src[keep]
        if edge_idx.size == 0:
            return _empty_req(), 0
        targets = indices[edge_idx]
        cands = dist[edge_src] + weights[edge_idx]
        return (targets, cands, edge_src), int(edge_idx.size)

    def apply_merged(merged) -> None:
        """Owner ranks commit the routed relaxation requests."""
        apply_works = []
        for j in range(r):
            targets, cands, srcs = merged[j]
            if targets.size:
                improved = _relax_batch(dist, parent, targets, cands, srcs)
                needs[improved] = True
            else:
                improved = np.empty(0, dtype=np.int64)
            if footprint_recorder is not None:
                footprint_recorder.commit(comm, j, targets, improved)
            apply_works.append(int(targets.size) + 1)
        comm.compute(apply_works)

    def run_bucket() -> bool:
        """One outer bucket: light phases to fixpoint, then heavy edges.

        Returns True when no bucket is pending anywhere (the run is done).
        """
        # agree on the globally smallest pending bucket
        i = comm.allreduce(
            [local_pending_min_bucket(j) for j in range(r)],
            op=min,
            stage="dist.sssp.bucket",
        )
        if i == INF:
            return True
        i = int(i)
        lo_d, hi_d = i * delta, (i + 1) * delta
        in_r = np.zeros(n, dtype=bool)

        while True:
            if check_cancel:
                checkpoint(deadline, "dist.sssp")
            requests: list = []
            works: list[int] = []
            any_frontier = False
            for j in range(r):
                lo, hi = ranges[j]
                local = np.flatnonzero(needs[lo:hi]) + lo
                if local.size:
                    d_loc = dist[local]
                    frontier = local[(d_loc >= lo_d) & (d_loc < hi_d)]
                else:
                    frontier = local
                if frontier.size:
                    any_frontier = True
                    needs[frontier] = False
                    in_r[frontier] = True
                    req, w = expand(j, frontier, want_light=True)
                else:
                    req, w = _empty_req(), 0
                if footprint_recorder is not None:
                    footprint_recorder.gather(comm, j, frontier, req[0])
                requests.append(req)
                works.append(w)
            if not any_frontier:
                # the real code needs one allreduce to agree the light phase
                # of bucket i has drained; charge it and move on
                comm.allreduce([0] * r, op=max, stage="dist.sssp.drain")
                break
            comm.compute([w + 1 for w in works])
            stats.edges_relaxed += sum(w for w in works)
            stats.phases += 1
            stats.phase_work.append(sum(works))
            apply_merged(_route_requests(comm, partition, requests))

        # heavy edges of everything settled in bucket i
        if check_cancel:
            checkpoint(deadline, "dist.sssp")
        requests = []
        works = []
        for j in range(r):
            lo, hi = ranges[j]
            settled_local = np.flatnonzero(in_r[lo:hi]) + lo
            stats.vertices_settled += int(settled_local.size)
            if settled_local.size:
                req, w = expand(j, settled_local, want_light=False)
            else:
                req, w = _empty_req(), 0
            if footprint_recorder is not None:
                footprint_recorder.gather(comm, j, settled_local, req[0])
            requests.append(req)
            works.append(w)
        comm.compute([w + 1 for w in works])
        stats.edges_relaxed += sum(works)
        stats.phases += 1
        stats.phase_work.append(sum(works))
        apply_merged(_route_requests(comm, partition, requests))
        return False

    if supervisor is not None:
        supervisor.bind_partition(partition)
    first_boundary = True
    while True:
        if supervisor is not None:
            # a consistent BSP boundary: snapshot the mutable per-rank state
            # (the entry boundary is forced so any restore inside this run
            # finds a snapshot with this run's state schema)
            supervisor.boundary(
                {"dist": dist, "parent": parent, "needs": needs},
                meta={
                    "edges_relaxed": stats.edges_relaxed,
                    "vertices_settled": stats.vertices_settled,
                    "phases": stats.phases,
                    "phase_work": list(stats.phase_work),
                },
                force=first_boundary,
            )
            first_boundary = False
        try:
            if run_bucket():
                break
        except RankFailure as failure:
            if supervisor is None:
                raise
            arrays, meta = supervisor.recover(failure)
            dist[:] = arrays["dist"]
            parent[:] = arrays["parent"]
            needs[:] = arrays["needs"]
            stats.edges_relaxed = int(meta["edges_relaxed"])
            stats.vertices_settled = int(meta["vertices_settled"])
            stats.phases = int(meta["phases"])
            stats.phase_work[:] = list(meta["phase_work"])

    return SSSPResult(source=source, dist=dist, parent=parent, stats=stats)
