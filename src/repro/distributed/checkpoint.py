"""In-memory, checksummed superstep checkpoints for the distributed runs.

A checkpoint is one *coordinated* snapshot: every rank serialises its
slice of the mutable algorithm state (tentative distances, parents,
bucket membership, compaction status — whatever the algorithm hands the
supervisor) and writes it, CRC-stamped, into the store.  The store keeps
only the latest snapshot per rank — exactly what checkpoint/restart
needs — and verifies the CRC on every load, so a corrupted checkpoint
surfaces as a :class:`~repro.errors.SanitizerError` instead of silently
restarting the job from garbage (the failure mode coordinated
checkpointing is most embarrassed by).

Payloads are opaque bytes at this layer; the
:class:`~repro.distributed.supervisor.DistSupervisor` owns the
(de)serialisation of NumPy slices and metadata.  Costs are *not* charged
here — the supervisor charges checkpoint bytes through the
:class:`~repro.distributed.comm.CommModel` so the BSP clock sees them.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.errors import SanitizerError

__all__ = ["CheckpointStore"]


@dataclass
class _Slot:
    """One rank's latest checkpoint: tag, payload, and its CRC32 stamp."""

    tag: int
    payload: bytearray
    crc: int


class CheckpointStore:
    """Latest-snapshot-per-rank storage with CRC32 integrity checking."""

    def __init__(self) -> None:
        self._slots: dict[int, _Slot] = {}
        #: cumulative payload bytes accepted by :meth:`save_rank`
        self.bytes_written = 0
        #: :meth:`save_rank` calls across the store's lifetime
        self.writes = 0

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def ranks(self) -> list[int]:
        return sorted(self._slots)

    def save_rank(self, tag: int, rank: int, payload: bytes) -> int:
        """Store ``rank``'s snapshot for checkpoint ``tag``; returns its size."""
        blob = bytearray(payload)
        self._slots[rank] = _Slot(tag=tag, payload=blob, crc=zlib.crc32(blob))
        self.bytes_written += len(blob)
        self.writes += 1
        return len(blob)

    def load_rank(self, rank: int) -> bytes:
        """Return ``rank``'s latest snapshot, verifying its checksum.

        Raises :class:`~repro.errors.SanitizerError` when the stored bytes
        no longer match their CRC stamp (bit rot, a torn write, or the
        test harness's deliberate :meth:`corrupt`), and ``KeyError`` when
        the rank never checkpointed.
        """
        slot = self._slots[rank]
        if zlib.crc32(slot.payload) != slot.crc:
            raise SanitizerError(
                f"checkpoint corruption: rank {rank} snapshot "
                f"(tag {slot.tag}) fails its CRC32 check"
            )
        return bytes(slot.payload)

    def latest_tag(self) -> int | None:
        """Tag of the most recent coordinated checkpoint, if any."""
        if not self._slots:
            return None
        return max(s.tag for s in self._slots.values())

    def rank_bytes(self) -> list[int]:
        """Per-rank payload sizes of the latest snapshot (rank order)."""
        return [len(self._slots[r].payload) for r in self.ranks]

    def corrupt(self, rank: int, offset: int = 0) -> None:
        """Test hook: flip one byte of ``rank``'s stored snapshot."""
        slot = self._slots[rank]
        if not slot.payload:
            raise ValueError(f"rank {rank} snapshot is empty")
        slot.payload[offset % len(slot.payload)] ^= 0xFF
