"""Failure supervision for the distributed algorithms.

The distributed kernels are BSP superstep machines; at every iteration
boundary their mutable state is consistent across ranks.  The supervisor
exploits that: algorithms call :meth:`DistSupervisor.boundary` with their
rank-partitionable state at each such point, and when a collective raises
:class:`~repro.errors.RankFailure` they call :meth:`DistSupervisor.
recover` and resume from the returned restore point.  Two recovery
policies are offered, chosen per run:

``"restart"`` — coordinated checkpoint/restart.  Every
    ``checkpoint_interval``-th boundary writes a CRC-stamped coordinated
    snapshot into the :class:`~repro.distributed.checkpoint.
    CheckpointStore` (bytes charged through the
    :class:`~repro.distributed.comm.CommModel`); on failure **all** ranks
    roll back to the last checkpoint and replay.  Wasted work is bounded
    by the interval, recovery cost is one parallel snapshot read.

``"recompute"`` — lost-work recompute (message-logging style).  No
    charged checkpoints; every boundary keeps an *uncharged* shadow
    snapshot — the simulation stand-in for the message logs a real
    implementation replays.  On failure the replacement rank rebuilds its
    partition, assigned immutably by :class:`~repro.distributed.
    partition.RowPartition`, by solo-replaying its own history while the
    survivors wait: recovery cost is the dead rank's cumulative compute
    share plus re-delivery of its state bytes.  Wasted work is only the
    torn superstep, but the replay bill grows with how far the job has
    progressed — the crossover against ``"restart"`` is measured in
    ``EXPERIMENTS.md``.

Accounting is exact in both modes: charges since the restore point move
into ``wasted_units`` (see :meth:`~repro.distributed.comm.SimComm.
rollback`), recovery is charged to ``recovery_units``, and the headline
property — tested across a grid of kill points — is that a recovered run
returns **bitwise-identical** results to its failure-free twin while
``DistReport.time_units`` decomposes into
``compute + comm + checkpoint + recovery + wasted``.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np

from repro.distributed.checkpoint import CheckpointStore
from repro.distributed.comm import SimComm
from repro.errors import RankFailure, RecoveryExhaustedError
from repro.obs.tracer import get_tracer

__all__ = ["DistSupervisor", "RecoveryConfig", "RECOVERY_POLICIES"]

RECOVERY_POLICIES = ("restart", "recompute")


@dataclass(frozen=True)
class RecoveryConfig:
    """Per-run fault-tolerance settings (see module docstring).

    ``checkpoint_interval`` counts supervisor boundaries (bucket
    iterations for the SSSP, stages for distributed PeeK) between charged
    checkpoints under the ``"restart"`` policy; the ``"recompute"``
    policy ignores it.
    """

    policy: str = "restart"
    checkpoint_interval: int = 1
    max_recoveries: int = 2

    def supervisor(
        self, comm: SimComm, store: CheckpointStore | None = None
    ) -> "DistSupervisor":
        return DistSupervisor(
            comm,
            policy=self.policy,
            checkpoint_interval=self.checkpoint_interval,
            max_recoveries=self.max_recoveries,
            store=store,
        )


class DistSupervisor:
    """Checkpoint/restart ∨ lost-work-recompute recovery over one SimComm."""

    def __init__(
        self,
        comm: SimComm,
        *,
        policy: str = "restart",
        checkpoint_interval: int = 1,
        max_recoveries: int = 2,
        store: CheckpointStore | None = None,
    ) -> None:
        if policy not in RECOVERY_POLICIES:
            raise ValueError(
                f"unknown recovery policy {policy!r} "
                f"(choose from {RECOVERY_POLICIES})"
            )
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self.comm = comm
        self.policy = policy
        self.checkpoint_interval = checkpoint_interval
        self.max_recoveries = max_recoveries
        self.store = store if store is not None else CheckpointStore()
        #: recoveries performed so far (gives up past ``max_recoveries``)
        self.recoveries = 0
        self._cuts: list[tuple[int, int]] | None = None
        self._marker: dict | None = None
        self._boundaries = 0
        self._since_save = 0

    # ------------------------------------------------------------------
    def bind_partition(self, partition) -> None:
        """Adopt ``partition``'s immutable rank → vertex-range assignment.

        Saved state arrays are split along these ranges; algorithms call
        this before their first :meth:`boundary` (and again when they
        switch partitions, as distributed PeeK does between the forward
        and reverse SSSPs).
        """
        self._cuts = [
            partition.local_range(r) for r in range(partition.num_ranks)
        ]

    def boundary(
        self,
        arrays: dict[str, np.ndarray],
        meta: dict | None = None,
        *,
        force: bool = False,
    ) -> None:
        """One consistent superstep/stage boundary.

        ``arrays`` maps state names to full-length (vertex-indexed)
        arrays; each rank snapshots its slice.  ``meta`` carries small
        non-partitionable state (bucket index, stats counters) on rank 0.
        ``force=True`` checkpoints regardless of the interval — used at
        stage entries so a restore can never cross a state-schema change.
        """
        self._boundaries += 1
        self._since_save += 1
        save = (
            force
            or self._marker is None
            or self.policy == "recompute"
            or self._since_save >= self.checkpoint_interval
        )
        if not save:
            return
        rank_bytes = self._save(arrays, meta)
        self._since_save = 0
        self._marker = self.comm.marker()
        if self.policy == "restart":
            # recompute-mode shadows model message logs: payloads already
            # crossed the wire as collectives, so nothing extra is charged
            self.comm.charge_checkpoint(rank_bytes)

    def recover(self, failure: RankFailure) -> tuple[dict[str, np.ndarray], dict]:
        """Handle one rank failure; returns the restore-point state.

        Rolls accounting back to the restore point (the discarded charges
        become ``wasted_units``), charges the policy's recovery cost,
        revives the rank, and returns ``(arrays, meta)`` reassembled from
        the checksum-verified snapshots.  Raises
        :class:`~repro.errors.RecoveryExhaustedError` once
        ``max_recoveries`` is spent and
        :class:`~repro.errors.SanitizerError` on checkpoint corruption.
        """
        if self._marker is None:
            raise failure  # nothing to restore from — propagate
        self.recoveries += 1
        if self.recoveries > self.max_recoveries:
            raise RecoveryExhaustedError(
                failure.rank, self.recoveries, self.max_recoveries
            )
        comm = self.comm
        model = comm.model
        tracer = get_tracer()
        with tracer.span(
            "dist.recover",
            rank=failure.rank,
            stage=failure.stage,
            policy=self.policy,
        ):
            per_rank_compute = self._marker["per_rank_compute"]
            wasted = comm.rollback(self._marker)
            rank_bytes = self.store.rank_bytes()
            if self.policy == "restart":
                # every rank reads its snapshot back in parallel, plus one
                # round of coordination to agree on the restart point
                units = (
                    model.latency
                    + model.per_byte * (max(rank_bytes) if rank_bytes else 0)
                    + model.per_message * (comm.num_ranks - 1)
                )
            else:
                # the replacement solo-replays the dead rank's history
                # (survivors wait), then re-receives its state bytes
                dead_bytes = (
                    rank_bytes[failure.rank]
                    if failure.rank < len(rank_bytes)
                    else 0
                )
                dead_compute = (
                    per_rank_compute[failure.rank]
                    if failure.rank < len(per_rank_compute)
                    else 0.0
                )
                units = (
                    dead_compute + model.latency + model.per_byte * dead_bytes
                )
            comm.charge_recovery(units)
            comm.report.failures += 1
            comm.revive(failure.rank)
            if tracer.enabled:
                tracer.add("dist.failures")
                tracer.add("dist.wasted_units", wasted)
                tracer.add("dist.recovery_units", units)
            return self._load()

    # ------------------------------------------------------------------
    def _split(self, n: int) -> list[tuple[int, int]]:
        if self._cuts is not None:
            return self._cuts
        # no partition bound: fall back to near-equal contiguous slices
        edges = np.linspace(0, n, self.comm.num_ranks + 1).astype(np.int64)
        return [
            (int(edges[r]), int(edges[r + 1]))
            for r in range(self.comm.num_ranks)
        ]

    def _save(
        self, arrays: dict[str, np.ndarray], meta: dict | None
    ) -> list[int]:
        n = next((a.shape[0] for a in arrays.values()), 0)
        cuts = self._split(n)
        for name, arr in arrays.items():
            if arr.shape[0] != n:
                raise ValueError(
                    f"state array {name!r} has length {arr.shape[0]}, "
                    f"expected {n}"
                )
        tag = self._boundaries
        rank_bytes = []
        for rank, (lo, hi) in enumerate(cuts):
            payload = pickle.dumps(
                {
                    "arrays": {
                        name: arr[lo:hi].copy() for name, arr in arrays.items()
                    },
                    "meta": meta if rank == 0 else None,
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            rank_bytes.append(self.store.save_rank(tag, rank, payload))
        return rank_bytes

    def _load(self) -> tuple[dict[str, np.ndarray], dict]:
        parts: list[dict] = [
            pickle.loads(self.store.load_rank(rank))
            for rank in range(self.comm.num_ranks)
        ]
        meta = parts[0]["meta"] or {}
        names = parts[0]["arrays"].keys()
        arrays = {
            name: (
                np.concatenate([p["arrays"][name] for p in parts])
                if parts
                else np.empty(0)
            )
            for name in names
        }
        return arrays, meta
