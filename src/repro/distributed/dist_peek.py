"""Distributed PeeK (paper §6.2, evaluated in Figure 10).

The pipeline maps each PeeK stage onto the cluster exactly as the paper
describes:

1. both SSSPs run as distributed Δ-stepping over a row-wise 1-D partition
   (:mod:`repro.distributed.dist_sssp`);
2. the K-upper-bound identification sorts the spSum array with a
   distributed sample sort, gathers a small candidate window to rank 0 for
   the validity scan, and broadcasts the bound;
3. each rank compacts its own rows (embarrassingly parallel); because the
   pruned graph is tiny, it is then allgathered so every node holds the
   remaining graph — which is what makes step 4 cheap;
4. the KSP stage maps the *outer* level (independent SSSPs per deviation)
   onto computing nodes and the *inner* level (Δ-stepping) onto the cores
   of a node.

Paths/distances are identical to serial PeeK (tested property); the
returned :class:`~repro.distributed.comm.DistReport` carries the BSP time
model that Figure 10's scaling/GTEPS curves are computed from.

Fault tolerance: construct with ``fault_plan=`` (a
:class:`~repro.distributed.comm.FaultPlan` of seeded rank kills) and
``recovery=`` (a :class:`~repro.distributed.supervisor.RecoveryConfig`)
and the run survives rank loss — each stage is a supervised recovery
unit, the SSSPs checkpoint at bucket granularity, and the recovered
result is bitwise-identical to the failure-free run while the report
decomposes simulated time into compute + comm + checkpoint + recovery +
wasted units.  ``run(k, deadline=...)`` additionally threads the
cooperative-cancellation deadline through every stage (labels
``dist.peek.{sssp,bound,compact,ksp}``), raising
:class:`~repro.errors.KSPTimeout` exactly like ``repro.solve`` does.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.cancel import cancellation_active, checkpoint
from repro.core.peek import PeeK, PeeKResult
from repro.distributed.comm import CommModel, DistReport, FaultPlan, SimComm
from repro.distributed.dist_sssp import distributed_delta_stepping
from repro.distributed.partition import RowPartition
from repro.distributed.sample_sort import distributed_sample_sort
from repro.distributed.supervisor import RecoveryConfig
from repro.errors import RankFailure, UnreachableTargetError

__all__ = ["DistributedPeeK", "distributed_peek"]


@dataclass
class DistributedPeeKReport:
    """Everything a scaling experiment needs from one distributed run."""

    result: PeeKResult
    comm: DistReport
    ksp_units: float
    edges_traversed: int

    @property
    def time_units(self) -> float:
        return self.comm.time_units + self.ksp_units

    # fault-tolerance accounting, mirrored from the communicator's report
    @property
    def failures(self) -> int:
        return self.comm.failures

    @property
    def checkpoint_units(self) -> float:
        return self.comm.checkpoint_units

    @property
    def recovery_units(self) -> float:
        return self.comm.recovery_units

    @property
    def wasted_units(self) -> float:
        return self.comm.wasted_units


class DistributedPeeK:
    """PeeK across ``num_nodes`` simulated computing nodes.

    Parameters
    ----------
    graph, source, target:
        The query, as for :class:`~repro.core.peek.PeeK`.
    num_nodes:
        Computing nodes (the paper scales 1 → 64, 16 cores each).
    model:
        BSP cost parameters, including ``cores_per_node``.
    fault_plan:
        Optional seeded rank-kill schedule injected into the communicator.
    recovery:
        Optional :class:`~repro.distributed.supervisor.RecoveryConfig`;
        without one, an injected rank failure propagates to the caller as
        :class:`~repro.errors.RankFailure`.
    """

    def __init__(
        self,
        graph,
        source: int,
        target: int,
        num_nodes: int,
        *,
        model: CommModel | None = None,
        alpha: float = 0.1,
        fault_plan: FaultPlan | None = None,
        recovery: RecoveryConfig | None = None,
    ) -> None:
        self.graph = graph
        self.source = source
        self.target = target
        self.num_nodes = num_nodes
        self.model = model or CommModel()
        self.alpha = alpha
        self.fault_plan = fault_plan
        self.recovery = recovery

    def run(self, k: int, *, deadline: float | None = None) -> DistributedPeeKReport:
        comm = SimComm(self.num_nodes, self.model, fault_plan=self.fault_plan)
        supervisor = (
            self.recovery.supervisor(comm) if self.recovery is not None else None
        )
        check_cancel = cancellation_active(deadline)
        graph = self.graph
        n = graph.num_vertices
        r = self.num_nodes

        def recovering(stage_fn):
            """Run one pure stage, re-running it after a recovered failure.

            Stages past the SSSPs compute from immutable inputs, so the
            restore point (the forced stage-entry checkpoint) only needs
            to rewind the accounting; the replay is the stage itself.
            """
            while True:
                try:
                    return stage_fn()
                except RankFailure as failure:
                    if supervisor is None:
                        raise
                    supervisor.recover(failure)

        # ---- stage 1: the two distributed SSSPs --------------------------
        if check_cancel:
            checkpoint(deadline, "dist.peek.sssp")
        fwd_part = RowPartition.build(graph, r)
        fwd = distributed_delta_stepping(
            fwd_part, self.source, comm, deadline=deadline, supervisor=supervisor
        )
        if not np.isfinite(fwd.dist[self.target]):
            raise UnreachableTargetError(
                f"target {self.target} unreachable from {self.source}"
            )
        if check_cancel:
            checkpoint(deadline, "dist.peek.sssp")
        rev_part = RowPartition.build(graph.reverse(), r)
        rev = distributed_delta_stepping(
            rev_part, self.target, comm, deadline=deadline, supervisor=supervisor
        )
        edges_traversed = fwd.stats.edges_relaxed + rev.stats.edges_relaxed

        def stage_boundary(name: str) -> None:
            """Commit a completed stage: the SSSP arrays are now immutable
            inputs of everything downstream, so they are the state worth
            checkpointing (forced — a restore never crosses a stage)."""
            if supervisor is None:
                return
            supervisor.bind_partition(fwd_part)
            supervisor.boundary(
                {
                    "fwd_dist": fwd.dist,
                    "fwd_parent": fwd.parent,
                    "rev_dist": rev.dist,
                    "rev_parent": rev.parent,
                },
                meta={"stage": name},
                force=True,
            )

        stage_boundary("bound")

        # ---- stage 2: bound identification -------------------------------
        if check_cancel:
            checkpoint(deadline, "dist.peek.bound")

        def bound_stage() -> PeeKResult:
            # spSum is computed rank-local (each rank owns a vertex slice)
            comm.compute([math.ceil(n / r)] * r)
            sp_sum = fwd.dist + rev.dist
            finite = sp_sum[np.isfinite(sp_sum)]
            if finite.size >= r:
                distributed_sample_sort(finite, comm)
            # candidate window (a few K entries) to rank 0, scan, broadcast
            # b — the scan itself is the serial PeeK code below; charge the
            # gather
            comm.allgather(
                [np.empty(min(4 * k, max(finite.size, 1)))] * r,
                stage="dist.bound.gather",
            )

            # The actual prune/compact/KSP math is delegated to the serial
            # PeeK implementation (identical results by construction); the
            # charges below account for its distributed execution.
            peek = PeeK(
                graph, self.source, self.target, alpha=self.alpha,
                deadline=deadline,
            )
            res = peek.run(k)
            comm.bcast(
                float(res.prune.bound if res.prune else 0.0),
                stage="dist.bound.bcast",
            )
            return res

        result = recovering(bound_stage)
        stage_boundary("compact")

        # ---- stage 3: per-rank compaction + allgather of the remnant -----
        if check_cancel:
            checkpoint(deadline, "dist.peek.compact")

        def compact_stage() -> None:
            # Run the *real* distributed compaction kernels so the charged
            # communication is actual traffic, and cross-check the remnant
            # against the serial pipeline's.
            comp = result.compaction
            if comp is not None and result.prune is not None:
                from repro.distributed.dist_compact import (
                    distributed_edge_swap_ends,
                    distributed_regenerate,
                )

                pr = result.prune
                if comp.is_regenerated:
                    regen = distributed_regenerate(
                        fwd_part, pr.keep_vertices, pr.keep_edges, comm
                    )
                    assert regen.graph.num_edges == comp.remaining_edges
                else:
                    distributed_edge_swap_ends(
                        fwd_part, pr.keep_vertices, pr.keep_edges, comm
                    )

        recovering(compact_stage)
        stage_boundary("ksp")

        # ---- stage 4: two-level KSP over nodes × cores --------------------
        if check_cancel:
            checkpoint(deadline, "dist.peek.ksp")
        ksp_units = self._schedule_ksp(result)

        comm.report.serial_work += float(result.stats.total_work)
        return DistributedPeeKReport(
            result=result,
            comm=comm.report,
            ksp_units=ksp_units,
            edges_traversed=edges_traversed
            + result.stats.edges_relaxed
            + (result.prune.stats.edges_relaxed if result.prune else 0),
        )

    def _schedule_ksp(self, result: PeeKResult) -> float:
        """Outer tasks → nodes (LPT), inner SSSP → a node's cores."""
        cores = self.model.cores_per_node
        inner = cores / (1.0 + 0.35 * (cores - 1)) if cores > 1 else 1.0
        total = float(result.stats.init_work) / inner
        for tasks in result.stats.iteration_tasks:
            if not tasks:
                continue
            slots = [0.0] * min(self.num_nodes, len(tasks))
            heapq.heapify(slots)
            for w in sorted(tasks, reverse=True):
                earliest = heapq.heappop(slots)
                heapq.heappush(slots, earliest + w / inner)
            total += max(slots) + self.model.per_message  # iteration barrier
        for serial in result.stats.iteration_serial:
            total += serial
        return total


def distributed_peek(
    graph,
    source: int,
    target: int,
    k: int,
    num_nodes: int,
    *,
    deadline: float | None = None,
    **kwargs,
) -> DistributedPeeKReport:
    """Convenience wrapper: ``DistributedPeeK(...).run(k, deadline=...)``.

    Validates the query up front with the library-wide taxonomy, so the
    distributed entry rejects bad requests exactly like :func:`repro.solve`.
    """
    from repro.serve.query import Query, validate_query

    validate_query(graph, Query(source=source, target=target, k=k))
    return DistributedPeeK(graph, source, target, num_nodes, **kwargs).run(
        k, deadline=deadline
    )
