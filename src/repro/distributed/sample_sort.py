"""Distributed sample sort (paper §6.2: "we use a distributed sample sort
algorithm" to identify the K upper bound value).

Textbook three-round sample sort over :class:`SimComm`:

1. each rank sorts its local block and contributes ``num_ranks`` regular
   samples;
2. rank 0 sorts the gathered samples, picks ``num_ranks − 1`` splitters,
   broadcasts them;
3. each rank buckets its block by splitter (searchsorted), an ``alltoallv``
   exchanges the buckets, and each rank merges what it received.

The concatenation of the per-rank outputs equals ``np.sort`` of the input
(tested property), with all three communication rounds charged.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.comm import SimComm
from repro.errors import CommError

__all__ = ["distributed_sample_sort"]


def distributed_sample_sort(
    values: np.ndarray, comm: SimComm
) -> list[np.ndarray]:
    """Sort ``values`` across ``comm``'s ranks; returns per-rank sorted blocks.

    ``np.concatenate(result)`` is globally sorted.  The input is split into
    ``num_ranks`` nearly-equal blocks, mimicking data that already lives
    rank-local (the spSum slices in distributed PeeK).
    """
    values = np.asarray(values, dtype=np.float64)
    r = comm.num_ranks
    if values.size < r:
        raise CommError(
            f"cannot sample-sort {values.size} values across {r} ranks"
        )
    blocks = np.array_split(values, r)

    # round 1: local sorts + regular sampling
    local_sorted = []
    samples = []
    works = []
    for b in blocks:
        s = np.sort(b, kind="stable")
        local_sorted.append(s)
        idx = np.linspace(0, s.size - 1, r).astype(np.int64)
        samples.append(s[idx])
        works.append(int(b.size * max(np.log2(max(b.size, 2)), 1)))
    comm.compute(works)
    gathered = comm.allgather(samples, stage="dist.bound.sort.sample")

    # round 2: splitters on rank 0, broadcast
    all_samples = np.sort(np.concatenate(gathered), kind="stable")
    splitters = all_samples[
        np.arange(1, r) * all_samples.size // r
    ] if r > 1 else np.empty(0)
    comm.compute([int(all_samples.size)] + [1] * (r - 1))
    splitters = comm.bcast(splitters, root=0, stage="dist.bound.sort.splitters")

    # round 3: bucket exchange + local merges
    send: list[list[np.ndarray]] = []
    for s in local_sorted:
        bounds = np.searchsorted(s, splitters, side="left")
        bounds = np.concatenate(([0], bounds, [s.size]))
        send.append([s[bounds[j] : bounds[j + 1]] for j in range(r)])
    recv = comm.alltoallv(send, stage="dist.bound.sort.exchange")
    out: list[np.ndarray] = []
    merge_works = []
    for j in range(r):
        parts = [p for p in recv[j] if p.size]
        merged = (
            np.sort(np.concatenate(parts), kind="stable")
            if parts
            else np.empty(0, dtype=np.float64)
        )
        out.append(merged)
        merge_works.append(int(merged.size * max(np.log2(max(merged.size, 2)), 1)))
    comm.compute(merge_works)
    return out
