"""Distributed-memory substrate (paper §6.2, Figure 10).

mpi4py is unavailable offline, so the distributed design is reproduced with
a **simulated MPI communicator** (:class:`~repro.distributed.comm.SimComm`):
the per-rank algorithm code is real and runs for real — row-wise 1-D
partitioning, distributed Δ-stepping with owner-routed relaxation requests,
a distributed sample sort — and the communicator charges every message
through a BSP α/β cost model, so the Figure 10 scaling curves derive from
the *actual* communication volume of the actual algorithm on the actual
partition.  Results are bit-identical to the serial kernels (tested).
"""

from repro.distributed.comm import (
    CommModel,
    DistReport,
    FaultPlan,
    SimComm,
)
from repro.distributed.checkpoint import CheckpointStore
from repro.distributed.partition import RowPartition
from repro.distributed.dist_sssp import distributed_delta_stepping
from repro.distributed.sample_sort import distributed_sample_sort
from repro.distributed.supervisor import DistSupervisor, RecoveryConfig
from repro.distributed.dist_peek import DistributedPeeK, distributed_peek

__all__ = [
    "CommModel",
    "SimComm",
    "DistReport",
    "FaultPlan",
    "CheckpointStore",
    "DistSupervisor",
    "RecoveryConfig",
    "RowPartition",
    "distributed_delta_stepping",
    "distributed_sample_sort",
    "DistributedPeeK",
    "distributed_peek",
]
