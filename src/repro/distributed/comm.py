"""SimComm: a BSP-accounted stand-in for an MPI communicator.

The mpi4py idiom (see the HPC guide this repo follows) is buffer-based
collectives over NumPy arrays; :class:`SimComm` exposes the same collective
shapes — ``alltoallv``, ``allgather``, ``allreduce``, ``bcast`` — operating
on *lists indexed by rank* since all ranks live in one process.  Every call
moves the real data (algorithms depend on it) and charges simulated time
under the classic BSP/Hockney model:

    T_step = max_r(compute_r) + latency + per_message·msgs + per_byte·h

where ``h`` is the maximum bytes any rank sends or receives in the step.
Compute work is reported by the algorithm via :meth:`SimComm.compute`
(work units, same scale as the shared-memory simulator).

Fault injection
---------------
A seeded :class:`FaultPlan` (rank-scoped :class:`~repro.serve.faults.
FaultRule` entries, same stage-prefix grammar as the serve-layer
injector) kills chosen ranks at chosen collectives.  A dead rank raises
:class:`~repro.errors.RankFailure` at the next collective it
participates in — the way real MPI jobs observe node loss — and keeps
raising until :meth:`SimComm.revive` (normally called by the
:class:`~repro.distributed.supervisor.DistSupervisor` during recovery).
Every collective carries a ``stage`` label (``dist.sssp.route``,
``dist.compact.counts``, ...; the full namespace is tabulated in
``docs/serving.md``) so plans can target one phase of one algorithm.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import CommError, RankFailure
from repro.obs.tracer import get_tracer

__all__ = ["CommModel", "SimComm", "DistReport", "FaultPlan"]


@dataclass(frozen=True)
class CommModel:
    """BSP cost parameters, in work units (one unit ≈ one edge relaxation).

    Defaults approximate a commodity cluster where one network round trip
    costs as much as ~20k edge relaxations and each byte on the wire costs
    a fraction of a relaxation — the regime in which the paper's 1-D
    partitioned Δ-stepping scales to 64 nodes with visible but not fatal
    communication overhead.
    """

    latency: float = 20000.0
    per_message: float = 200.0
    per_byte: float = 0.05
    #: cores per computing node (paper: 16); intra-node work is divided by
    #: this with the shared-memory inner model before BSP accounting.
    cores_per_node: int = 16

    def step_cost(self, max_bytes: int, num_messages: int) -> float:
        return (
            self.latency
            + self.per_message * num_messages
            + self.per_byte * max_bytes
        )

    def scaled_for(
        self, graph_edges: int, reference_edges: float = 1.5e9
    ) -> "CommModel":
        """Rescale the comm constants for a scaled-down benchmark graph.

        The paper's graphs have ~1.5B edges; this reproduction runs ~10⁵–10⁶
        edge analogues.  Keeping hardware-realistic absolute constants on a
        graph 10³× smaller makes every run latency-bound and hides the
        scaling behaviour the experiment is about.  Dividing the constants
        by the size ratio keeps the *compute-to-communication ratio* of the
        paper's setting, which is the quantity the Figure 10 curves are
        sensitive to.  (See DESIGN.md §1 and EXPERIMENTS.md for discussion.)
        """
        ratio = max(reference_edges / max(graph_edges, 1), 1.0)
        return CommModel(
            latency=self.latency / ratio,
            per_message=self.per_message / ratio,
            per_byte=self.per_byte / ratio,
            cores_per_node=self.cores_per_node,
        )


@dataclass
class DistReport:
    """Accumulated accounting of one distributed run.

    ``compute_units``/``comm_units`` count only *useful* work: when a rank
    failure rolls the job back, the charges since the restore point are
    moved into ``wasted_units``, so a recovered run reports the same
    compute/comm as its failure-free twin and :attr:`time_units`
    decomposes simulated time exactly into
    ``compute + comm + checkpoint + recovery + wasted``.
    """

    num_ranks: int
    supersteps: int = 0
    compute_units: float = 0.0
    comm_units: float = 0.0
    total_bytes: int = 0
    total_messages: int = 0
    #: serial-equivalent work (sum over ranks) for speedup computation
    serial_work: float = 0.0
    #: rank failures observed (and recovered from) during the run
    failures: int = 0
    #: cost of writing superstep checkpoints (charged through CommModel)
    checkpoint_units: float = 0.0
    #: cost of restoring/recomputing state after failures
    recovery_units: float = 0.0
    #: compute+comm charged, then thrown away by a rollback
    wasted_units: float = 0.0
    #: checkpoint payload written across the run (all ranks)
    checkpoint_bytes: int = 0

    @property
    def time_units(self) -> float:
        return (
            self.compute_units
            + self.comm_units
            + self.checkpoint_units
            + self.recovery_units
            + self.wasted_units
        )

    @property
    def parallel_efficiency(self) -> float:
        if self.time_units <= 0:
            return 1.0
        return self.serial_work / (self.time_units * self.num_ranks)


class FaultPlan:
    """A seeded schedule of rank kills over collective stage labels.

    Rules are :class:`~repro.serve.faults.FaultRule` entries with
    ``kind="rankfail"``; ``stage`` matches collective labels exactly or by
    dotted prefix (``"dist.sssp"`` matches ``"dist.sssp.route"``), and the
    rule fires at its ``at_hit``-th matching collective.  ``at_hit=None``
    draws the firing visit — and ``rank=None`` the victim — from the
    plan's seeded RNG, so randomised kill campaigns are reproducible from
    the seed alone.  ``fired`` records ``(stage, rank, superstep)``.

    Rules may target a serving-fabric *replica* instead of a rank (the
    ``@R<N>`` spelling of the ``--inject`` grammar,
    :attr:`~repro.serve.faults.FaultRule.replica`).  ``replica_ranks``
    maps replica ids onto this communicator's ranks; the default is the
    identity mapping, which is exactly how
    :class:`~repro.fabric.ServingFabric` lays its replicas onto its own
    SimComm (replica ``i`` == rank ``i``).
    """

    def __init__(
        self,
        rules,
        *,
        seed: int | None = None,
        replica_ranks: dict[int, int] | None = None,
    ) -> None:
        self.rules = list(rules)
        self.replica_ranks = replica_ranks
        for r in self.rules:
            if r.kind != "rankfail":
                raise ValueError(
                    f"FaultPlan rules must have kind='rankfail', got {r.kind!r}"
                )
        self._rng = random.Random(seed)
        self.at_hits = [
            r.at_hit if r.at_hit is not None else self._rng.randint(1, r.max_hit)
            for r in self.rules
        ]
        self.hits = [0] * len(self.rules)
        self.fired: list[tuple[str, int, int]] = []

    @classmethod
    def from_specs(cls, specs, *, seed: int | None = None) -> "FaultPlan":
        """Build a plan from ``STAGE:rankfail[:AT_HIT][@RANK]`` strings."""
        from repro.serve.faults import parse_fault_spec

        return cls([parse_fault_spec(s) for s in specs], seed=seed)

    def poll(self, stage: str, num_ranks: int, superstep: int) -> list[int]:
        """Ranks killed at this collective (usually empty)."""
        victims: list[int] = []
        for i, rule in enumerate(self.rules):
            if not rule.matches(stage):
                continue
            self.hits[i] += 1
            first = self.at_hits[i]
            if first <= self.hits[i] < first + rule.times:
                rank = self._victim(rule, num_ranks)
                if rank is None:
                    continue  # rule targets a rank this job doesn't have
                victims.append(rank)
                self.fired.append((stage, rank, superstep))
        return victims

    def _victim(self, rule, num_ranks: int) -> int | None:
        """Resolve a firing rule to a rank (None = out of range, skip)."""
        if rule.rank is not None:
            rank = rule.rank
        elif getattr(rule, "replica", None) is not None:
            if self.replica_ranks is not None:
                rank = self.replica_ranks.get(rule.replica)
                if rank is None:
                    return None
            else:
                rank = rule.replica  # identity: replica i lives on rank i
        else:
            rank = self._rng.randrange(num_ranks)
        return rank if rank < num_ranks else None


class SimComm:
    """All ranks of one simulated MPI job.

    Collectives take and return lists of length ``num_ranks``.  The caller
    (the distributed algorithm) is the SPMD program: it loops over ranks to
    produce per-rank send data, calls a collective, then loops over ranks to
    consume the received data — the same structure an mpi4py program has,
    minus the process boundary.
    """

    def __init__(
        self,
        num_ranks: int,
        model: CommModel | None = None,
        *,
        race_detector=None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if num_ranks < 1:
            raise CommError("need at least one rank")
        self.num_ranks = num_ranks
        self.model = model or CommModel()
        self.report = DistReport(num_ranks=num_ranks)
        # optional repro.analysis.race.RaceDetector (duck-typed): every
        # collective is a barrier; ranks declare footprints in between
        if race_detector is not None and race_detector.num_tasks != num_ranks:
            raise CommError(
                f"race detector tracks {race_detector.num_tasks} tasks "
                f"but the communicator has {num_ranks} ranks"
            )
        self.race_detector = race_detector
        self.fault_plan = fault_plan
        #: ranks currently dead (killed by the plan or :meth:`kill`)
        self.dead: set[int] = set()
        #: cumulative inner-scaled compute per rank (recompute-recovery cost)
        self.per_rank_compute = [0.0] * num_ranks

    # ------------------------------------------------------------------
    # compute + superstep accounting
    # ------------------------------------------------------------------
    def compute(self, per_rank_work) -> None:
        """Charge one compute region: ranks work concurrently → max cost.

        ``per_rank_work`` is a length-``num_ranks`` sequence of work units.
        Intra-node parallelism (``cores_per_node``) is applied here with a
        simple 60%-efficiency inner model, matching the paper's mapping of
        the inner Δ-stepping level onto the cores of one node.
        """
        work = list(per_rank_work)
        if len(work) != self.num_ranks:
            raise CommError("per_rank_work must have one entry per rank")
        cores = self.model.cores_per_node
        # data-parallel within a node: mild sublinearity (memory bandwidth)
        inner = cores / (1.0 + 0.05 * (cores - 1)) if cores > 1 else 1.0
        self.report.compute_units += max(work) / inner if work else 0.0
        self.report.serial_work += float(sum(work))
        for r, w in enumerate(work):
            self.per_rank_compute[r] += w / inner

    def record_reads(self, rank: int, resources) -> None:
        """Declare resources ``rank`` reads in the current superstep."""
        if self.race_detector is not None:
            if not 0 <= rank < self.num_ranks:
                raise CommError(f"bad rank {rank}")
            self.race_detector.record_reads(rank, resources)

    def record_writes(self, rank: int, resources) -> None:
        """Declare resources ``rank`` writes in the current superstep."""
        if self.race_detector is not None:
            if not 0 <= rank < self.num_ranks:
                raise CommError(f"bad rank {rank}")
            self.race_detector.record_writes(rank, resources)

    def _charge(
        self, bytes_per_rank: list[int], msgs: int, stage: str = "dist.comm"
    ) -> None:
        self.report.supersteps += 1
        if self.race_detector is not None:
            # every collective synchronises all ranks — a happens-before join
            self.race_detector.barrier()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add("comm.supersteps")
        if self.num_ranks > 1:
            h = max(bytes_per_rank) if bytes_per_rank else 0
            self.report.comm_units += self.model.step_cost(h, msgs)
            self.report.total_bytes += int(sum(bytes_per_rank))
            self.report.total_messages += msgs
            if tracer.enabled:
                tracer.add("comm.messages", msgs)
                tracer.add("comm.bytes", int(sum(bytes_per_rank)))
        # the collective's cost is charged before the failure surfaces: a
        # superstep that dies still burned the time (rolled into wasted
        # units when a supervisor rolls the job back)
        if self.fault_plan is not None:
            for victim in self.fault_plan.poll(
                stage, self.num_ranks, self.report.supersteps
            ):
                self.dead.add(victim)
        if self.dead:
            raise RankFailure(
                min(self.dead),
                stage=stage,
                superstep=self.report.supersteps,
            )

    # ------------------------------------------------------------------
    # fault-tolerance hooks (used by repro.distributed.supervisor)
    # ------------------------------------------------------------------
    def kill(self, rank: int) -> None:
        """Mark ``rank`` dead: its next collective raises RankFailure."""
        if not 0 <= rank < self.num_ranks:
            raise CommError(f"bad rank {rank}")
        self.dead.add(rank)

    def revive(self, rank: int) -> None:
        """Bring a replacement for ``rank`` online (recovery complete)."""
        self.dead.discard(rank)

    def marker(self) -> dict:
        """Snapshot the rollback-able accounting state (a restore point)."""
        return {
            "report": replace(self.report),
            "per_rank_compute": list(self.per_rank_compute),
        }

    def rollback(self, marker: dict) -> float:
        """Discard charges since ``marker``; returns the wasted units.

        Base compute/comm accounting (and the byte/message/superstep
        counters) rewind to the marker so the replay re-charges them;
        the discarded compute+comm moves into ``wasted_units``.  The
        fault-tolerance fields themselves are never rolled back.
        """
        snap: DistReport = marker["report"]
        rep = self.report
        wasted = (rep.compute_units - snap.compute_units) + (
            rep.comm_units - snap.comm_units
        )
        rep.compute_units = snap.compute_units
        rep.comm_units = snap.comm_units
        rep.supersteps = snap.supersteps
        rep.total_bytes = snap.total_bytes
        rep.total_messages = snap.total_messages
        rep.serial_work = snap.serial_work
        rep.wasted_units += wasted
        self.per_rank_compute = list(marker["per_rank_compute"])
        return wasted

    def charge_checkpoint(self, bytes_per_rank: list[int]) -> float:
        """Charge one coordinated checkpoint write through the BSP model.

        All ranks write their snapshot concurrently to (simulated) stable
        storage: one latency plus the largest per-rank payload at the
        per-byte rate, the same Hockney form as a collective.
        """
        h = max(bytes_per_rank) if bytes_per_rank else 0
        cost = self.model.latency + self.model.per_byte * h
        self.report.checkpoint_units += cost
        self.report.checkpoint_bytes += int(sum(bytes_per_rank))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add("dist.checkpoint.writes")
            tracer.add("dist.checkpoint.bytes", int(sum(bytes_per_rank)))
        return cost

    def charge_recovery(self, units: float) -> None:
        """Charge recovery time (restore read or lost-rank recompute)."""
        self.report.recovery_units += float(units)

    @staticmethod
    def _nbytes(obj) -> int:
        if isinstance(obj, np.ndarray):
            return int(obj.nbytes)
        if isinstance(obj, (list, tuple)):
            return sum(SimComm._nbytes(o) for o in obj)
        return 8  # scalar

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def alltoallv(
        self, send: list[list], *, stage: str = "dist.comm.alltoallv"
    ) -> list[list]:
        """``send[i][j]`` goes from rank i to rank j; returns ``recv[j][i]``.

        The workhorse of distributed Δ-stepping: relaxation requests routed
        to owner ranks.  Charged as one superstep with up to R·(R−1) point
        messages (empty payloads send nothing).
        """
        r = self.num_ranks
        if len(send) != r or any(len(row) != r for row in send):
            raise CommError("alltoallv needs an RxR send matrix")
        recv: list[list] = [[send[i][j] for i in range(r)] for j in range(r)]
        out_bytes = [
            sum(self._nbytes(send[i][j]) for j in range(r) if j != i)
            for i in range(r)
        ]
        in_bytes = [
            sum(self._nbytes(send[i][j]) for i in range(r) if i != j)
            for j in range(r)
        ]
        msgs = sum(
            1
            for i in range(r)
            for j in range(r)
            if i != j and self._nbytes(send[i][j]) > 0
        )
        self._charge(
            [max(o, i_) for o, i_ in zip(out_bytes, in_bytes)], msgs, stage
        )
        return recv

    def allgather(
        self, contributions: list, *, stage: str = "dist.comm.allgather"
    ) -> list:
        """Every rank receives every rank's contribution (returned once)."""
        if len(contributions) != self.num_ranks:
            raise CommError("allgather needs one contribution per rank")
        total = sum(self._nbytes(c) for c in contributions)
        # butterfly allgather: each rank eventually holds `total` bytes
        self._charge([total] * self.num_ranks, 2 * (self.num_ranks - 1), stage)
        return list(contributions)

    def allreduce(self, values: list, op=min, *, stage: str = "dist.comm.allreduce"):
        """Reduce scalars from every rank; all ranks get the result."""
        if len(values) != self.num_ranks:
            raise CommError("allreduce needs one value per rank")
        self._charge([8] * self.num_ranks, 2 * (self.num_ranks - 1), stage)
        return op(values)

    def bcast(self, value, root: int = 0, *, stage: str = "dist.comm.bcast"):
        """Rank ``root`` sends ``value`` to everyone."""
        if not 0 <= root < self.num_ranks:
            raise CommError(f"bad root {root}")
        nb = self._nbytes(value)
        self._charge([nb] * self.num_ranks, self.num_ranks - 1, stage)
        return value

    def barrier(self, *, stage: str = "dist.comm.barrier") -> None:
        """Pure synchronisation superstep."""
        self._charge([0] * self.num_ranks, self.num_ranks - 1, stage)
