"""SimComm: a BSP-accounted stand-in for an MPI communicator.

The mpi4py idiom (see the HPC guide this repo follows) is buffer-based
collectives over NumPy arrays; :class:`SimComm` exposes the same collective
shapes — ``alltoallv``, ``allgather``, ``allreduce``, ``bcast`` — operating
on *lists indexed by rank* since all ranks live in one process.  Every call
moves the real data (algorithms depend on it) and charges simulated time
under the classic BSP/Hockney model:

    T_step = max_r(compute_r) + latency + per_message·msgs + per_byte·h

where ``h`` is the maximum bytes any rank sends or receives in the step.
Compute work is reported by the algorithm via :meth:`SimComm.compute`
(work units, same scale as the shared-memory simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CommError
from repro.obs.tracer import get_tracer

__all__ = ["CommModel", "SimComm", "DistReport"]


@dataclass(frozen=True)
class CommModel:
    """BSP cost parameters, in work units (one unit ≈ one edge relaxation).

    Defaults approximate a commodity cluster where one network round trip
    costs as much as ~20k edge relaxations and each byte on the wire costs
    a fraction of a relaxation — the regime in which the paper's 1-D
    partitioned Δ-stepping scales to 64 nodes with visible but not fatal
    communication overhead.
    """

    latency: float = 20000.0
    per_message: float = 200.0
    per_byte: float = 0.05
    #: cores per computing node (paper: 16); intra-node work is divided by
    #: this with the shared-memory inner model before BSP accounting.
    cores_per_node: int = 16

    def step_cost(self, max_bytes: int, num_messages: int) -> float:
        return (
            self.latency
            + self.per_message * num_messages
            + self.per_byte * max_bytes
        )

    def scaled_for(
        self, graph_edges: int, reference_edges: float = 1.5e9
    ) -> "CommModel":
        """Rescale the comm constants for a scaled-down benchmark graph.

        The paper's graphs have ~1.5B edges; this reproduction runs ~10⁵–10⁶
        edge analogues.  Keeping hardware-realistic absolute constants on a
        graph 10³× smaller makes every run latency-bound and hides the
        scaling behaviour the experiment is about.  Dividing the constants
        by the size ratio keeps the *compute-to-communication ratio* of the
        paper's setting, which is the quantity the Figure 10 curves are
        sensitive to.  (See DESIGN.md §1 and EXPERIMENTS.md for discussion.)
        """
        ratio = max(reference_edges / max(graph_edges, 1), 1.0)
        return CommModel(
            latency=self.latency / ratio,
            per_message=self.per_message / ratio,
            per_byte=self.per_byte / ratio,
            cores_per_node=self.cores_per_node,
        )


@dataclass
class DistReport:
    """Accumulated accounting of one distributed run."""

    num_ranks: int
    supersteps: int = 0
    compute_units: float = 0.0
    comm_units: float = 0.0
    total_bytes: int = 0
    total_messages: int = 0
    #: serial-equivalent work (sum over ranks) for speedup computation
    serial_work: float = 0.0

    @property
    def time_units(self) -> float:
        return self.compute_units + self.comm_units

    @property
    def parallel_efficiency(self) -> float:
        if self.time_units <= 0:
            return 1.0
        return self.serial_work / (self.time_units * self.num_ranks)


class SimComm:
    """All ranks of one simulated MPI job.

    Collectives take and return lists of length ``num_ranks``.  The caller
    (the distributed algorithm) is the SPMD program: it loops over ranks to
    produce per-rank send data, calls a collective, then loops over ranks to
    consume the received data — the same structure an mpi4py program has,
    minus the process boundary.
    """

    def __init__(
        self,
        num_ranks: int,
        model: CommModel | None = None,
        *,
        race_detector=None,
    ) -> None:
        if num_ranks < 1:
            raise CommError("need at least one rank")
        self.num_ranks = num_ranks
        self.model = model or CommModel()
        self.report = DistReport(num_ranks=num_ranks)
        # optional repro.analysis.race.RaceDetector (duck-typed): every
        # collective is a barrier; ranks declare footprints in between
        if race_detector is not None and race_detector.num_tasks != num_ranks:
            raise CommError(
                f"race detector tracks {race_detector.num_tasks} tasks "
                f"but the communicator has {num_ranks} ranks"
            )
        self.race_detector = race_detector

    # ------------------------------------------------------------------
    # compute + superstep accounting
    # ------------------------------------------------------------------
    def compute(self, per_rank_work) -> None:
        """Charge one compute region: ranks work concurrently → max cost.

        ``per_rank_work`` is a length-``num_ranks`` sequence of work units.
        Intra-node parallelism (``cores_per_node``) is applied here with a
        simple 60%-efficiency inner model, matching the paper's mapping of
        the inner Δ-stepping level onto the cores of one node.
        """
        work = list(per_rank_work)
        if len(work) != self.num_ranks:
            raise CommError("per_rank_work must have one entry per rank")
        cores = self.model.cores_per_node
        # data-parallel within a node: mild sublinearity (memory bandwidth)
        inner = cores / (1.0 + 0.05 * (cores - 1)) if cores > 1 else 1.0
        self.report.compute_units += max(work) / inner if work else 0.0
        self.report.serial_work += float(sum(work))

    def record_reads(self, rank: int, resources) -> None:
        """Declare resources ``rank`` reads in the current superstep."""
        if self.race_detector is not None:
            if not 0 <= rank < self.num_ranks:
                raise CommError(f"bad rank {rank}")
            self.race_detector.record_reads(rank, resources)

    def record_writes(self, rank: int, resources) -> None:
        """Declare resources ``rank`` writes in the current superstep."""
        if self.race_detector is not None:
            if not 0 <= rank < self.num_ranks:
                raise CommError(f"bad rank {rank}")
            self.race_detector.record_writes(rank, resources)

    def _charge(self, bytes_per_rank: list[int], msgs: int) -> None:
        self.report.supersteps += 1
        if self.race_detector is not None:
            # every collective synchronises all ranks — a happens-before join
            self.race_detector.barrier()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add("comm.supersteps")
        if self.num_ranks == 1:
            return  # a single rank never touches the network
        h = max(bytes_per_rank) if bytes_per_rank else 0
        self.report.comm_units += self.model.step_cost(h, msgs)
        self.report.total_bytes += int(sum(bytes_per_rank))
        self.report.total_messages += msgs
        if tracer.enabled:
            tracer.add("comm.messages", msgs)
            tracer.add("comm.bytes", int(sum(bytes_per_rank)))

    @staticmethod
    def _nbytes(obj) -> int:
        if isinstance(obj, np.ndarray):
            return int(obj.nbytes)
        if isinstance(obj, (list, tuple)):
            return sum(SimComm._nbytes(o) for o in obj)
        return 8  # scalar

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def alltoallv(self, send: list[list]) -> list[list]:
        """``send[i][j]`` goes from rank i to rank j; returns ``recv[j][i]``.

        The workhorse of distributed Δ-stepping: relaxation requests routed
        to owner ranks.  Charged as one superstep with up to R·(R−1) point
        messages (empty payloads send nothing).
        """
        r = self.num_ranks
        if len(send) != r or any(len(row) != r for row in send):
            raise CommError("alltoallv needs an RxR send matrix")
        recv: list[list] = [[send[i][j] for i in range(r)] for j in range(r)]
        out_bytes = [
            sum(self._nbytes(send[i][j]) for j in range(r) if j != i)
            for i in range(r)
        ]
        in_bytes = [
            sum(self._nbytes(send[i][j]) for i in range(r) if i != j)
            for j in range(r)
        ]
        msgs = sum(
            1
            for i in range(r)
            for j in range(r)
            if i != j and self._nbytes(send[i][j]) > 0
        )
        self._charge([max(o, i_) for o, i_ in zip(out_bytes, in_bytes)], msgs)
        return recv

    def allgather(self, contributions: list) -> list:
        """Every rank receives every rank's contribution (returned once)."""
        if len(contributions) != self.num_ranks:
            raise CommError("allgather needs one contribution per rank")
        total = sum(self._nbytes(c) for c in contributions)
        # butterfly allgather: each rank eventually holds `total` bytes
        self._charge([total] * self.num_ranks, 2 * (self.num_ranks - 1))
        return list(contributions)

    def allreduce(self, values: list, op=min):
        """Reduce scalars from every rank; all ranks get the result."""
        if len(values) != self.num_ranks:
            raise CommError("allreduce needs one value per rank")
        self._charge([8] * self.num_ranks, 2 * (self.num_ranks - 1))
        return op(values)

    def bcast(self, value, root: int = 0):
        """Rank ``root`` sends ``value`` to everyone."""
        if not 0 <= root < self.num_ranks:
            raise CommError(f"bad root {root}")
        nb = self._nbytes(value)
        self._charge([nb] * self.num_ranks, self.num_ranks - 1)
        return value

    def barrier(self) -> None:
        """Pure synchronisation superstep."""
        self._charge([0] * self.num_ranks, self.num_ranks - 1)
