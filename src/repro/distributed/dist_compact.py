"""Distributed graph compaction (paper §6.2).

"For adaptive graph compaction, we implement the distributed version of
edge swap-based and graph regeneration-based compaction techniques as both
are embarrassingly parallel tasks."

Under 1-D row partitioning each rank owns whole CSR rows, so:

* **edge swap** — every rank stable-partitions the segments of its own
  rows; no communication at all until the final barrier;
* **regeneration** — ranks count their surviving vertices/edges, one
  exclusive-scan (realised as an allgather of counts) assigns each rank
  its global id ranges, ranks build their renumbered row blocks locally,
  and an allgather concatenates the blocks into the remnant CSR every
  node needs for the KSP stage.

Both produce results **identical** to their serial counterparts in
:mod:`repro.core.compaction` (tested), with compute/communication charged
through :class:`~repro.distributed.comm.SimComm`.
"""

from __future__ import annotations

import numpy as np

from repro.core.compaction import RegeneratedGraph, _combined_edge_mask
from repro.distributed.comm import SimComm
from repro.distributed.partition import RowPartition
from repro.graph.csr import CSRGraph

__all__ = ["distributed_regenerate", "distributed_edge_swap_ends"]


def distributed_regenerate(
    partition: RowPartition,
    keep_vertices: np.ndarray,
    keep_edges: np.ndarray | None,
    comm: SimComm,
) -> RegeneratedGraph:
    """Regeneration compaction across ranks; equals the serial result.

    New vertex ids are assigned in ascending old-id order (as serially), so
    the output is bit-identical to
    :func:`repro.core.compaction.compact_regenerate`.
    """
    graph = partition.graph
    r = comm.num_ranks
    keep_vertices = np.asarray(keep_vertices, dtype=bool)
    live = _combined_edge_mask(graph, keep_vertices, keep_edges)
    src = graph.edge_sources()

    # round 1: each rank counts its surviving vertices and edges
    v_counts, e_counts, works = [], [], []
    for j in range(r):
        lo, hi = partition.local_range(j)
        elo, ehi = int(graph.indptr[lo]), int(graph.indptr[hi])
        v_counts.append(int(keep_vertices[lo:hi].sum()))
        e_counts.append(int(live[elo:ehi].sum()))
        works.append((hi - lo) + (ehi - elo))
    comm.compute(works)
    gathered_v = comm.allgather(
        [np.int64(c) for c in v_counts], stage="dist.compact.counts"
    )
    gathered_e = comm.allgather(
        [np.int64(c) for c in e_counts], stage="dist.compact.counts"
    )
    v_base = np.concatenate(([0], np.cumsum(gathered_v)))
    e_base = np.concatenate(([0], np.cumsum(gathered_e)))

    # round 2: every rank can compute the *global* old->new map for its
    # rows from its scan base; the full map is assembled for the shared
    # remnant (it is O(n) ints — the allgather below carries it)
    n = graph.num_vertices
    new_id = np.full(n, -1, dtype=np.int64)
    blocks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    works = []
    for j in range(r):
        lo, hi = partition.local_range(j)
        local_old = np.flatnonzero(keep_vertices[lo:hi]) + lo
        new_id[local_old] = v_base[j] + np.arange(local_old.size)
        works.append(int(local_old.size) + 1)
    comm.compute(works)
    comm.allgather(
        [np.empty(max(v_counts[j], 1), dtype=np.int64) for j in range(r)],
        stage="dist.compact.map",
    )

    works = []
    for j in range(r):
        lo, hi = partition.local_range(j)
        elo, ehi = int(graph.indptr[lo]), int(graph.indptr[hi])
        seg_live = live[elo:ehi]
        e_idx = np.flatnonzero(seg_live) + elo
        blocks.append(
            (
                new_id[src[e_idx]],
                new_id[graph.indices[e_idx]],
                graph.weights[e_idx],
            )
        )
        works.append(int(e_idx.size) + 1)
    comm.compute(works)
    comm.allgather(
        [b[0] for b in blocks], stage="dist.compact.blocks"
    )  # the remnant edge blocks

    new_src = np.concatenate([b[0] for b in blocks])
    new_dst = np.concatenate([b[1] for b in blocks])
    new_w = np.concatenate([b[2] for b in blocks])
    old_id = np.flatnonzero(keep_vertices).astype(np.int64)
    counts = np.bincount(new_src, minlength=old_id.size) if new_src.size else np.zeros(old_id.size, dtype=np.int64)
    indptr = np.zeros(old_id.size + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    sub = CSRGraph(indptr, new_dst, new_w, check=False)
    return RegeneratedGraph(graph=sub, new_id=new_id, old_id=old_id)


def distributed_edge_swap_ends(
    partition: RowPartition,
    keep_vertices: np.ndarray,
    keep_edges: np.ndarray | None,
    comm: SimComm,
) -> np.ndarray:
    """The edge-swap ``ends`` array computed rank-locally; equals serial.

    Each rank partitions only its own rows' segments — zero communication
    (one closing barrier), the textbook embarrassingly-parallel job.
    Returns the per-vertex live-edge segment ends; the swapped arrays
    themselves live in each rank's copy exactly as in
    :class:`repro.core.compaction.EdgeSwapView`.
    """
    graph = partition.graph
    r = comm.num_ranks
    keep_vertices = np.asarray(keep_vertices, dtype=bool)
    live = _combined_edge_mask(graph, keep_vertices, keep_edges)
    indptr = graph.indptr
    ends = indptr[:-1].copy()
    works = []
    for j in range(r):
        lo, hi = partition.local_range(j)
        elo, ehi = int(indptr[lo]), int(indptr[hi])
        seg_live = live[elo:ehi]
        live_cum0 = np.zeros(seg_live.size + 1, dtype=np.int64)
        np.cumsum(seg_live, out=live_cum0[1:])
        local_ptr = indptr[lo : hi + 1] - elo
        ends[lo:hi] = indptr[lo:hi] + (
            live_cum0[local_ptr[1:]] - live_cum0[local_ptr[:-1]]
        )
        works.append((ehi - elo) + (hi - lo) + 1)
    comm.compute(works)
    comm.barrier(stage="dist.compact.barrier")
    return ends
