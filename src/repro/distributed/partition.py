"""Row-wise 1-D graph partitioning (paper §6.2).

"We partition the graph using row-wise 1-d partitioning.  Though it is
simple, it is communication friendly and does not yield extra time for
pre-processing."  Each rank owns a contiguous vertex range plus the CSR
rows of those vertices.  Ranges are balanced by *edge* count (the paper's
shared-memory code balances partitions the same way), because scale-free
degree skew makes equal vertex counts badly imbalanced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph

__all__ = ["RowPartition"]


@dataclass
class RowPartition:
    """A 1-D row partition of a CSR graph.

    ``cuts`` has length ``num_ranks + 1``; rank ``r`` owns vertices
    ``[cuts[r], cuts[r+1])``.
    """

    graph: CSRGraph
    cuts: np.ndarray

    @classmethod
    def build(cls, graph: CSRGraph, num_ranks: int) -> "RowPartition":
        """Balance contiguous vertex ranges by edge count.

        Cut points are found by searching the CSR ``indptr`` (a prefix sum
        of degrees) for multiples of ``m / num_ranks`` — O(R log n), the
        "no extra pre-processing time" property the paper wants.
        """
        if num_ranks < 1:
            raise PartitionError("need at least one rank")
        n, m = graph.num_vertices, graph.num_edges
        if num_ranks > max(n, 1):
            raise PartitionError(
                f"{num_ranks} ranks for {n} vertices leaves ranks empty"
            )
        targets = np.linspace(0, m, num_ranks + 1)
        cuts = np.searchsorted(graph.indptr, targets, side="left").astype(np.int64)
        cuts[0] = 0
        cuts[-1] = n
        # enforce monotonicity when many empty-degree vertices collapse cuts
        for r in range(1, num_ranks + 1):
            cuts[r] = max(cuts[r], cuts[r - 1])
        return cls(graph=graph, cuts=cuts)

    @property
    def num_ranks(self) -> int:
        return int(self.cuts.size - 1)

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        """Owning rank of each vertex (vectorised searchsorted)."""
        return np.searchsorted(self.cuts, vertices, side="right") - 1

    def local_range(self, rank: int) -> tuple[int, int]:
        """The contiguous vertex range owned by ``rank``."""
        if not 0 <= rank < self.num_ranks:
            raise PartitionError(f"rank {rank} out of range")
        return int(self.cuts[rank]), int(self.cuts[rank + 1])

    def local_vertices(self, rank: int) -> np.ndarray:
        lo, hi = self.local_range(rank)
        return np.arange(lo, hi, dtype=np.int64)

    def local_edge_count(self, rank: int) -> int:
        lo, hi = self.local_range(rank)
        return int(self.graph.indptr[hi] - self.graph.indptr[lo])

    def edge_balance(self) -> float:
        """max/mean edge load across ranks (1.0 = perfect)."""
        loads = [self.local_edge_count(r) for r in range(self.num_ranks)]
        mean = sum(loads) / len(loads) if loads else 0
        return max(loads) / mean if mean else 1.0
