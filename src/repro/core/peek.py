"""PeeK — prune, compact, then compute KSP (the paper's full pipeline, §3).

The three stages map one-to-one onto the paper's Figure 2:

1. **K upper bound pruning** (:mod:`repro.core.pruning`) marks every vertex
   that cannot appear on any of the K shortest paths;
2. **adaptive graph compaction** (:mod:`repro.core.compaction`) turns that
   decision into a graph the downstream stage traverses cheaply;
3. **KSP computation** — the paper's customised OptYen: only the static
   reverse tree is used (no vertex colours); an express candidate that is
   simple needs no further work, otherwise one SSSP on the *remaining*
   graph repairs it.  Here that is exactly
   :class:`~repro.ksp.optyen.OptYenKSP` instantiated on the compacted graph.

Feature flags reproduce the paper's ablation (Figure 8): ``prune=False,
compact=False`` is the "Base" configuration (plain OptYen), ``prune=True,
compact=False`` is "Base + Pruning" (status-array masks, no compaction),
and the default is full PeeK.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.compaction import (
    CompactionResult,
    RegeneratedGraph,
    adaptive_compact,
    compact_status_array,
)
from repro.core.pruning import PruneResult, k_upper_bound_prune
from repro.errors import KSPError
from repro.ksp.base import KSPAlgorithm, KSPResult, KSPStats
from repro.ksp.optyen import OptYenKSP
from repro.obs.tracer import get_tracer
from repro.paths import Path

__all__ = ["PeeK", "PeeKResult", "peek_ksp"]


@dataclass
class PeeKResult(KSPResult):
    """A :class:`~repro.ksp.base.KSPResult` plus PeeK's stage artefacts."""

    prune: PruneResult | None = None
    compaction: CompactionResult | None = None
    ksp_stats: KSPStats | None = None

    @property
    def pruned_vertex_fraction(self) -> float:
        return self.prune.pruned_vertex_fraction if self.prune else 0.0


class PeeK(KSPAlgorithm):
    """The PeeK pipeline as a drop-in KSP algorithm.

    Parameters
    ----------
    graph, source, target:
        The query, on the *original* graph with original vertex ids.
    alpha:
        Adaptive-compaction threshold (§5.4); regeneration is chosen when
        the remaining edges are fewer than ``alpha * m``.
    prune, compact:
        Ablation switches (Figure 8).  ``compact=False`` with pruning on
        uses the paper's status-array fallback.
    kernel:
        SSSP kernel for the pruning stage: ``"delta"`` or ``"dijkstra"``.
    sssp_backend:
        Δ-stepping execution backend for the pruning SSSPs (``"scalar"``,
        ``"vectorized"``, or ``"mp"``); bitwise-equivalent, purely a
        performance knob.  Ignored when ``kernel="dijkstra"``.
    strong_edge_prune:
        Enable the edge-level Lemma-4.2 extension (see
        :func:`~repro.core.pruning.k_upper_bound_prune`).
    compaction_force:
        Pin one compaction strategy regardless of the α rule (benchmarks).
    use_workspace:
        Let the inner KSP stage reuse one epoch-stamped SSSP workspace
        across all of its spur searches (default; see
        :mod:`repro.sssp.workspace`).  ``False`` restores fresh-allocation
        searches — the benchmark baseline.  Either way the paths are
        identical; the workspace binds to whatever graph the compaction
        stage produced, so the two optimisations compose.

    Notes
    -----
    Unlike the other algorithms, PeeK needs K *before* any path can be
    produced (the prune bound depends on it), so use :meth:`run`; calling
    :meth:`iter_paths` first requires :meth:`prepare`.
    """

    name = "PeeK"

    def __init__(
        self,
        graph,
        source: int,
        target: int,
        *,
        alpha: float = 0.1,
        prune: bool = True,
        compact: bool = True,
        kernel: str = "delta",
        sssp_backend: str = "vectorized",
        strong_edge_prune: bool = False,
        compaction_force: str | None = None,
        deadline: float | None = None,
        use_workspace: bool = True,
    ) -> None:
        super().__init__(graph, source, target, deadline=deadline)
        self.alpha = alpha
        self.enable_prune = prune
        self.enable_compact = compact
        self.kernel = kernel
        self.sssp_backend = sssp_backend
        self.strong_edge_prune = strong_edge_prune
        self.compaction_force = compaction_force
        self.use_workspace = use_workspace
        self._prepared_k: int | None = None
        self._inner: OptYenKSP | None = None
        self._regen: RegeneratedGraph | None = None
        self.prune_result: PruneResult | None = None
        self.compaction_result: CompactionResult | None = None

    # ------------------------------------------------------------------
    def prepare(self, k: int) -> None:
        """Run stages 1–2 for a given K and build the inner KSP solver."""
        if k < 1:
            raise ValueError("k must be >= 1")
        self._prepared_k = k
        self._regen = None
        self.prune_result = None
        self.compaction_result = None

        if not self.enable_prune:
            # Base configuration: plain OptYen on the original graph.
            self._inner = OptYenKSP(
                self.graph,
                self.source,
                self.target,
                deadline=self.deadline,
                use_workspace=self.use_workspace,
            )
            return

        tracer = get_tracer()
        with tracer.span("prune", k=k, kernel=self.kernel) as span:
            pr = k_upper_bound_prune(
                self.graph,
                self.source,
                self.target,
                k,
                kernel=self.kernel,
                sssp_backend=self.sssp_backend,
                strong_edge_prune=self.strong_edge_prune,
                deadline=self.deadline,
            )
            if tracer.enabled:
                span.add("prune.inspected_paths", pr.stats.inspected_paths)
                span.add("prune.inspected_invalid", pr.stats.inspected_invalid)
                span.set_gauge(
                    "prune.pruned_vertex_fraction", pr.pruned_vertex_fraction
                )
                span.set_gauge("prune.bound", pr.bound)
        self.prune_result = pr

        with tracer.span("compact") as span:
            if self.enable_compact:
                comp = adaptive_compact(
                    self.graph,
                    pr.keep_vertices,
                    pr.keep_edges,
                    alpha=self.alpha,
                    force=self.compaction_force,
                    deadline=self.deadline,
                )
            else:
                # "Base + Pruning" ablation: original CSR + status arrays.
                view = compact_status_array(
                    self.graph, pr.keep_vertices, pr.keep_edges
                )
                comp = CompactionResult(
                    strategy="status-array",
                    compacted=view,
                    remaining_vertices=int(pr.keep_vertices.sum()),
                    remaining_edges=view.num_edges,
                    original_edges=self.graph.num_edges,
                    build_work=self.graph.num_vertices + self.graph.num_edges,
                )
            if tracer.enabled:
                span.attrs["strategy"] = comp.strategy
                span.add("compact.build_work", comp.build_work)
                span.set_gauge("compact.remaining_edges", comp.remaining_edges)
                span.set_gauge(
                    "compact.remaining_vertices", comp.remaining_vertices
                )
        self.compaction_result = comp

        if isinstance(comp.compacted, RegeneratedGraph):
            self._regen = comp.compacted
            src = self._regen.map_vertex(self.source)
            tgt = self._regen.map_vertex(self.target)
            inner_graph = self._regen.graph
        else:
            src, tgt = self.source, self.target
            inner_graph = comp.compacted
        self._inner = OptYenKSP(
            inner_graph,
            src,
            tgt,
            deadline=self.deadline,
            use_workspace=self.use_workspace,
        )

    def iter_paths(self):
        """Yield paths from the prepared pipeline (original vertex ids).

        Only the first ``prepared_k`` paths are guaranteed correct — beyond
        that the prune bound no longer covers the enumeration (Theorem 4.3
        is a statement about the top K).  Iteration therefore stops at K.
        """
        if self._inner is None or self._prepared_k is None:
            raise KSPError("PeeK.iter_paths requires prepare(k) first")
        produced = 0
        for path in self._inner.iter_paths():
            if self._regen is not None:
                path = Path(
                    distance=path.distance,
                    vertices=self._regen.map_path_back(path.vertices),
                )
            yield path
            produced += 1
            if produced >= self._prepared_k:
                return

    def run(self, k: int) -> PeeKResult:
        """Full pipeline: prune for K, compact, compute the K paths.

        Under an enabled tracer this emits a ``peek`` span with the three
        nested stage spans — ``prune`` / ``compact`` / ``ksp`` — carrying
        the per-stage counters (see ``docs/observability.md``).
        """
        tracer = get_tracer()
        with tracer.span("peek", algorithm="PeeK", k=k):
            self.prepare(k)
            assert self._inner is not None
            paths = []
            with tracer.span("ksp", algorithm=self._inner.name, k=k) as span:
                for path in self.iter_paths():
                    paths.append(path)
                    if len(paths) == k:
                        break
                if tracer.enabled:
                    self._inner._emit_obs(span)
            self.stats = self._inner.stats  # expose KSP-stage counters
        return PeeKResult(
            paths=paths,
            k_requested=k,
            stats=self._inner.stats,
            prune=self.prune_result,
            compaction=self.compaction_result,
            ksp_stats=self._inner.stats,
        )


def peek_ksp(graph, source: int, target: int, k: int, **kwargs) -> PeeKResult:
    """Thin alias for :func:`repro.solve` with ``algorithm="PeeK"``."""
    from repro.api import solve

    return solve(graph, source, target, k, algorithm="PeeK", **kwargs)
