"""Pruning as a preprocessing stage for *any* KSP algorithm (novelty iii).

The paper's third novelty claim: "PeeK can integrate with existing KSP
algorithms to boost their performance.  In particular, K upper bound
pruning can serve as a preprocessing step for existing algorithms."

:class:`PrunedKSP` is that claim as code: it runs Algorithm 2 and the
adaptive compaction, then hands the remnant to any algorithm from the
registry (Yen, NC, OptYen, SB, SB*, PNC...), translating vertex ids back
when the compaction regenerated.  Theorem 4.3 guarantees the result is
unchanged; the ``bench_integration.py`` benchmark measures the boost each
baseline gets.
"""

from __future__ import annotations

from repro.core.compaction import RegeneratedGraph, adaptive_compact
from repro.core.pruning import k_upper_bound_prune
from repro.errors import KSPError
from repro.ksp.base import KSPAlgorithm, KSPResult
from repro.ksp.registry import ALGORITHMS, make_algorithm
from repro.paths import Path

__all__ = ["PrunedKSP", "pruned_ksp"]


class PrunedKSP(KSPAlgorithm):
    """K-upper-bound pruning + compaction in front of a registry algorithm.

    Parameters
    ----------
    inner:
        Registry name of the algorithm to accelerate ("Yen", "NC", "SB*",
        ...).  Asking for "PeeK" is rejected — that would prune twice.
    alpha, kernel, strong_edge_prune:
        Forwarded to the pruning/compaction stages, as in
        :class:`~repro.core.peek.PeeK`.
    """

    def __init__(
        self,
        graph,
        source: int,
        target: int,
        *,
        inner: str = "SB*",
        alpha: float = 0.1,
        kernel: str = "delta",
        strong_edge_prune: bool = False,
        deadline: float | None = None,
    ) -> None:
        super().__init__(graph, source, target, deadline=deadline)
        if inner == "PeeK":
            raise KSPError("PrunedKSP('PeeK') would prune twice; use PeeK")
        if inner not in ALGORITHMS:
            raise KeyError(
                f"unknown inner algorithm {inner!r}; "
                f"choose from {sorted(set(ALGORITHMS) - {'PeeK'})}"
            )
        self.inner_name = inner
        self.name = f"Pruned-{inner}"
        self.alpha = alpha
        self.kernel = kernel
        self.strong_edge_prune = strong_edge_prune
        self.prune_result = None
        self.compaction_result = None

    def run(self, k: int) -> KSPResult:
        if k < 1:
            raise ValueError("k must be >= 1")
        pr = k_upper_bound_prune(
            self.graph,
            self.source,
            self.target,
            k,
            kernel=self.kernel,
            strong_edge_prune=self.strong_edge_prune,
        )
        self.prune_result = pr
        comp = adaptive_compact(
            self.graph, pr.keep_vertices, pr.keep_edges, alpha=self.alpha
        )
        self.compaction_result = comp

        if isinstance(comp.compacted, RegeneratedGraph):
            regen = comp.compacted
            inner = make_algorithm(
                self.inner_name,
                regen.graph,
                regen.map_vertex(self.source),
                regen.map_vertex(self.target),
                deadline=self.deadline,
            )
            result = inner.run(k)
            result.paths = [
                Path(
                    distance=p.distance,
                    vertices=regen.map_path_back(p.vertices),
                )
                for p in result.paths
            ]
        else:
            inner = make_algorithm(
                self.inner_name,
                comp.compacted,
                self.source,
                self.target,
                deadline=self.deadline,
            )
            result = inner.run(k)
        self.stats = result.stats
        return result


def pruned_ksp(
    graph, source: int, target: int, k: int, *, inner: str = "SB*", **kwargs
) -> KSPResult:
    """Convenience wrapper: ``PrunedKSP(graph, s, t, inner=...).run(k)``."""
    return PrunedKSP(graph, source, target, inner=inner, **kwargs).run(k)
