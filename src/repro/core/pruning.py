"""K upper bound pruning — Algorithm 2, the paper's key contribution.

Given (G, s, t, K):

1. run a forward SSSP from ``s`` and a reverse SSSP from ``t``
   (Δ-stepping, as the paper's parallel design prescribes);
2. ``spSum[v] = spSrc[v] + spTgt[v]`` — the shortest s→t distance through
   ``v`` (Lemma 4.1: a lower bound when the combined path is not simple);
3. scan vertices in increasing ``spSum``, counting *valid, unique* combined
   paths until K are found; the K-th distance is the upper bound ``b``;
4. prune every vertex with ``spSum[v] > b`` (Lemma 4.2) and every edge with
   weight ``> b``.

Theorem 4.3 (tested property): the K shortest simple paths of the pruned
graph equal those of the original graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cancel import SCAN_CHECK_INTERVAL, cancellation_active, checkpoint
from repro.core.validation import combined_path, validate_combined_path
from repro.errors import KSPError, UnreachableTargetError, VertexError
from repro.paths import INF
from repro.sssp.delta_stepping import delta_stepping
from repro.sssp.dijkstra import dijkstra

__all__ = [
    "PruneStats",
    "PruneResult",
    "bound_and_masks",
    "k_upper_bound_prune",
    "prune_reuse_certificate",
]


@dataclass
class PruneStats:
    """Work accounting for one pruning run, per parallel job class (Fig 7).

    ``sssp_phase_work`` concatenates the two Δ-stepping phase logs (data
    parallel); ``sort_work``/``sum_work`` are the O(n log n)/O(n) bulk
    passes (data parallel); ``validation_work`` is the combined length of
    all inspected paths (embarrassingly parallel, per the paper's hash-table
    design); ``inspected_invalid`` is the paper's λ.
    """

    sssp_phase_work: list[int] = field(default_factory=list)
    sum_work: int = 0
    sort_work: int = 0
    validation_work: int = 0
    prune_scan_work: int = 0
    inspected_paths: int = 0
    inspected_invalid: int = 0
    edges_relaxed: int = 0
    vertices_settled: int = 0

    @property
    def total_work(self) -> int:
        return (
            self.edges_relaxed
            + self.vertices_settled
            + self.sum_work
            + self.sort_work
            + self.validation_work
            + self.prune_scan_work
        )


@dataclass
class PruneResult:
    """Everything downstream stages need from a pruning run."""

    #: the estimated K upper bound ``b`` (``inf`` when fewer than K valid
    #: combined paths exist — pruning then only removes unreachable parts)
    bound: float
    #: ``bool[n]`` — vertices that survive (``spSum <= b``)
    keep_vertices: np.ndarray
    #: ``bool[m]`` — edges that survive the weight rule (``w <= b``)
    keep_edges: np.ndarray
    #: forward / reverse shortest distances (the paper's spSrc / spTgt)
    dist_src: np.ndarray
    dist_tgt: np.ndarray
    #: forward / reverse parent arrays (paper's parentSrc / parentTgt)
    parent_src: np.ndarray
    parent_tgt: np.ndarray
    #: spSum[v] = spSrc[v] + spTgt[v]
    sp_sum: np.ndarray
    stats: PruneStats = field(default_factory=PruneStats)

    @property
    def num_kept_vertices(self) -> int:
        return int(self.keep_vertices.sum())

    @property
    def pruned_vertex_fraction(self) -> float:
        """Fraction of vertices removed — the paper's Figure 4 metric."""
        n = self.keep_vertices.size
        return 1.0 - self.num_kept_vertices / n if n else 0.0

    def pruned_edge_fraction(self, graph) -> float:
        """Fraction of edges removed (endpoint-pruned or overweight)."""
        m = graph.num_edges
        if m == 0:
            return 0.0
        live = (
            self.keep_edges
            & self.keep_vertices[graph.edge_sources()]
            & self.keep_vertices[graph.indices]
        )
        return 1.0 - float(live.sum()) / m


def bound_and_masks(
    fwd,
    rev,
    source: int,
    target: int,
    k: int,
    *,
    graph,
    strong_edge_prune: bool = False,
    stats: PruneStats | None = None,
    deadline: float | None = None,
) -> PruneResult:
    """Algorithm 2 steps 2–3 over pre-computed SSSP halves.

    This is the single implementation of the spSum scan and the pruning
    masks, shared by :func:`k_upper_bound_prune` (which runs the two SSSPs
    itself) and :class:`~repro.core.batch.BatchPeeK` (which memoises them
    across queries).

    Parameters
    ----------
    fwd, rev:
        Forward SSSP from ``source`` and reverse SSSP toward ``target``
        (any object with ``dist``/``parent`` arrays over ``graph``'s
        vertex space).
    graph:
        The graph the SSSPs were computed on; supplies the edge arrays for
        the weight-rule (and optional strong) edge mask.
    strong_edge_prune:
        The edge-level Lemma-4.2 extension (see
        :func:`k_upper_bound_prune`).
    stats:
        Fold the scan's work accounting into an existing
        :class:`PruneStats` (e.g. one already carrying SSSP counters);
        a fresh one is created when omitted.
    deadline:
        Absolute ``time.perf_counter()`` value; the scan checks it every
        :data:`repro.cancel.SCAN_CHECK_INTERVAL` inspected vertices and
        raises :class:`~repro.errors.KSPTimeout`.
    """
    n = graph.num_vertices
    if stats is None:
        stats = PruneStats()
    check_cancel = cancellation_active(deadline)

    # ---- Step 2: spSum and the K upper bound -----------------------------
    sp_sum = fwd.dist + rev.dist  # inf propagates for unreachable vertices
    stats.sum_work = n

    finite = np.flatnonzero(np.isfinite(sp_sum))
    order = finite[np.argsort(sp_sum[finite], kind="stable")]
    stats.sort_work = int(order.size * max(int(np.log2(max(order.size, 2))), 1))

    bound = INF
    seen_paths: set[tuple[int, ...]] = set()
    inspected = 0
    for v in order.tolist():
        inspected += 1
        if check_cancel and inspected % SCAN_CHECK_INTERVAL == 1:
            checkpoint(deadline, "prune.scan")  # fires on the first inspection
        src_tgt = combined_path(fwd.parent, rev.parent, source, target, v)
        if src_tgt is None:  # pragma: no cover - finite spSum implies trees exist
            continue
        src_path, tgt_path = src_tgt
        stats.validation_work += len(src_path) + len(tgt_path)
        valid, full = validate_combined_path(src_path, tgt_path)
        stats.inspected_paths += 1
        if not valid:
            stats.inspected_invalid += 1
            continue
        if full in seen_paths:
            continue
        seen_paths.add(full)
        if len(seen_paths) == k:
            bound = float(sp_sum[v])
            break
    # Fewer than K valid combined paths: the scan proved nothing beyond
    # reachability, so b stays inf and only disconnected vertices fall.

    # ---- Step 3: prune ----------------------------------------------------
    # Distances on both sides of the comparison are sums of the same weights
    # in different orders, so they can disagree by a few ulp.  Keeping a
    # hair more than the exact bound is always sound (pruning less can never
    # violate Theorem 4.3); pruning a vertex that is exactly *at* the bound
    # would drop a K-th path.
    if check_cancel:
        checkpoint(deadline, "prune.masks")
    slack = bound * 1e-9 if np.isfinite(bound) else 0.0
    threshold = bound + slack
    keep_vertices = np.zeros(n, dtype=bool)
    keep_vertices[finite] = sp_sum[finite] <= threshold
    keep_edges = graph.weights <= threshold
    if strong_edge_prune:
        src_of_edge = graph.edge_sources()
        through = fwd.dist[src_of_edge] + graph.weights + rev.dist[graph.indices]
        keep_edges &= ~(through > threshold)  # inf+inf stays inf; > is NaN-safe
    stats.prune_scan_work = n + graph.num_edges

    return PruneResult(
        bound=bound,
        keep_vertices=keep_vertices,
        keep_edges=keep_edges,
        dist_src=fwd.dist,
        dist_tgt=rev.dist,
        parent_src=fwd.parent,
        parent_tgt=rev.parent,
        sp_sum=sp_sum,
        stats=stats,
    )


def prune_reuse_certificate(prune: PruneResult, summary) -> bool:
    """Can ``prune`` survive the mutation batch described by ``summary``?

    The Yamane–Kitajima-style reuse argument (PAPERS.md): if a batch is
    weight-increase-only (no effective inserts, no effective decreases)
    and every removed/increased edge and every tombstoned vertex lies
    *outside* the kept region, then

    * distances of kept vertices are unchanged — every shortest path to a
      kept vertex runs entirely through kept vertices over edges at most
      the threshold (the spSum triangle argument of Lemma 4.2), and
      increase-only mutations cannot create shorter paths;
    * hence ``sp_sum`` over kept vertices, the spSum scan, the K upper
      bound ``b``, ``keep_vertices``, and the compacted graph are all
      identical to what a cold re-prune on the new snapshot would
      produce — reusing the cached compaction yields bitwise-identical
      K shortest paths (ties aside, which are measure-zero for the
      float-weighted graphs this repo generates; SAN-DYN audits the
      equality at runtime when sanitizers are on).

    "Outside the kept region" is evaluated against the same slack-widened
    threshold :func:`bound_and_masks` used to build the masks, so an edge
    exactly at the bound counts as inside (conservative).  Returns
    ``False`` whenever reuse cannot be *proved* — a cold re-solve is
    always sound.
    """
    if summary.has_insert or summary.has_decrease:
        return False
    keep = prune.keep_vertices
    if summary.tombstoned.size and keep[summary.tombstoned].any():
        return False
    if summary.up_src.size:
        slack = prune.bound * 1e-9 if np.isfinite(prune.bound) else 0.0
        threshold = prune.bound + slack
        inside = (
            keep[summary.up_src]
            & keep[summary.up_dst]
            & (summary.up_old_w <= threshold)
        )
        if inside.any():
            return False
    return True


def k_upper_bound_prune(
    graph,
    source: int,
    target: int,
    k: int,
    *,
    kernel: str = "delta",
    sssp_backend: str = "vectorized",
    strong_edge_prune: bool = False,
    deadline: float | None = None,
) -> PruneResult:
    """Run Algorithm 2 and return the pruning decision.

    Parameters
    ----------
    kernel:
        ``"delta"`` (paper's choice; emits the parallel phase log) or
        ``"dijkstra"`` (faster serially on small remaining graphs).
    sssp_backend:
        Execution backend for the Δ-stepping kernel (``"scalar"``,
        ``"vectorized"``, or ``"mp"``; see
        :func:`~repro.sssp.delta_stepping.delta_stepping`).  All backends
        are bitwise-equivalent, so this is purely a performance knob.
        Ignored when ``kernel="dijkstra"``.
    strong_edge_prune:
        Library extension beyond the paper's weight rule: additionally drop
        every edge ``(u, v)`` with ``spSrc[u] + w + spTgt[v] > b`` — the
        edge-level analogue of Lemma 4.2, sound by the same argument.  Off
        by default to match the paper; the ablation benchmark measures it.
    deadline:
        Absolute ``time.perf_counter()`` value threaded into the SSSP
        kernels and the spSum scan; exceeding it raises
        :class:`~repro.errors.KSPTimeout` at the next checkpoint.

    Raises
    ------
    UnreachableTargetError
        When no s→t path exists (the paper samples only reachable pairs).
    KSPError
        When ``source == target`` — a KSP query needs distinct endpoints
        (the library-wide rule; see ``docs/serving.md``).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise VertexError(f"source {source} out of range [0, {n})")
    if not 0 <= target < n:
        raise VertexError(f"target {target} out of range [0, {n})")
    if source == target:
        raise KSPError("source and target must differ for a KSP query")
    if k < 1:
        raise ValueError("k must be >= 1")

    stats = PruneStats()

    # ---- Step 1: the two SSSPs -------------------------------------------
    if kernel == "delta":
        fwd = delta_stepping(
            graph, source, deadline=deadline, backend=sssp_backend
        )
        rev = delta_stepping(
            graph.reverse(), target, deadline=deadline, backend=sssp_backend
        )
        stats.sssp_phase_work = list(fwd.stats.phase_work) + list(
            rev.stats.phase_work
        )
    elif kernel == "dijkstra":
        fwd = dijkstra(graph, source, deadline=deadline)
        rev = dijkstra(graph.reverse(), target, deadline=deadline)
    else:
        raise ValueError(f"unknown SSSP kernel {kernel!r}")
    for r in (fwd, rev):
        stats.edges_relaxed += r.stats.edges_relaxed
        stats.vertices_settled += r.stats.vertices_settled

    if not np.isfinite(fwd.dist[target]):
        raise UnreachableTargetError(
            f"target {target} unreachable from {source}"
        )

    return bound_and_masks(
        fwd,
        rev,
        source,
        target,
        k,
        graph=graph,
        strong_edge_prune=strong_edge_prune,
        stats=stats,
        deadline=deadline,
    )
