"""Combined-path validity check (paper §4.1, Figure 3(e)).

A vertex ``v``'s *combined path* is its forward-tree path s→v glued to its
reverse-tree path v→t.  The two subpaths are individually shortest but may
intersect (the paper's example: vertex ``i`` whose source path is s→f→j→i
and target path i→j→t — ``j`` repeats).  The K-upper-bound scan must count
only valid (simple) combined paths, so this check runs for every inspected
vertex; the paper makes it O(length) with a hash table, which is exactly a
Python ``set`` here.
"""

from __future__ import annotations

import numpy as np

__all__ = ["combined_path", "validate_combined_path"]


def combined_path(
    parent_src: np.ndarray,
    parent_tgt: np.ndarray,
    source: int,
    target: int,
    v: int,
) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
    """The (source-subpath, target-subpath) through ``v``; None if detached.

    ``parent_src`` is a forward-SSSP parent array (``parent[source] ==
    source``); ``parent_tgt`` is a reverse-SSSP parent array whose entries
    point at the *next hop toward the target*.  Both subpaths include ``v``
    itself.
    """
    n = parent_src.size
    # backtrack s→v
    if v != source and parent_src[v] < 0:
        return None
    src_path = [int(v)]
    while src_path[-1] != source:
        nxt = int(parent_src[src_path[-1]])
        if nxt < 0 or len(src_path) > n:
            return None
        src_path.append(nxt)
    src_path.reverse()
    # walk v→t
    if v != target and parent_tgt[v] < 0:
        return None
    tgt_path = [int(v)]
    while tgt_path[-1] != target:
        nxt = int(parent_tgt[tgt_path[-1]])
        if nxt < 0 or len(tgt_path) > n:
            return None
        tgt_path.append(nxt)
    return tuple(src_path), tuple(tgt_path)


def validate_combined_path(
    src_path: tuple[int, ...], tgt_path: tuple[int, ...]
) -> tuple[bool, tuple[int, ...]]:
    """Is the glued path simple?  Returns ``(valid, full_path)``.

    ``v`` (the shared endpoint) appears once in the result.  The membership
    test is the paper's hash-table strategy: build a set from the source
    subpath, probe every target-subpath vertex in O(1).
    """
    seen = set(src_path)
    for u in tgt_path[1:]:
        if u in seen:
            return False, src_path + tgt_path[1:]
    return True, src_path + tgt_path[1:]
