"""Adaptive graph compaction (paper §5).

Pruning marks vertices and edges dead; something must make the downstream
KSP not pay for them.  The paper compares three strategies, all implemented
here behind the common adjacency-array traversal protocol so the *same*
SSSP/KSP kernels run on any of them:

* **status array** (baseline, §5.4/Fig 6): keep the original CSR, carry a
  per-edge liveness mask that every traversal must test.  Cheapest to
  build, slowest to traverse.
* **edge swap** (§5.2): per vertex, two-pointer-swap the dead edges to the
  tail of its CSR segment and shrink the segment end.  The arrays keep
  their original size, but traversal touches only live edges.
* **regeneration** (§5.3): build a brand-new CSR over the surviving
  vertices with renumbered ids.  Most expensive to build, fastest and most
  cache-friendly to traverse.

The **adaptive** rule (§5.4) regenerates when the remaining edge count is
below ``α · m`` and edge-swaps otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cancel import cancellation_active, checkpoint, now
from repro.errors import GraphFormatError, VertexError
from repro.graph.csr import CSRGraph

__all__ = [
    "StatusArrayView",
    "EdgeSwapView",
    "RegeneratedGraph",
    "CompactionResult",
    "compact_status_array",
    "compact_edge_swap",
    "compact_regenerate",
    "adaptive_compact",
]


def _combined_edge_mask(
    base: CSRGraph, keep_vertices: np.ndarray, keep_edges: np.ndarray | None
) -> np.ndarray:
    """An edge survives iff it is kept and both endpoints are kept."""
    live = keep_vertices[base.edge_sources()] & keep_vertices[base.indices]
    if keep_edges is not None:
        live &= keep_edges
    return live


class _CompactViewBase:
    """Shared surface so views are drop-in graph substitutes for the kernels."""

    base: CSRGraph

    @property
    def num_vertices(self) -> int:
        return self.base.num_vertices

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise VertexError(f"vertex {v} out of range [0, {self.num_vertices})")

    def edge_weight(self, u: int, v: int) -> float | None:
        targets, weights = self.neighbors(u)
        mask = targets == v
        if not np.any(mask):
            return None
        return float(weights[mask].min())

    # subclasses provide: adjacency_arrays, neighbors, reverse, num_edges


class StatusArrayView(_CompactViewBase):
    """The paper's baseline: original CSR + per-edge liveness mask.

    Every kernel traversal pays one mask lookup per edge, dead or alive —
    the redundant work Figure 6's "Status array" series measures.
    """

    def __init__(
        self,
        base: CSRGraph,
        keep_vertices: np.ndarray,
        keep_edges: np.ndarray | None = None,
    ) -> None:
        keep_vertices = np.asarray(keep_vertices, dtype=bool)
        if keep_vertices.size != base.num_vertices:
            raise GraphFormatError("keep_vertices length must equal n")
        self.base = base
        self.keep_vertices = keep_vertices
        self.edge_mask = _combined_edge_mask(base, keep_vertices, keep_edges)
        self._reverse: "StatusArrayView | None" = None

    @property
    def num_edges(self) -> int:
        """Live edge count (the mask's popcount, not the array length)."""
        return int(self.edge_mask.sum())

    @property
    def weights(self) -> np.ndarray:
        # full-length array; masked kernels ignore dead entries
        return self.base.weights

    def adjacency_arrays(self):
        ip = self.base.indptr
        return ip[:-1], ip[1:], self.base.indices, self.base.weights, self.edge_mask

    def neighbors(self, v: int):
        self._check_vertex(v)
        lo, hi = int(self.base.indptr[v]), int(self.base.indptr[v + 1])
        mask = self.edge_mask[lo:hi]
        return self.base.indices[lo:hi][mask], self.base.weights[lo:hi][mask]

    def reverse(self) -> "StatusArrayView":
        """The same view over the transpose, with the mask permuted along."""
        if self._reverse is None:
            rev_base = self.base.reverse()
            # base.reverse() orders edges by stable argsort of targets; apply
            # the same permutation to carry each edge's liveness across.
            order = np.argsort(self.base.indices, kind="stable")
            view = object.__new__(StatusArrayView)
            view.base = rev_base
            view.keep_vertices = self.keep_vertices
            view.edge_mask = self.edge_mask[order]
            view._reverse = self
            self._reverse = view
        return self._reverse

    def memory_bytes(self) -> int:
        return self.base.memory_bytes() + self.edge_mask.nbytes + self.keep_vertices.nbytes


class EdgeSwapView(_CompactViewBase):
    """Edge-swap compaction (paper §5.2, Figure 5(b)).

    Copies the adjacency arrays once, then moves every vertex's live edges
    to the front of its CSR segment and shrinks the segment end — the exact
    layout the paper's per-vertex two-pointer swap produces.  The pass is
    realised as one vectorised stable partition over all segments at once
    (per-edge target position = segment start + live-rank within segment),
    which is the NumPy-idiomatic form of the same O(n + m_a) work.
    Traversal afterwards reads ``[beg_pos[v], beg_pos[v] + offset[v])``
    with no mask test.
    """

    def __init__(
        self,
        base: CSRGraph,
        keep_vertices: np.ndarray,
        keep_edges: np.ndarray | None = None,
    ) -> None:
        keep_vertices = np.asarray(keep_vertices, dtype=bool)
        if keep_vertices.size != base.num_vertices:
            raise GraphFormatError("keep_vertices length must equal n")
        self.base = base
        self.keep_vertices = keep_vertices
        live = _combined_edge_mask(base, keep_vertices, keep_edges)
        self._live = live
        self.indices = base.indices.copy()
        self.weights = base.weights.copy()
        indptr = base.indptr
        degs = np.diff(indptr)
        # live_cum0[e] = number of live edges among positions [0, e)
        live_cum0 = np.zeros(live.size + 1, dtype=np.int64)
        np.cumsum(live, out=live_cum0[1:])
        live_per_seg = live_cum0[indptr[1:]] - live_cum0[indptr[:-1]]
        # each live edge lands at: segment start + its live-rank in segment
        seg_starts = np.repeat(indptr[:-1], degs)
        seg_before = np.repeat(live_cum0[indptr[:-1]], degs)
        new_pos = seg_starts + (live_cum0[1:] - seg_before) - 1
        lp = new_pos[live]
        self.indices[lp] = base.indices[live]
        self.weights[lp] = base.weights[live]
        self._ends = indptr[:-1] + live_per_seg
        self._num_edges = int(live_per_seg.sum())
        self._reverse: "EdgeSwapView | None" = None

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def adjacency_arrays(self):
        return self.base.indptr[:-1], self._ends, self.indices, self.weights, None

    def neighbors(self, v: int):
        self._check_vertex(v)
        lo, hi = int(self.base.indptr[v]), int(self._ends[v])
        return self.indices[lo:hi], self.weights[lo:hi]

    def reverse(self) -> "EdgeSwapView":
        """Edge-swap view of the transpose, sharing the same keep decision."""
        if self._reverse is None:
            order = np.argsort(self.base.indices, kind="stable")
            rev = EdgeSwapView(
                self.base.reverse(),
                self.keep_vertices,
                self._live[order],
            )
            rev._reverse = self
            self._reverse = rev
        return self._reverse

    def memory_bytes(self) -> int:
        return (
            self.base.indptr.nbytes
            + self.indices.nbytes
            + self.weights.nbytes
            + self._ends.nbytes
            + self.keep_vertices.nbytes
        )


@dataclass
class RegeneratedGraph:
    """Regeneration compaction (paper §5.3, Figure 5(c)): a fresh CSR.

    ``graph`` holds renumbered vertex ids; ``new_id``/``old_id`` map between
    spaces, and :meth:`map_path_back` translates a KSP result's vertices to
    original ids.
    """

    graph: CSRGraph
    new_id: np.ndarray  # old -> new, -1 when pruned
    old_id: np.ndarray  # new -> old

    def map_vertex(self, old: int) -> int:
        """Original id → compacted id; raises if the vertex was pruned."""
        nv = int(self.new_id[old])
        if nv < 0:
            raise VertexError(f"vertex {old} was pruned away")
        return nv

    def map_path_back(self, vertices) -> tuple[int, ...]:
        """Compacted-id path → original-id path."""
        return tuple(int(self.old_id[v]) for v in vertices)


def compact_status_array(graph, keep_vertices, keep_edges=None) -> StatusArrayView:
    """Baseline compaction: build the liveness mask, change nothing else."""
    return StatusArrayView(graph, keep_vertices, keep_edges)


def compact_edge_swap(graph, keep_vertices, keep_edges=None) -> EdgeSwapView:
    """Edge-swap compaction over a copy of the CSR arrays."""
    return EdgeSwapView(graph, keep_vertices, keep_edges)


def compact_regenerate(graph, keep_vertices, keep_edges=None) -> RegeneratedGraph:
    """Regenerate a fresh, renumbered CSR over the surviving subgraph."""
    keep_vertices = np.asarray(keep_vertices, dtype=bool)
    live = _combined_edge_mask(graph, keep_vertices, keep_edges)
    old_id = np.flatnonzero(keep_vertices).astype(np.int64)
    new_id = np.full(graph.num_vertices, -1, dtype=np.int64)
    new_id[old_id] = np.arange(old_id.size, dtype=np.int64)
    src = graph.edge_sources()[live]
    dst = graph.indices[live]
    w = graph.weights[live]
    counts = np.bincount(new_id[src], minlength=old_id.size)
    indptr = np.zeros(old_id.size + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    # src is non-decreasing (edge_sources order), so the filtered edges are
    # already grouped by new source id: no sort needed.
    sub = CSRGraph(indptr, new_id[dst], w, check=False)
    return RegeneratedGraph(graph=sub, new_id=new_id, old_id=old_id)


@dataclass
class CompactionResult:
    """Outcome of :func:`adaptive_compact`."""

    #: "status-array" | "edge-swap" | "regeneration"
    strategy: str
    #: the object downstream kernels traverse (a view or a RegeneratedGraph)
    compacted: object
    remaining_vertices: int
    remaining_edges: int
    original_edges: int
    build_seconds: float = 0.0
    #: work units for the parallel simulator (embarrassingly parallel job)
    build_work: int = 0

    @property
    def remaining_edge_fraction(self) -> float:
        return self.remaining_edges / self.original_edges if self.original_edges else 0.0

    @property
    def is_regenerated(self) -> bool:
        return self.strategy == "regeneration"


def adaptive_compact(
    graph,
    keep_vertices: np.ndarray,
    keep_edges: np.ndarray | None = None,
    *,
    alpha: float = 0.1,
    force: str | None = None,
    deadline: float | None = None,
) -> CompactionResult:
    """The adaptive selection rule of §5.4.

    Regenerate when the remaining edge count ``m_r < α · m`` (the remaining
    graph is small: pay the rebuild, win on every downstream traversal);
    edge-swap otherwise (the remaining graph is large: a rebuild would cost
    more than the traversal overhead it saves).  ``α ∈ [0, 1]``; heavier
    downstream work justifies a larger α — the paper suggests 0.6 for
    KSP-heavy workloads and we default lower for the light K≤128 queries.

    ``force`` overrides the rule with a named strategy (benchmarks use it).

    ``deadline`` (absolute, on the installed clock) is checked before the
    mask combination and again before the strategy build — each is one
    vectorised pass, so those two checkpoints bound the overshoot at a
    single build's cost.  Exceeding it raises
    :class:`~repro.errors.KSPTimeout`.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be within [0, 1]")
    check_cancel = cancellation_active(deadline)
    if check_cancel:
        checkpoint(deadline, "compact")
    keep_vertices = np.asarray(keep_vertices, dtype=bool)
    live = _combined_edge_mask(graph, keep_vertices, keep_edges)
    m_r = int(live.sum())
    n_r = int(keep_vertices.sum())
    m = graph.num_edges

    if force is not None:
        strategy = force
    elif m_r < alpha * m:
        strategy = "regeneration"
    else:
        strategy = "edge-swap"

    if check_cancel:
        checkpoint(deadline, "compact.build")
    t0 = now()
    if strategy == "regeneration":
        compacted: object = compact_regenerate(graph, keep_vertices, keep_edges)
        # reads m_a + 2n, writes m_r + 2n_r (§5.4's accounting)
        build_work = graph.num_edges + 2 * graph.num_vertices + m_r + 2 * n_r
    elif strategy == "edge-swap":
        compacted = compact_edge_swap(graph, keep_vertices, keep_edges)
        build_work = graph.num_vertices + graph.num_edges
    elif strategy == "status-array":
        compacted = compact_status_array(graph, keep_vertices, keep_edges)
        build_work = graph.num_vertices + graph.num_edges
    else:
        raise ValueError(f"unknown compaction strategy {strategy!r}")
    build_seconds = now() - t0

    return CompactionResult(
        strategy=strategy,
        compacted=compacted,
        remaining_vertices=n_r,
        remaining_edges=m_r,
        original_edges=m,
        build_seconds=build_seconds,
        build_work=build_work,
    )
