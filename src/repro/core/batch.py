"""Batched PeeK: many KSP queries against one graph.

Real deployments (the paper's routing and graph-database scenarios) issue
*streams* of s→t queries against one mostly-static graph.  Two reuse
opportunities fall out of PeeK's structure:

* **shared targets** — the reverse SSSP of the pruning stage depends only
  on the target, so queries with a common target share it (a routing
  engine answering "everyone → this gateway" pays one reverse Δ-stepping
  total);
* **shared sources** — symmetrically for the forward SSSP.

:class:`BatchPeeK` memoises both against an LRU-bounded cache and exposes
the same result objects as :class:`~repro.core.peek.PeeK`.  The KSP stage
itself is per-query (each query's bound and remnant differ).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.compaction import RegeneratedGraph, adaptive_compact
from repro.core.peek import PeeKResult
from repro.core.pruning import PruneResult, PruneStats
from repro.errors import UnreachableTargetError, VertexError
from repro.ksp.optyen import OptYenKSP
from repro.obs.tracer import get_tracer
from repro.paths import INF, Path
from repro.sssp.delta_stepping import delta_stepping
from repro.sssp.dijkstra import dijkstra

__all__ = ["BatchPeeK"]


class BatchPeeK:
    """A PeeK instance amortised over many queries on one graph.

    Parameters
    ----------
    graph:
        The (static) graph every query runs against.
    kernel:
        SSSP kernel for the pruning stage, as in PeeK.
    cache_size:
        Maximum number of forward *and* reverse SSSP results retained
        (each is O(n) memory).
    alpha:
        Adaptive-compaction coefficient.
    use_workspace:
        Let each query's KSP stage reuse an epoch-stamped SSSP workspace
        across its spur searches, exactly as :class:`~repro.core.peek.PeeK`
        does (default).  ``False`` restores fresh-allocation searches.
    """

    def __init__(
        self,
        graph,
        *,
        kernel: str = "delta",
        cache_size: int = 64,
        alpha: float = 0.1,
        use_workspace: bool = True,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.graph = graph
        self.kernel = kernel
        self.alpha = alpha
        self.use_workspace = use_workspace
        self._cache_size = cache_size
        self._fwd: OrderedDict[int, object] = OrderedDict()
        self._rev: OrderedDict[int, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _sssp(self, cache: OrderedDict, graph, root: int):
        res = cache.get(root)
        if res is not None:
            cache.move_to_end(root)
            self.hits += 1
            get_tracer().add("batch.cache_hits")
            return res
        self.misses += 1
        get_tracer().add("batch.cache_misses")
        if self.kernel == "delta":
            res = delta_stepping(graph, root)
        else:
            res = dijkstra(graph, root)
        cache[root] = res
        if len(cache) > self._cache_size:
            cache.popitem(last=False)
        return res

    def forward_sssp(self, source: int):
        """Cached forward SSSP from ``source``."""
        return self._sssp(self._fwd, self.graph, source)

    def reverse_sssp(self, target: int):
        """Cached reverse SSSP toward ``target``."""
        return self._sssp(self._rev, self.graph.reverse(), target)

    # ------------------------------------------------------------------
    def query(self, source: int, target: int, k: int) -> PeeKResult:
        """One PeeK query, reusing any cached SSSP halves.

        Identical results to ``PeeK(graph, s, t).run(k)`` (tested); only
        the pruning SSSPs are shared across queries.
        """
        n = self.graph.num_vertices
        if not 0 <= source < n or not 0 <= target < n:
            raise VertexError(f"query ({source}, {target}) out of range")
        if k < 1:
            raise ValueError("k must be >= 1")
        tracer = get_tracer()
        with tracer.span("batch.query", source=source, target=target, k=k):
            with tracer.span("prune", k=k, kernel=self.kernel):
                fwd = self.forward_sssp(source)
                rev = self.reverse_sssp(target)
                if not np.isfinite(fwd.dist[target]):
                    raise UnreachableTargetError(
                        f"target {target} unreachable from {source}"
                    )
                pr = self._prune_from(fwd, rev, source, target, k)
            with tracer.span("compact") as span:
                comp = adaptive_compact(
                    self.graph, pr.keep_vertices, pr.keep_edges, alpha=self.alpha
                )
                if tracer.enabled:
                    span.attrs["strategy"] = comp.strategy
            if isinstance(comp.compacted, RegeneratedGraph):
                regen = comp.compacted
                inner = OptYenKSP(
                    regen.graph,
                    regen.map_vertex(source),
                    regen.map_vertex(target),
                    use_workspace=self.use_workspace,
                )
                result = inner.run(k)
                paths = [
                    Path(p.distance, regen.map_path_back(p.vertices))
                    for p in result.paths
                ]
            else:
                inner = OptYenKSP(
                    comp.compacted,
                    source,
                    target,
                    use_workspace=self.use_workspace,
                )
                result = inner.run(k)
                paths = result.paths
        return PeeKResult(
            paths=paths,
            k_requested=k,
            stats=result.stats,
            prune=pr,
            compaction=comp,
            ksp_stats=result.stats,
        )

    def _prune_from(self, fwd, rev, source, target, k) -> PruneResult:
        """Algorithm 2 steps 2–3 over pre-computed SSSP halves."""
        from repro.core.validation import combined_path, validate_combined_path

        graph = self.graph
        n = graph.num_vertices
        stats = PruneStats()
        sp_sum = fwd.dist + rev.dist
        stats.sum_work = n
        finite = np.flatnonzero(np.isfinite(sp_sum))
        order = finite[np.argsort(sp_sum[finite], kind="stable")]
        stats.sort_work = int(
            order.size * max(int(np.log2(max(order.size, 2))), 1)
        )
        bound = INF
        seen: set[tuple[int, ...]] = set()
        for v in order.tolist():
            parts = combined_path(fwd.parent, rev.parent, source, target, v)
            if parts is None:  # pragma: no cover - defensive
                continue
            src_path, tgt_path = parts
            stats.validation_work += len(src_path) + len(tgt_path)
            stats.inspected_paths += 1
            valid, full = validate_combined_path(src_path, tgt_path)
            if not valid:
                stats.inspected_invalid += 1
                continue
            if full in seen:
                continue
            seen.add(full)
            if len(seen) == k:
                bound = float(sp_sum[v])
                break
        slack = bound * 1e-9 if np.isfinite(bound) else 0.0
        threshold = bound + slack
        keep_vertices = np.zeros(n, dtype=bool)
        keep_vertices[finite] = sp_sum[finite] <= threshold
        keep_edges = graph.weights <= threshold
        stats.prune_scan_work = n + graph.num_edges
        return PruneResult(
            bound=bound,
            keep_vertices=keep_vertices,
            keep_edges=keep_edges,
            dist_src=fwd.dist,
            dist_tgt=rev.dist,
            parent_src=fwd.parent,
            parent_tgt=rev.parent,
            sp_sum=sp_sum,
            stats=stats,
        )

    # ------------------------------------------------------------------
    @property
    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters plus current cache occupancy."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "forward_cached": len(self._fwd),
            "reverse_cached": len(self._rev),
        }

    def clear_cache(self) -> None:
        """Drop all cached SSSP results (e.g. after the graph changed)."""
        self._fwd.clear()
        self._rev.clear()
