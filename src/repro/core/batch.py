"""Batched PeeK: many KSP queries against one graph.

Real deployments (the paper's routing and graph-database scenarios) issue
*streams* of s→t queries against one mostly-static graph.  Two reuse
opportunities fall out of PeeK's structure:

* **shared targets** — the reverse SSSP of the pruning stage depends only
  on the target, so queries with a common target share it (a routing
  engine answering "everyone → this gateway" pays one reverse Δ-stepping
  total);
* **shared sources** — symmetrically for the forward SSSP.

:class:`BatchPeeK` memoises both against an LRU-bounded cache and exposes
the same result objects as :class:`~repro.core.peek.PeeK`.  The KSP stage
itself is per-query (each query's bound and remnant differ).

The pruning decision is computed by the shared
:func:`~repro.core.pruning.bound_and_masks` — the same Algorithm 2
steps 2–3 code path as :func:`~repro.core.pruning.k_upper_bound_prune`,
so batched results stay bitwise identical to single-query PeeK (tested).
:class:`repro.serve.QueryServer` builds on :meth:`BatchPeeK.prepare` to
drive the KSP stage incrementally under a deadline.

With ``versioned=True`` the batch solver also serves *live* graphs
(:class:`repro.dyn.live.LiveGraph`): :meth:`BatchPeeK.rebind` moves it to
a new snapshot, surgically invalidating only the SSSP cache entries whose
trees touch mutated vertices and only the prepared pruning decisions the
Yamane–Kitajima-style reuse certificate
(:func:`~repro.core.pruning.prune_reuse_certificate`) cannot carry
forward.  A certificate-carried query skips both SSSPs and the spSum
scan entirely — the incremental re-solve the paper's dynamic Figure 12
workload motivates — and stays bitwise-identical to a cold solve on the
same snapshot (tested; audited by SAN-DYN under sanitizers).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.compaction import (
    CompactionResult,
    RegeneratedGraph,
    adaptive_compact,
)
from repro.analysis.sanitize import check_dyn_reuse, sanitize_enabled_from_env
from repro.core.peek import PeeKResult
from repro.core.pruning import (
    PruneResult,
    PruneStats,
    bound_and_masks,
    prune_reuse_certificate,
)
from repro.errors import KSPError, UnreachableTargetError, VertexError
from repro.ksp.optyen import OptYenKSP
from repro.obs.tracer import get_tracer
from repro.paths import Path
from repro.sssp.delta_stepping import delta_stepping
from repro.sssp.dijkstra import dijkstra

__all__ = ["BatchPeeK", "PreparedQuery"]


@dataclass
class PreparedQuery:
    """Stages 1–2 of one batched query, ready for the KSP stage.

    Produced by :meth:`BatchPeeK.prepare`.  ``inner`` is the OptYen solver
    over the compacted graph; drive :meth:`inner.iter_paths` (mapping each
    path through :meth:`map_paths`) for incremental consumption — the
    serving layer does this to salvage partial results on timeout — or
    call :meth:`run` for the classic all-at-once result.
    """

    source: int
    target: int
    k: int
    inner: OptYenKSP
    prune: PruneResult
    compaction: CompactionResult
    regen: RegeneratedGraph | None
    #: graph snapshot version the prune/compaction were computed against
    #: (0 for static graphs; stamped by versioned :class:`BatchPeeK`)
    version: int = 0

    def map_paths(self, paths) -> list[Path]:
        """Inner-graph paths → original vertex ids."""
        if self.regen is None:
            return list(paths)
        return [
            Path(p.distance, self.regen.map_path_back(p.vertices))
            for p in paths
        ]

    def run(self) -> PeeKResult:
        """Run the KSP stage to completion and assemble the PeeK result."""
        result = self.inner.run(self.k)  # opens its own "ksp" span
        return PeeKResult(
            paths=self.map_paths(result.paths),
            k_requested=self.k,
            stats=result.stats,
            prune=self.prune,
            compaction=self.compaction,
            ksp_stats=result.stats,
        )


class BatchPeeK:
    """A PeeK instance amortised over many queries on one graph.

    Parameters
    ----------
    graph:
        The (static) graph every query runs against.
    kernel:
        SSSP kernel for the pruning stage, as in PeeK.
    cache_size:
        Maximum number of SSSP results retained across forward *and*
        reverse caches combined (each result is O(n) memory, so this is
        the memory bound).  Eviction is least-recently-used over the two
        directions together.
    alpha:
        Adaptive-compaction coefficient.
    strong_edge_prune:
        Enable the edge-level Lemma-4.2 extension, exactly as in
        :class:`~repro.core.peek.PeeK` (default off, matching the paper).
    use_workspace:
        Let each query's KSP stage reuse an epoch-stamped SSSP workspace
        across its spur searches, exactly as :class:`~repro.core.peek.PeeK`
        does (default).  ``False`` restores fresh-allocation searches.
    versioned:
        Serve a *live* graph: :meth:`rebind` accepts new snapshots, the
        SSSP cache is invalidated region-by-region instead of wholesale,
        and pruning decisions are memoised per ``(source, target, k)``
        and carried across versions when the reuse certificate allows.
        Off by default — static-graph behaviour is bit-for-bit unchanged.
    prepared_cache_size:
        LRU bound on memoised pruning decisions (versioned mode only).
    sanitize:
        Audit every certificate-carried reuse with SAN-DYN (a cold
        re-prune comparison).  ``RPR_SANITIZE=1`` enables it regardless.
    """

    def __init__(
        self,
        graph,
        *,
        kernel: str = "delta",
        cache_size: int = 64,
        alpha: float = 0.1,
        strong_edge_prune: bool = False,
        use_workspace: bool = True,
        versioned: bool = False,
        prepared_cache_size: int = 32,
        sanitize: bool = False,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if prepared_cache_size < 1:
            raise ValueError("prepared_cache_size must be >= 1")
        self.graph = graph
        self.kernel = kernel
        self.alpha = alpha
        self.strong_edge_prune = strong_edge_prune
        self.use_workspace = use_workspace
        self.versioned = versioned
        self.sanitize = sanitize
        self._cache_size = cache_size
        #: one LRU over both directions, keyed ("fwd"|"rev", root)
        self._cache: OrderedDict[tuple[str, int], object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: current snapshot version (monotone; stays 0 for static graphs)
        self.version = 0
        self._prepared_size = prepared_cache_size
        #: memoised pruning decisions, keyed (source, target, k)
        self._prepared: OrderedDict[tuple[int, int, int], dict] = OrderedDict()
        self.invalidated = 0
        self.retained = 0
        self.prune_reused = 0
        self.prune_cold = 0

    # ------------------------------------------------------------------
    def _sssp(self, direction: str, graph, root: int, deadline: float | None):
        key = (direction, root)
        res = self._cache.get(key)
        if res is not None:
            self._cache.move_to_end(key)
            self.hits += 1
            get_tracer().add("batch.cache_hits")
            return res
        self.misses += 1
        get_tracer().add("batch.cache_misses")
        if self.kernel == "delta":
            res = delta_stepping(graph, root, deadline=deadline)
        else:
            res = dijkstra(graph, root, deadline=deadline)
        self._cache[key] = res
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return res

    def forward_sssp(self, source: int, *, deadline: float | None = None):
        """Cached forward SSSP from ``source``."""
        return self._sssp("fwd", self.graph, source, deadline)

    def reverse_sssp(self, target: int, *, deadline: float | None = None):
        """Cached reverse SSSP toward ``target``."""
        return self._sssp("rev", self.graph.reverse(), target, deadline)

    # ------------------------------------------------------------------
    def rebind(self, graph, *, version: int, summary) -> None:
        """Move the solver to a new graph snapshot (versioned mode).

        Region-keyed invalidation instead of :meth:`clear_cache`'s
        wholesale drop:

        * an SSSP cache entry survives iff **no** touched vertex has a
          finite cached distance — then no mutated edge was reachable in
          its tree, so the entry is bitwise-valid on the new snapshot
          (the first mutated edge on any would-be-new path has a
          reachable — finite, touched — source);
        * a memoised pruning decision survives iff
          :func:`~repro.core.pruning.prune_reuse_certificate` accepts the
          batch, in which case it is re-stamped to ``version`` (eager
          per-batch evaluation, so certificates compose across batches).

        ``summary`` is the :class:`~repro.dyn.stream.MutationSummary` of
        the batch that produced ``graph``; ``version`` the new snapshot's
        monotone id.
        """
        if version <= self.version:
            raise ValueError(
                f"rebind version {version} is not beyond {self.version}"
            )
        self.graph = graph
        self.version = version
        touched = summary.touched
        stale = [
            key
            for key, res in self._cache.items()
            if touched.size and bool(np.isfinite(res.dist[touched]).any())
        ]
        for key in stale:
            del self._cache[key]
        dead = [
            key
            for key, entry in self._prepared.items()
            if not prune_reuse_certificate(entry["prune"], summary)
        ]
        for key in dead:
            del self._prepared[key]
        for entry in self._prepared.values():
            entry["version"] = version
        self.invalidated += len(stale) + len(dead)
        self.retained += len(self._cache) + len(self._prepared)
        tracer = get_tracer()
        tracer.add("batch.invalidated", len(stale) + len(dead))
        tracer.add("batch.retained", len(self._cache) + len(self._prepared))

    # ------------------------------------------------------------------
    def prepare(
        self,
        source: int,
        target: int,
        k: int,
        *,
        deadline: float | None = None,
    ) -> PreparedQuery:
        """Run the prune and compact stages for one query.

        Reuses any cached SSSP halves; ``deadline`` (absolute
        ``time.perf_counter()``) is threaded into every stage — a cache
        *miss* SSSP, the spSum scan, the compaction build, and the
        returned inner solver all observe it cooperatively and raise
        :class:`~repro.errors.KSPTimeout`.
        """
        n = self.graph.num_vertices
        if not 0 <= source < n or not 0 <= target < n:
            raise VertexError(f"query ({source}, {target}) out of range")
        if source == target:
            raise KSPError("source and target must differ for a KSP query")
        if k < 1:
            raise ValueError("k must be >= 1")
        tracer = get_tracer()
        if self.versioned:
            entry = self._prepared.get((source, target, k))
            if entry is not None:
                # certificate-carried (or same-version) reuse: skip both
                # SSSPs, the spSum scan, and the compaction build
                self._prepared.move_to_end((source, target, k))
                self.prune_reused += 1
                tracer.add("batch.prune_reuse")
                if self.sanitize or sanitize_enabled_from_env():
                    check_dyn_reuse(
                        self.graph,
                        entry["prune"],
                        source,
                        target,
                        k,
                        kernel=self.kernel,
                        strong_edge_prune=self.strong_edge_prune,
                    )
                return self._materialise(entry, deadline)
            self.prune_cold += 1
            tracer.add("batch.prune_cold")
        with tracer.span("prune", k=k, kernel=self.kernel):
            fwd = self.forward_sssp(source, deadline=deadline)
            rev = self.reverse_sssp(target, deadline=deadline)
            if not np.isfinite(fwd.dist[target]):
                raise UnreachableTargetError(
                    f"target {target} unreachable from {source}"
                )
            pr = bound_and_masks(
                fwd,
                rev,
                source,
                target,
                k,
                graph=self.graph,
                strong_edge_prune=self.strong_edge_prune,
                stats=PruneStats(),
                deadline=deadline,
            )
        with tracer.span("compact") as span:
            comp = adaptive_compact(
                self.graph,
                pr.keep_vertices,
                pr.keep_edges,
                alpha=self.alpha,
                deadline=deadline,
            )
            if tracer.enabled:
                span.attrs["strategy"] = comp.strategy
        regen = (
            comp.compacted
            if isinstance(comp.compacted, RegeneratedGraph)
            else None
        )
        entry = {
            "source": source,
            "target": target,
            "k": k,
            "prune": pr,
            "compaction": comp,
            "regen": regen,
            "version": self.version,
        }
        if self.versioned:
            self._prepared[(source, target, k)] = entry
            if len(self._prepared) > self._prepared_size:
                self._prepared.popitem(last=False)
        return self._materialise(entry, deadline)

    def _materialise(self, entry: dict, deadline: float | None) -> PreparedQuery:
        """Build a fresh inner solver over a (possibly cached) compaction.

        The solver is per-call because the deadline is per-query; the
        expensive parts (prune + compaction) come from ``entry``.
        """
        comp: CompactionResult = entry["compaction"]
        regen = entry["regen"]
        source, target, k = entry["source"], entry["target"], entry["k"]
        if regen is not None:
            inner = OptYenKSP(
                regen.graph,
                regen.map_vertex(source),
                regen.map_vertex(target),
                deadline=deadline,
                use_workspace=self.use_workspace,
            )
        else:
            inner = OptYenKSP(
                comp.compacted,
                source,
                target,
                deadline=deadline,
                use_workspace=self.use_workspace,
            )
        return PreparedQuery(
            source=source,
            target=target,
            k=k,
            inner=inner,
            prune=entry["prune"],
            compaction=comp,
            regen=regen,
            version=entry["version"],
        )

    def query(
        self,
        source: int,
        target: int,
        k: int,
        *,
        deadline: float | None = None,
    ) -> PeeKResult:
        """One PeeK query, reusing any cached SSSP halves.

        Identical results to ``PeeK(graph, s, t).run(k)`` (tested); only
        the pruning SSSPs are shared across queries.
        """
        tracer = get_tracer()
        with tracer.span("batch.query", source=source, target=target, k=k):
            prep = self.prepare(source, target, k, deadline=deadline)
            return prep.run()

    # ------------------------------------------------------------------
    @property
    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters plus current cache occupancy per direction.

        Versioned mode adds the rebind accounting: cumulative entries
        ``invalidated``/``retained`` across all rebinds, the memoised
        pruning-decision occupancy, and the reuse split
        (``prune_reused``/``prune_cold``).
        """
        fwd = sum(1 for d, _ in self._cache if d == "fwd")
        return {
            "hits": self.hits,
            "misses": self.misses,
            "forward_cached": fwd,
            "reverse_cached": len(self._cache) - fwd,
            "prepared_cached": len(self._prepared),
            "invalidated": self.invalidated,
            "retained": self.retained,
            "prune_reused": self.prune_reused,
            "prune_cold": self.prune_cold,
        }

    def clear_cache(self) -> None:
        """Drop all cached SSSP results and memoised pruning decisions."""
        self._cache.clear()
        self._prepared.clear()
