"""PeeK's core: K-upper-bound pruning, adaptive compaction, the driver.

* :mod:`repro.core.pruning` — Algorithm 2: two SSSPs, the ``spSum`` array,
  validated K-th-distance upper bound, vertex/edge pruning.
* :mod:`repro.core.validation` — the combined-path validity check
  (Figure 3(e)'s loop detection) with hash-set O(1) membership.
* :mod:`repro.core.compaction` — the three compaction strategies of §5
  (status array, edge swap, regeneration) and the adaptive α-rule.
* :mod:`repro.core.peek` — the PeeK pipeline: prune → compact → KSP.
"""

from repro.core.pruning import PruneResult, k_upper_bound_prune
from repro.core.compaction import (
    StatusArrayView,
    EdgeSwapView,
    RegeneratedGraph,
    CompactionResult,
    adaptive_compact,
    compact_status_array,
    compact_edge_swap,
    compact_regenerate,
)
from repro.core.peek import PeeK, PeeKResult, peek_ksp

__all__ = [
    "PruneResult",
    "k_upper_bound_prune",
    "StatusArrayView",
    "EdgeSwapView",
    "RegeneratedGraph",
    "CompactionResult",
    "adaptive_compact",
    "compact_status_array",
    "compact_edge_swap",
    "compact_regenerate",
    "PeeK",
    "PeeKResult",
    "peek_ksp",
]
