"""Mutation batches and seeded mutation streams for the live-graph path.

The paper's Figure 12 workload is *dynamic* — batched deletions raced
against PeeK's adaptive compaction — and the serving scenario it implies
(navigation under incidents: road closures, link failures, congestion)
needs a first-class value for "what changed": :class:`MutationBatch`, a
frozen batch of edge inserts / deletes / reweights and vertex tombstones
stamped with a simulated-clock instant, applied atomically by
:class:`~repro.dyn.live.LiveGraph` to produce the next versioned
snapshot.

:class:`IncidentStream` generates seeded batches against the *current*
graph state: closures delete existing edges, congestion multiplies
weights up, clears restore congested edges to their original weight
(a weight *decrease* — the case the prune-bound reuse certificate must
refuse), reopenings re-insert previously closed edges, and outages
tombstone whole vertices.  Batch instants ride the ``repro.load``
virtual clock (exponential inter-arrivals over a horizon), so a load
run's mutation schedule is as reproducible as its query schedule: both
are pure functions of the seeds.

Everything here is deliberately independent of the serving stack —
:mod:`repro.serve` consumes these values, never the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "MutationBatch",
    "MutationSummary",
    "IncidentStream",
]

_I64 = np.int64
_F64 = np.float64


def _ids(values) -> np.ndarray:
    return np.asarray(values, dtype=_I64)


def _ws(values) -> np.ndarray:
    return np.asarray(values, dtype=_F64)


_EMPTY_I = np.empty(0, dtype=_I64)
_EMPTY_F = np.empty(0, dtype=_F64)


@dataclass(frozen=True)
class MutationBatch:
    """One atomic graph mutation: the unit of versioning.

    Application order within a batch is fixed and documented: deletes,
    then reweights, then inserts, then tombstones.  A reweight of an
    edge deleted earlier in the same batch is therefore a no-op, and an
    insert toward a vertex tombstoned in the same batch is stored dead.

    ``at`` is the simulated instant the batch takes effect (the load
    harness applies it before dispatching any query issued at or after
    ``at``); it is descriptive for direct :meth:`QueryServer.apply_mutations
    <repro.serve.QueryServer.apply_mutations>` calls.
    """

    insert_src: np.ndarray = field(default_factory=lambda: _EMPTY_I)
    insert_dst: np.ndarray = field(default_factory=lambda: _EMPTY_I)
    insert_w: np.ndarray = field(default_factory=lambda: _EMPTY_F)
    delete_src: np.ndarray = field(default_factory=lambda: _EMPTY_I)
    delete_dst: np.ndarray = field(default_factory=lambda: _EMPTY_I)
    reweight_src: np.ndarray = field(default_factory=lambda: _EMPTY_I)
    reweight_dst: np.ndarray = field(default_factory=lambda: _EMPTY_I)
    reweight_w: np.ndarray = field(default_factory=lambda: _EMPTY_F)
    tombstone: np.ndarray = field(default_factory=lambda: _EMPTY_I)
    #: simulated-clock instant the batch takes effect
    at: float = 0.0

    @classmethod
    def build(
        cls,
        *,
        inserts=(),
        deletes=(),
        reweights=(),
        tombstones=(),
        at: float = 0.0,
    ) -> "MutationBatch":
        """Convenience constructor from edge-tuple lists.

        ``inserts``/``reweights`` are ``(src, dst, weight)`` triples,
        ``deletes`` are ``(src, dst)`` pairs, ``tombstones`` vertex ids.
        """
        ins = list(inserts)
        dels = list(deletes)
        rws = list(reweights)
        return cls(
            insert_src=_ids([e[0] for e in ins]),
            insert_dst=_ids([e[1] for e in ins]),
            insert_w=_ws([e[2] for e in ins]),
            delete_src=_ids([e[0] for e in dels]),
            delete_dst=_ids([e[1] for e in dels]),
            reweight_src=_ids([e[0] for e in rws]),
            reweight_dst=_ids([e[1] for e in rws]),
            reweight_w=_ws([e[2] for e in rws]),
            tombstone=_ids(list(tombstones)),
            at=float(at),
        )

    @property
    def size(self) -> int:
        """Total mutation count across all four kinds."""
        return int(
            self.insert_src.size
            + self.delete_src.size
            + self.reweight_src.size
            + self.tombstone.size
        )

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    def touched_vertices(self) -> np.ndarray:
        """Sorted unique vertex ids whose region this batch touches.

        Every endpoint of every mutated edge plus every tombstoned
        vertex — the invalidation key for the region-keyed SSSP cache
        (:meth:`repro.core.batch.BatchPeeK.rebind`).
        """
        return np.unique(
            np.concatenate(
                [
                    self.insert_src,
                    self.insert_dst,
                    self.delete_src,
                    self.delete_dst,
                    self.reweight_src,
                    self.reweight_dst,
                    self.tombstone,
                ]
            )
        )


@dataclass(frozen=True)
class MutationSummary:
    """What one applied batch *did* — the certificate inputs.

    Produced by :meth:`repro.dyn.live.LiveGraph.apply` after consulting
    the pre-mutation state (old weights, liveness), which is exactly the
    information the prune-bound reuse certificate
    (:func:`repro.core.pruning.prune_reuse_certificate`) and the
    region-keyed cache invalidation need and the raw batch cannot carry.
    """

    #: the version the graph has *after* this batch
    version: int
    #: sorted unique vertex ids whose region changed (cache keying)
    touched: np.ndarray
    #: batch contained at least one effective edge insert
    has_insert: bool
    #: batch contained at least one effective weight decrease
    has_decrease: bool
    #: edges removed or weight-increased, with their OLD weights — the
    #: set the certificate must prove lies outside the pruned subgraph
    up_src: np.ndarray
    up_dst: np.ndarray
    up_old_w: np.ndarray
    #: vertices tombstoned by this batch (previously alive)
    tombstoned: np.ndarray

    @property
    def increase_only(self) -> bool:
        """True when every effective mutation can only lengthen paths."""
        return not (self.has_insert or self.has_decrease)


class IncidentStream:
    """Seeded incident generator over a live graph.

    Parameters
    ----------
    seed:
        Master seed; the batch schedule and contents are pure functions
        of ``(seed, graph history)``.
    rate:
        Mean batches per simulated second (exponential inter-arrivals).
    batch_size:
        Mutations per batch (before effect filtering).
    p_close, p_congest, p_clear, p_reopen, p_tombstone:
        Mixture weights of the five incident kinds (normalised
        internally).  ``clear`` restores a previously congested edge to
        its original weight (a decrease); ``reopen`` re-inserts a
        previously closed edge — both are the mutations that defeat the
        reuse certificate, so a stream with them exercises cold
        re-solves and one without (``p_clear=p_reopen=0``) exercises
        reuse.
    congestion:
        ``(lo, hi)`` multiplicative weight-increase factor range
        (both > 1).
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        rate: float = 50.0,
        batch_size: int = 4,
        p_close: float = 0.35,
        p_congest: float = 0.35,
        p_clear: float = 0.15,
        p_reopen: float = 0.1,
        p_tombstone: float = 0.05,
        congestion: tuple[float, float] = (1.5, 4.0),
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if congestion[0] <= 1.0 or congestion[1] < congestion[0]:
            raise ValueError("congestion factors must satisfy 1 < lo <= hi")
        weights = np.array(
            [p_close, p_congest, p_clear, p_reopen, p_tombstone], dtype=_F64
        )
        if (weights < 0).any() or weights.sum() <= 0:
            raise ValueError("incident probabilities must be non-negative, sum > 0")
        self._p = weights / weights.sum()
        self.seed = seed
        self.rate = float(rate)
        self.batch_size = int(batch_size)
        self.congestion = (float(congestion[0]), float(congestion[1]))
        self._rng = np.random.default_rng(seed)
        #: closed edges available for reopening: (src, dst, original w)
        self._closed: list[tuple[int, int, float]] = []
        #: congested edges available for clearing: (src, dst, original w)
        self._congested: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    def batches(self, live, horizon: float):
        """Yield timed :class:`MutationBatch` instants over ``horizon``.

        ``live`` is the :class:`~repro.dyn.live.LiveGraph` the batches
        will be applied to; each batch is generated against the graph
        state *as of the previous batch* (the stream assumes its batches
        are applied in order, which the load harness guarantees).
        """
        t = 0.0
        while True:
            t += float(self._rng.exponential(1.0 / self.rate))
            if t >= horizon:
                return
            batch = self.next_batch(live, at=t)
            if not batch.is_empty:
                yield batch

    def next_batch(self, live, *, at: float = 0.0) -> MutationBatch:
        """Generate one batch against ``live``'s current snapshot."""
        graph = live.graph
        alive = live.alive
        rng = self._rng
        deletes: list[tuple[int, int]] = []
        reweights: list[tuple[int, int, float]] = []
        inserts: list[tuple[int, int, float]] = []
        tombstones: list[int] = []
        # edges already chosen by this batch, to keep mutations disjoint
        chosen: set[tuple[int, int]] = set()
        src_all = graph.edge_sources()
        m = graph.num_edges
        for kind in rng.choice(5, size=self.batch_size, p=self._p).tolist():
            if kind in (0, 1) and m > 0:  # close / congest an existing edge
                for _ in range(8):  # rejection-sample a live, unchosen edge
                    e = int(rng.integers(0, m))
                    u, v = int(src_all[e]), int(graph.indices[e])
                    w = float(graph.weights[e])
                    if (u, v) in chosen or not (alive[u] and alive[v]):
                        continue
                    chosen.add((u, v))
                    if kind == 0:
                        deletes.append((u, v))
                        self._closed.append((u, v, w))
                        self._congested.pop((u, v), None)
                    else:
                        # compound on the *current* weight so repeated
                        # congestion is always an increase (factor > 1);
                        # remember the first-seen weight for clearing
                        factor = float(
                            rng.uniform(self.congestion[0], self.congestion[1])
                        )
                        self._congested.setdefault((u, v), w)
                        reweights.append((u, v, w * factor))
                    break
            elif kind == 2 and self._congested:  # clear congestion (decrease)
                i = int(rng.integers(0, len(self._congested)))
                (u, v) = list(self._congested.keys())[i]
                if not (alive[u] and alive[v]):
                    # an endpoint was tombstoned since: never clearable
                    del self._congested[(u, v)]
                    continue
                if (u, v) in chosen:
                    continue
                chosen.add((u, v))
                reweights.append((u, v, self._congested.pop((u, v))))
            elif kind == 3 and self._closed:  # reopen a closed edge
                i = int(rng.integers(0, len(self._closed)))
                u, v, w = self._closed.pop(i)
                if not (alive[u] and alive[v]):
                    continue  # dropped: the road no longer has endpoints
                if (u, v) in chosen:
                    self._closed.append((u, v, w))  # try again another batch
                    continue
                chosen.add((u, v))
                inserts.append((u, v, w))
            elif kind == 4:  # vertex outage
                candidates = np.flatnonzero(alive)
                if candidates.size <= 2:
                    continue
                x = int(candidates[int(rng.integers(0, candidates.size))])
                tombstones.append(x)
        return MutationBatch.build(
            inserts=inserts,
            deletes=deletes,
            reweights=reweights,
            tombstones=tombstones,
            at=at,
        )
