"""Versioned live graph: a Terrace spine exporting immutable snapshots.

:class:`LiveGraph` is the seam between the mutable world and the serving
stack.  The Terrace container absorbs mutation batches; every applied
batch produces a :class:`Snapshot` — an immutable
:class:`~repro.graph.csr.CSRGraph` extraction stamped with a monotone
version id plus the :class:`~repro.dyn.stream.MutationSummary` that
classifies what the batch *effectively* did against the pre-mutation
state.  Everything downstream (SSSP caches, prepared queries, serve
results) records the version it was computed against, so staleness is a
comparison of two integers.

Two properties the serving layer relies on:

* **stable vertex space** — tombstoned vertices become isolated in the
  snapshot rather than being renumbered, so vertex ids (and therefore
  cached distance arrays) remain meaningful across versions;
* **deterministic extraction** — :meth:`TerraceGraph.to_csr` emits live
  edges in stored target-sorted order, so the same mutation history
  always yields bitwise-identical snapshots (the CI ``dyn-serving`` job
  asserts exactly this with ``cmp``).

Effectiveness classification matters for the reuse certificate: a delete
of an edge that was not live, an insert toward a tombstoned target, or a
reweight to the same value must not defeat prune-bound reuse, so
:meth:`LiveGraph.apply` consults the pre-mutation state (old weights,
liveness) and records only *effective* inserts/decreases/up-edges in the
summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dyn.stream import MutationBatch, MutationSummary
from repro.dyn.terrace import TerraceGraph
from repro.errors import VertexError
from repro.graph.csr import CSRGraph

__all__ = ["LiveGraph", "Snapshot"]


@dataclass(frozen=True)
class Snapshot:
    """One immutable version of the live graph.

    ``summary`` is ``None`` only for version 0 (the initial load — there
    is no batch to summarise).
    """

    version: int
    graph: CSRGraph
    summary: MutationSummary | None = None


class LiveGraph:
    """Mutable graph spine with monotone-versioned immutable snapshots."""

    def __init__(
        self, graph: CSRGraph | TerraceGraph, *, version: int = 0
    ) -> None:
        if isinstance(graph, TerraceGraph):
            self._terrace = graph
        else:
            self._terrace = TerraceGraph.from_csr(graph)
        if version < 0:
            raise ValueError("start version must be >= 0")
        # a non-zero start version rebuilds a spine from a checkpoint: the
        # restored replica resumes the version sequence it left off at, so
        # replayed batches line up with the survivors' version numbers
        self._version = int(version)
        self._snapshot = Snapshot(
            version=self._version, graph=self._terrace.to_csr()
        )

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The current (latest) snapshot version."""
        return self._version

    @property
    def graph(self) -> CSRGraph:
        """The current immutable snapshot's CSR graph."""
        return self._snapshot.graph

    @property
    def alive(self) -> np.ndarray:
        """Copy of the vertex liveness mask at the current version."""
        return self._terrace.alive_mask()

    @property
    def terrace(self) -> TerraceGraph:
        """The mutable spine (mutate it only through :meth:`apply`)."""
        return self._terrace

    @property
    def num_vertices(self) -> int:
        return self._terrace.num_vertices

    def snapshot(self) -> Snapshot:
        """The current :class:`Snapshot` (cheap: extractions are cached)."""
        return self._snapshot

    # ------------------------------------------------------------------
    def apply(self, batch: MutationBatch) -> Snapshot:
        """Apply one mutation batch atomically; returns the new snapshot.

        Application order is deletes → reweights → inserts → tombstones
        (see :class:`~repro.dyn.stream.MutationBatch`).  All sub-batches
        are validated against the *pre*-mutation state before anything is
        applied, so an invalid batch leaves the graph (and the version)
        untouched.
        """
        t = self._terrace
        ins_s = np.asarray(batch.insert_src, dtype=np.int64)
        ins_d = np.asarray(batch.insert_dst, dtype=np.int64)
        ins_w = np.asarray(batch.insert_w, dtype=np.float64)
        del_s = np.asarray(batch.delete_src, dtype=np.int64)
        del_d = np.asarray(batch.delete_dst, dtype=np.int64)
        rw_s = np.asarray(batch.reweight_src, dtype=np.int64)
        rw_d = np.asarray(batch.reweight_dst, dtype=np.int64)
        rw_w = np.asarray(batch.reweight_w, dtype=np.float64)
        tomb = np.asarray(batch.tombstone, dtype=np.int64)

        # all-or-nothing: validate every sub-batch against the pre-state
        # (tombstones apply last, so pre-state liveness is the right
        # check for all three edge operations)
        t._check_batch(del_s, del_d, None)
        t._check_batch(rw_s, rw_d, rw_w)
        t._check_batch(ins_s, ins_d, ins_w)
        if tomb.size and (int(tomb.min()) < 0 or int(tomb.max()) >= t.num_vertices):
            raise VertexError("tombstone vertex id out of range")

        alive_before = t.alive_mask()
        up_s: list[int] = []
        up_d: list[int] = []
        up_w: list[float] = []
        has_insert = False
        has_decrease = False

        # deletes — effective iff the edge was live before
        for u, v in zip(del_s.tolist(), del_d.tolist()):
            w_old = t.edge_weight(u, v)
            if w_old is not None:
                up_s.append(u)
                up_d.append(v)
                up_w.append(w_old)
        t.delete_edges(del_s, del_d)

        # reweights — classify by old live weight (NaN = missing = no-op;
        # a stored-but-dead-target hit does not change the snapshot)
        old_w = t.reweight_edges(rw_s, rw_d, rw_w)
        for i in range(rw_s.size):
            if not np.isfinite(old_w[i]) or not alive_before[rw_d[i]]:
                continue
            if rw_w[i] > old_w[i]:
                up_s.append(int(rw_s[i]))
                up_d.append(int(rw_d[i]))
                up_w.append(float(old_w[i]))
            elif rw_w[i] < old_w[i]:
                has_decrease = True

        # inserts — dedup keeps the lighter weight, so inserting over an
        # existing lighter edge is a no-op and over a heavier one is a
        # decrease; toward a dead target it is stored but not live
        for i in range(ins_s.size):
            u, v = int(ins_s[i]), int(ins_d[i])
            if u == v or not alive_before[v]:
                continue  # self-loops are dropped, dead targets stored-dead
            cur = t.edge_weight(u, v)
            if cur is None:
                has_insert = True
            elif float(ins_w[i]) < cur:
                has_decrease = True
        t.insert_edges(ins_s, ins_d, ins_w)

        # tombstones — only newly-killed vertices count
        newly_dead = tomb[alive_before[tomb]] if tomb.size else tomb
        t.delete_vertices(tomb)

        self._version += 1
        summary = MutationSummary(
            version=self._version,
            touched=batch.touched_vertices(),
            has_insert=has_insert,
            has_decrease=has_decrease,
            up_src=np.asarray(up_s, dtype=np.int64),
            up_dst=np.asarray(up_d, dtype=np.int64),
            up_old_w=np.asarray(up_w, dtype=np.float64),
            tombstoned=np.unique(newly_dead),
        )
        self._snapshot = Snapshot(
            version=self._version, graph=t.to_csr(), summary=summary
        )
        return self._snapshot
