"""Dynamic-graph baseline: a Terrace-like hierarchical container (Fig 12)."""

from repro.dyn.terrace import TerraceGraph

__all__ = ["TerraceGraph"]
