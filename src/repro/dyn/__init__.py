"""Dynamic graphs: the Terrace container (Fig 12) and live-graph serving.

:class:`TerraceGraph` is the hierarchical mutable spine;
:class:`LiveGraph` wraps it with monotone-versioned immutable snapshots;
:class:`MutationBatch` / :class:`IncidentStream` are the mutation-stream
API the load harness feeds through
:meth:`QueryServer.apply_mutations <repro.serve.QueryServer.apply_mutations>`.
"""

from repro.dyn.live import LiveGraph, Snapshot
from repro.dyn.stream import IncidentStream, MutationBatch, MutationSummary
from repro.dyn.terrace import TerraceGraph

__all__ = [
    "TerraceGraph",
    "LiveGraph",
    "Snapshot",
    "MutationBatch",
    "MutationSummary",
    "IncidentStream",
]
