"""``peek-dyn`` — live-graph serving smoke runs.

One subcommand::

    peek-dyn smoke --graph LJ --scale tiny --seed 0 \\
        --json /tmp/dyn.json --summary /tmp/dyn.txt

drives a :class:`~repro.serve.QueryServer` built over a
:class:`~repro.dyn.live.LiveGraph` with a seeded incident stream
(:class:`~repro.dyn.stream.IncidentStream`) and a hot query pool on the
simulated clock, then writes a deterministic JSON payload (run metrics,
server counters, cache/reuse accounting, final graph version) and a
short text summary.  Everything downstream of the seeds is reproducible
byte-for-byte — the CI ``dyn-serving`` job runs the smoke twice and
``cmp``'s the artifacts.

The query content cycles a small *hot pool* of ``(source, target, k)``
tuples rather than sampling uniformly: repeated queries are what the
versioned prune-bound reuse path exists for, so the smoke demonstrates a
non-zero reuse rate by construction.
"""

from __future__ import annotations

import argparse
import json
import sys
from random import Random

from repro.dyn.live import LiveGraph
from repro.dyn.stream import IncidentStream
from repro.graph.suite import SCALES, suite_graph
from repro.load.arrivals import PoissonArrivals
from repro.load.harness import LoadHarness
from repro.serve.query import Query
from repro.serve.server import QueryServer

__all__ = ["main", "run_smoke"]

#: decorrelate the three seeded streams of one smoke run
POOL_STREAM_OFFSET = 0x517CC1B7
STREAM_SEED_OFFSET = 0x2545F491


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="peek-dyn",
        description="Live-graph serving smoke: seeded mutation stream + "
        "hot query pool on simulated time.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    smoke = sub.add_parser("smoke", help="run the seeded serving smoke")
    smoke.add_argument("--graph", default="LJ", help="suite graph name")
    smoke.add_argument("--scale", default="tiny", choices=SCALES)
    smoke.add_argument("--seed", type=int, default=0, help="master seed")
    smoke.add_argument("--horizon", type=float, default=4.0, help="simulated seconds")
    smoke.add_argument("--qps", type=float, default=40.0, help="query arrival rate")
    smoke.add_argument(
        "--mutation-rate", type=float, default=2.0, help="mutation batches per second"
    )
    smoke.add_argument("--pool", type=int, default=6, help="hot query pool size")
    smoke.add_argument(
        "--kernel", default="dijkstra", choices=("delta", "dijkstra")
    )
    smoke.add_argument("--timeout", type=float, default=None, help="per-query budget")
    smoke.add_argument("--json", default="BENCH_dyn_smoke.json", help="payload path")
    smoke.add_argument("--summary", default="", help="text summary path ('' = skip)")
    smoke.add_argument("--quiet", action="store_true")
    return p


def run_smoke(
    *,
    graph_name: str = "LJ",
    scale: str = "tiny",
    seed: int = 0,
    horizon: float = 4.0,
    qps: float = 40.0,
    mutation_rate: float = 2.0,
    pool_size: int = 6,
    kernel: str = "dijkstra",
    timeout: float | None = None,
    stream_kwargs: dict | None = None,
) -> dict:
    """One deterministic smoke run; returns the JSON-ready payload.

    ``stream_kwargs`` are forwarded to
    :class:`~repro.dyn.stream.IncidentStream` (the benchmark uses this to
    sweep incident mixes, e.g. an increase-only stream with
    ``p_clear=0, p_reopen=0``).
    """
    graph = suite_graph(graph_name, scale)
    live = LiveGraph(graph)
    server = QueryServer(live, kernel=kernel)

    n = graph.num_vertices
    rng_pool = Random(seed + POOL_STREAM_OFFSET)
    pool: list[tuple[int, int, int]] = []
    while len(pool) < pool_size:
        s, t = rng_pool.randrange(n), rng_pool.randrange(n)
        if s != t:
            pool.append((s, t, rng_pool.choice((2, 4, 8))))

    rng_arrivals = Random(seed)
    queries = []
    for i, at in enumerate(
        PoissonArrivals(rate=qps).arrivals(rng_arrivals, horizon)
    ):
        s, t, k = pool[i % len(pool)]
        queries.append(
            Query(
                source=s,
                target=t,
                k=k,
                timeout=timeout,
                request_id=f"q{i:06d}",
                issued_at=at,
            )
        )

    stream = IncidentStream(
        seed=seed + STREAM_SEED_OFFSET,
        rate=mutation_rate,
        **(stream_kwargs or {}),
    )
    harness = LoadHarness(server, mix=None, timeout=timeout, seed=seed)
    report = harness.run(
        queries, horizon=horizon, mutations=stream.batches(live, horizon)
    )

    info = server.batch.cache_info
    reuse_total = info["prune_reused"] + info["prune_cold"]
    return {
        "benchmark": "dyn_serving_smoke",
        "graph": graph_name,
        "scale": scale,
        "seed": seed,
        "horizon": horizon,
        "qps": qps,
        "mutation_rate": mutation_rate,
        "pool": pool_size,
        "kernel": kernel,
        "metrics": report.metrics(),
        "server_counters": dict(sorted(server.counters.items())),
        "cache_info": dict(sorted(info.items())),
        "prune_reuse_rate": round(info["prune_reused"] / reuse_total, 6)
        if reuse_total
        else 0.0,
        "final_version": live.version,
    }


def _summary_lines(payload: dict) -> list[str]:
    m = payload["metrics"]
    info = payload["cache_info"]
    return [
        "dyn-serving smoke "
        f"({payload['graph']}/{payload['scale']}, seed {payload['seed']})",
        f"  queries served      {m['served']}/{m['queries']}",
        f"  mutation batches    {m['mutation_batches']} "
        f"(final version {payload['final_version']})",
        f"  prune reuse rate    {payload['prune_reuse_rate']} "
        f"({info['prune_reused']} reused / {info['prune_cold']} cold)",
        f"  cache entries       {info['retained']} retained, "
        f"{info['invalidated']} invalidated across rebinds",
    ]


def _cmd_smoke(args: argparse.Namespace) -> int:
    payload = run_smoke(
        graph_name=args.graph,
        scale=args.scale,
        seed=args.seed,
        horizon=args.horizon,
        qps=args.qps,
        mutation_rate=args.mutation_rate,
        pool_size=args.pool,
        kernel=args.kernel,
        timeout=args.timeout,
    )
    with open(args.json, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    lines = _summary_lines(payload)
    if args.summary:
        with open(args.summary, "w") as fh:
            fh.write("\n".join(lines) + "\n")
    if not args.quiet:
        print("\n".join(lines))
        print(f"-> {args.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _cmd_smoke(args)


if __name__ == "__main__":
    sys.exit(main())
