"""A Terrace-like hierarchical dynamic-graph container (paper §7.7).

Terrace (Pandey et al., SIGMOD 2021) stores a vertex's neighbours in one of
several data structures *chosen by degree*: a small in-place buffer for
low-degree vertices, a packed-memory-array level for medium degrees, and a
B-tree for the heaviest vertices.  Point updates are cheap (amortised
polylog), but the structure pays per-edge costs on updates, whereas CSR
regeneration pays a flat cost proportional to what *remains*.

Figure 12 compares exactly that trade-off against PeeK's adaptive
compaction, so this reproduction implements the same three-level shape:

* level 0 — plain Python list of ``(target, weight)`` pairs (≤ 8);
* level 1 — a pair of sorted NumPy arrays (≤ 512);
* level 2 — a list of bounded sorted chunks (a flattened B-tree).

The container supports batched edge insertion/deletion/reweighting and
lazy vertex tombstoning (what the Fig 12 workload and the live-graph
serving path need), neighbour iteration for SSSP, and CSR snapshot
extraction (:meth:`TerraceGraph.to_csr`) for the versioned serving layer
(:mod:`repro.dyn.live`).

Update semantics (fixed and now locked down by regression tests):

* every batched update validates its inputs up front — ``src``/``dst``
  in range (:class:`~repro.errors.VertexError`) and weights finite and
  strictly positive (:class:`~repro.errors.InvalidWeightError`, the
  paper's Definition 1) — so a bad target can never be stored and later
  crash ``neighbors()``;
* updates on a **tombstoned source raise** :class:`~repro.errors.VertexError`
  — silently mutating hidden adjacency used to drift ``num_edges``
  (inserts on a dead source inflated the count while ``neighbors()``
  stayed empty);
* inserting an edge *to* a tombstoned target is allowed (it is stored,
  like any edge that later loses its target) but it is never *live*:
  ``neighbors()`` filters it and :meth:`num_live_edges` does not count
  it; ``num_edges`` remains the stored upper bound;
* cost counters charge **actual work**: ``stats.point_deletes`` counts
  edges that really existed, and ``stats.elements_moved`` is only
  charged for vertices whose structure was actually rebuilt.

:meth:`check_invariants` audits the accounting; the property tests in
``tests/dyn`` run it after every mutation batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidWeightError, VertexError
from repro.graph.csr import CSRGraph
from repro.paths import INF
from repro.sssp.result import SSSPResult, SSSPStats

__all__ = ["TerraceGraph"]

_SMALL_CAP = 8
_MEDIUM_CAP = 512
_CHUNK = 256

#: shared one-element prefix for duplicate-run masks (hoisted so the
#: per-vertex rebuild loop allocates nothing O(n); see RPR003)
_TRUE1 = np.ones(1, dtype=bool)


@dataclass
class _Small:
    pairs: list  # [(target, weight)]


@dataclass
class _Medium:
    targets: np.ndarray
    weights: np.ndarray


@dataclass
class _Large:
    chunks: list  # list[_Medium-like chunks, sorted by first target]


@dataclass
class TerraceStats:
    """Update-cost counters (the Fig 12 'compact' cost of Terrace)."""

    point_deletes: int = 0
    point_inserts: int = 0
    point_reweights: int = 0
    level_migrations: int = 0
    elements_moved: int = 0


class TerraceGraph:
    """Hierarchical per-vertex adjacency with degree-adaptive levels."""

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise VertexError("num_vertices must be non-negative")
        self._n = num_vertices
        self._adj: list = [_Small(pairs=[]) for _ in range(num_vertices)]
        self._alive = np.ones(num_vertices, dtype=bool)
        self._m = 0
        self.stats = TerraceStats()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, graph: CSRGraph) -> "TerraceGraph":
        """Bulk-load from a CSR graph (choosing each vertex's level once)."""
        tg = cls(graph.num_vertices)
        for v in range(graph.num_vertices):  # contracts: disable=CTR201 (bounded)
            targets, weights = graph.neighbors(v)
            deg = targets.size
            if deg == 0:
                continue
            order = np.argsort(targets, kind="stable")
            t, w = targets[order], weights[order]
            tg._adj[v] = tg._make_level(t, w)
            tg._m += deg
        return tg

    @staticmethod
    def _make_level(targets: np.ndarray, weights: np.ndarray):
        deg = targets.size
        if deg <= _SMALL_CAP:
            return _Small(pairs=list(zip(targets.tolist(), weights.tolist())))
        if deg <= _MEDIUM_CAP:
            return _Medium(targets=targets.copy(), weights=weights.copy())
        chunks = []
        for i in range(0, deg, _CHUNK):
            chunks.append(
                _Medium(
                    targets=targets[i : i + _CHUNK].copy(),
                    weights=weights[i : i + _CHUNK].copy(),
                )
            )
        return _Large(chunks=chunks)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        """Stored out-edge count of live vertices.

        After lazy vertex deletion this is an upper bound on the *live*
        edge count: edges pointing at tombstoned vertices remain stored
        (and are filtered at query time), exactly as in Terrace.
        """
        return self._m

    def is_alive(self, v: int) -> bool:
        self._check(v)
        return bool(self._alive[v])

    def alive_mask(self) -> np.ndarray:
        """A copy of the vertex liveness mask (True = not tombstoned)."""
        return self._alive.copy()

    def degree(self, v: int) -> int:
        self._check(v)
        level = self._adj[v]
        if isinstance(level, _Small):
            return len(level.pairs)
        if isinstance(level, _Medium):
            return int(level.targets.size)
        return sum(int(c.targets.size) for c in level.chunks)

    def neighbors(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(targets, weights)`` of ``v``'s live out-edges."""
        self._check(v)
        if not self._alive[v]:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        level = self._adj[v]
        if isinstance(level, _Small):
            if not level.pairs:
                return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
            t = np.fromiter((p[0] for p in level.pairs), dtype=np.int64)
            w = np.fromiter((p[1] for p in level.pairs), dtype=np.float64)
        elif isinstance(level, _Medium):
            t, w = level.targets, level.weights
        else:
            t = np.concatenate([c.targets for c in level.chunks])
            w = np.concatenate([c.weights for c in level.chunks])
        live = self._alive[t]
        if live.all():
            return t, w
        return t[live], w[live]

    def has_edge(self, u: int, v: int) -> bool:
        t, _ = self.neighbors(u)
        return bool(np.any(t == v))

    def edge_weight(self, u: int, v: int) -> float | None:
        """The live weight of edge ``u → v``, or ``None`` when absent."""
        t, w = self.neighbors(u)
        mask = t == v
        if not np.any(mask):
            return None
        return float(w[mask][0])

    def num_live_edges(self) -> int:
        """Exact count of live edges (live source *and* live target).

        O(m): this is the per-edge liveness scan ``num_edges`` avoids —
        the stored count stays the cheap upper bound, this is the truth.
        """
        return sum(
            int(self.neighbors(v)[0].size)
            for v in range(self._n)
            if self._alive[v]
        )

    def level_name(self, v: int) -> str:
        """Which level stores ``v``'s adjacency ("small"/"medium"/"large")."""
        level = self._adj[v]
        if isinstance(level, _Small):
            return "small"
        if isinstance(level, _Medium):
            return "medium"
        return "large"

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def _check_batch(
        self, src: np.ndarray, dst: np.ndarray, weights: np.ndarray | None
    ) -> None:
        """Validate one update batch up front, before any state changes.

        Batches are applied per-source-vertex as a sequence of rebuilds,
        so a mid-batch failure would leave the container half-mutated;
        validating everything first keeps every update all-or-nothing.
        Sources must additionally be *alive* — updating a tombstoned
        vertex's hidden adjacency would silently drift the edge
        accounting (the regression this check pins down).
        """
        if src.shape != dst.shape:
            raise ValueError("src/dst must be parallel arrays")
        for name, ids in (("src", src), ("dst", dst)):
            if ids.size and (int(ids.min()) < 0 or int(ids.max()) >= self._n):
                bad = ids[(ids < 0) | (ids >= self._n)][0]
                raise VertexError(
                    f"{name} vertex {int(bad)} out of range [0, {self._n})"
                )
        if src.size:
            dead = ~self._alive[src]
            if dead.any():
                raise VertexError(
                    f"source vertex {int(src[dead][0])} is tombstoned; "
                    "updates on a dead source are rejected"
                )
        if weights is not None:
            if weights.shape != src.shape:
                raise ValueError("weights must parallel src/dst")
            bad = ~np.isfinite(weights) | (weights <= 0.0)
            if bad.any():
                raise InvalidWeightError(
                    f"edge weight {float(weights[bad][0])} is not finite and "
                    "strictly positive (paper Definition 1)"
                )

    def insert_edges(self, src, dst, weights) -> None:
        """Insert a batch of edges (duplicates allowed, kept lighter one).

        ``dst`` is range-checked and weights must be finite and strictly
        positive *before* anything is stored; the source vertices must be
        alive (:class:`~repro.errors.VertexError` otherwise).  Inserting
        an edge toward a tombstoned target is legal — the edge is stored
        (and counted in the stored upper bound ``num_edges``) but stays
        invisible to ``neighbors()`` until the target is resurrected by a
        future snapshot reload.  Self-loops are dropped (and not charged):
        the CSR substrate drops them too (a positive-weight loop can never
        lie on a simple shortest path), and the two conventions must
        agree for snapshot extraction to round-trip.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        self._check_batch(src, dst, weights)
        proper = src != dst
        if not proper.all():
            src, dst, weights = src[proper], dst[proper], weights[proper]
        order = np.argsort(src, kind="stable")
        src, dst, weights = src[order], dst[order], weights[order]
        bounds = np.searchsorted(src, np.arange(self._n + 1))
        for v in np.unique(src).tolist():
            lo, hi = bounds[v], bounds[v + 1]
            old_t, old_w = self._raw(v)
            add_t, add_w = dst[lo:hi], weights[lo:hi]
            merged_t = np.concatenate([old_t, add_t])
            merged_w = np.concatenate([old_w, add_w])
            o = np.lexsort((merged_w, merged_t))
            merged_t, merged_w = merged_t[o], merged_w[o]
            first = np.concatenate((_TRUE1, merged_t[1:] != merged_t[:-1]))
            self._m += int(first.sum()) - old_t.size
            self._replace(v, merged_t[first], merged_w[first])
            self.stats.point_inserts += int(add_t.size)

    def delete_edges(self, src, dst) -> int:
        """Delete a batch of ``(src, dst)`` edges; returns how many existed.

        Deletions are grouped per source vertex and applied as one rebuild
        of that vertex's structure — the amortised-batch behaviour of a
        PMA/B-tree level.  The per-edge accounting charges **actual**
        work: ``stats.point_deletes`` counts edges that really existed
        (requesting a missing edge is free) and ``stats.elements_moved``
        is charged only for vertices whose structure was rebuilt — the
        Figure 12 cost comparison depends on this honesty.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        self._check_batch(src, dst, None)
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        removed = 0
        bounds = np.searchsorted(src, np.arange(self._n + 1))
        for v in np.unique(src).tolist():
            lo, hi = bounds[v], bounds[v + 1]
            kill = np.unique(dst[lo:hi])
            old_t, old_w = self._raw(v)
            if old_t.size == 0:
                continue
            keep = ~np.isin(old_t, kill)
            gone = int(old_t.size - keep.sum())
            if gone:
                self._replace(v, old_t[keep], old_w[keep])
                removed += gone
                self._m -= gone
                self.stats.point_deletes += gone
                self.stats.elements_moved += int(old_t.size)
        return removed

    def reweight_edges(self, src, dst, weights) -> np.ndarray:
        """Set the weight of existing edges; returns the *old* weights.

        The returned ``float64`` array parallels the inputs: position
        ``i`` holds the previous weight of edge ``(src[i], dst[i])``, or
        ``NaN`` when that edge does not exist (missing edges are left
        untouched — a reweight is never an insert).  The old weights are
        what the live-graph layer needs to classify a mutation batch as
        weight-increase-only for the prune-bound reuse certificate
        (:func:`repro.core.pruning.prune_reuse_certificate`).
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        self._check_batch(src, dst, weights)
        old = np.full(src.size, np.nan, dtype=np.float64)
        order = np.argsort(src, kind="stable")
        bounds = np.searchsorted(src[order], np.arange(self._n + 1))
        for v in np.unique(src).tolist():
            pos = order[bounds[v] : bounds[v + 1]]
            old_t, old_w = self._raw(v)
            if old_t.size == 0:
                continue
            idx = np.searchsorted(old_t, dst[pos])
            found = (idx < old_t.size) & (old_t[np.minimum(idx, old_t.size - 1)] == dst[pos])
            if not found.any():
                continue
            hit_pos = pos[found]
            hit_idx = idx[found]
            old[hit_pos] = old_w[hit_idx]
            new_w = old_w.copy()
            new_w[hit_idx] = weights[hit_pos]
            self._replace(v, old_t, new_w)
            self.stats.point_reweights += int(hit_pos.size)
            self.stats.elements_moved += int(old_t.size)
        return old

    def delete_vertices(self, vertices) -> None:
        """Mark vertices dead; their in/out edges disappear from queries.

        Terrace-style lazy vertex deletion: the tombstone costs O(1), the
        per-edge cost is paid by later traversals (mirrored by the
        ``neighbors`` liveness filter).  Already-dead vertices are a
        no-op and are not charged to ``stats.point_deletes``.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size and (
            vertices.min() < 0 or vertices.max() >= self._n
        ):
            raise VertexError("vertex id out of range")
        killed = 0
        for v in vertices.tolist():
            if self._alive[v]:
                self._m -= self.degree(v)
                self._adj[v] = _Small(pairs=[])
                killed += 1
        self._alive[vertices] = False
        self.stats.point_deletes += killed

    # ------------------------------------------------------------------
    # algorithms
    # ------------------------------------------------------------------
    def sssp(self, source: int) -> SSSPResult:
        """Dijkstra over the hierarchical structure.

        Deliberately implemented against :meth:`neighbors` (not a flat edge
        array): traversing a pointer-rich container is exactly the constant-
        factor cost Terrace pays on scans, which Figure 12's "SSSP" series
        reflects.
        """
        import heapq

        self._check(source)
        if not self._alive[source]:
            raise VertexError(f"source {source} is deleted")
        dist = np.full(self._n, INF, dtype=np.float64)
        parent = np.full(self._n, -1, dtype=np.int64)
        settled = np.zeros(self._n, dtype=bool)
        stats = SSSPStats()
        dist[source] = 0.0
        parent[source] = source
        heap = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if settled[u]:
                continue
            settled[u] = True
            stats.vertices_settled += 1
            targets, weights = self.neighbors(u)
            for v, w in zip(targets.tolist(), weights.tolist()):
                if settled[v]:
                    continue
                stats.edges_relaxed += 1
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
        stats.phases = stats.vertices_settled
        return SSSPResult(source=source, dist=dist, parent=parent, stats=stats)

    def to_csr(self) -> CSRGraph:
        """Extract an immutable CSR snapshot of the *live* graph.

        The snapshot has the same vertex space (tombstoned vertices
        become isolated — ids stay stable across versions, which is what
        lets cached SSSP results survive snapshots) and contains exactly
        the live edges in stored (target-sorted) order, so two extractions
        of the same state are bitwise identical.  The serving layer stamps
        each snapshot with a monotone version id
        (:class:`repro.dyn.live.LiveGraph`).
        """
        degrees = np.zeros(self._n, dtype=np.int64)
        parts_t: list[np.ndarray] = []
        parts_w: list[np.ndarray] = []
        for v in range(self._n):
            if not self._alive[v]:
                continue
            t, w = self.neighbors(v)
            if t.size:
                degrees[v] = t.size
                parts_t.append(t)
                parts_w.append(w)
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        if parts_t:
            indices = np.concatenate(parts_t)
            weights = np.concatenate(parts_w)
        else:
            indices = np.empty(0, dtype=np.int64)
            weights = np.empty(0, dtype=np.float64)
        # weights were validated positive-finite on the way in and
        # targets range-checked, so the CSR invariants hold by
        # construction (SAN-CSR audits this under sanitizers)
        return CSRGraph(indptr, indices, weights, check=False)

    def check_invariants(self) -> None:
        """Audit the container's accounting; raises ``AssertionError``.

        Checks, in order: ``num_edges`` equals the stored out-degree sum
        over live vertices; tombstoned vertices store nothing; all stored
        targets are in range with finite positive weights and no
        duplicate targets; ``neighbors()`` is exactly the stored list
        filtered by target liveness.  The dyn property tests call this
        after every mutation batch.
        """
        stored = 0
        for v in range(self._n):
            t, w = self._raw(v)
            if not self._alive[v]:
                assert t.size == 0, f"tombstoned vertex {v} stores {t.size} edges"
                continue
            stored += t.size
            if t.size:
                assert 0 <= int(t.min()) and int(t.max()) < self._n, (
                    f"vertex {v} stores an out-of-range target"
                )
                assert np.all(t[1:] >= t[:-1]), (
                    f"vertex {v}'s stored targets are not sorted"
                )
                assert np.all(np.isfinite(w)) and float(w.min()) > 0.0, (
                    f"vertex {v} stores a non-positive or non-finite weight"
                )
            live_t, live_w = self.neighbors(v)
            keep = self._alive[t] if t.size else np.empty(0, dtype=bool)
            assert np.array_equal(live_t, t[keep]) and np.array_equal(
                live_w, w[keep]
            ), f"vertex {v}: neighbors() disagrees with stored liveness filter"
        assert stored == self._m, (
            f"num_edges drifted: stored {stored}, counted {self._m}"
        )

    def memory_bytes(self) -> int:
        """Approximate container footprint."""
        total = self._alive.nbytes
        for level in self._adj:
            if isinstance(level, _Small):
                total += 48 * len(level.pairs)
            elif isinstance(level, _Medium):
                total += level.targets.nbytes + level.weights.nbytes
            else:
                total += sum(
                    c.targets.nbytes + c.weights.nbytes for c in level.chunks
                )
        return int(total)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise VertexError(f"vertex {v} out of range [0, {self._n})")

    def _raw(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """The stored adjacency of ``v``, ignoring target liveness."""
        level = self._adj[v]
        if isinstance(level, _Small):
            if not level.pairs:
                return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
            return (
                np.fromiter((p[0] for p in level.pairs), dtype=np.int64),
                np.fromiter((p[1] for p in level.pairs), dtype=np.float64),
            )
        if isinstance(level, _Medium):
            return level.targets, level.weights
        return (
            np.concatenate([c.targets for c in level.chunks]),
            np.concatenate([c.weights for c in level.chunks]),
        )

    def _replace(self, v: int, targets: np.ndarray, weights: np.ndarray) -> None:
        old = self._adj[v]
        new = self._make_level(targets, weights)
        if type(old) is not type(new):
            self.stats.level_migrations += 1
        self._adj[v] = new
