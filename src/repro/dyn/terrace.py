"""A Terrace-like hierarchical dynamic-graph container (paper §7.7).

Terrace (Pandey et al., SIGMOD 2021) stores a vertex's neighbours in one of
several data structures *chosen by degree*: a small in-place buffer for
low-degree vertices, a packed-memory-array level for medium degrees, and a
B-tree for the heaviest vertices.  Point updates are cheap (amortised
polylog), but the structure pays per-edge costs on updates, whereas CSR
regeneration pays a flat cost proportional to what *remains*.

Figure 12 compares exactly that trade-off against PeeK's adaptive
compaction, so this reproduction implements the same three-level shape:

* level 0 — plain Python list of ``(target, weight)`` pairs (≤ 8);
* level 1 — a pair of sorted NumPy arrays (≤ 512);
* level 2 — a list of bounded sorted chunks (a flattened B-tree).

The container supports batched edge/vertex deletion (what the Fig 12
workload needs), neighbour iteration for SSSP, and insertion (used by the
unit tests to verify the level-migration machinery both ways).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import VertexError
from repro.graph.csr import CSRGraph
from repro.paths import INF
from repro.sssp.result import SSSPResult, SSSPStats

__all__ = ["TerraceGraph"]

_SMALL_CAP = 8
_MEDIUM_CAP = 512
_CHUNK = 256


@dataclass
class _Small:
    pairs: list  # [(target, weight)]


@dataclass
class _Medium:
    targets: np.ndarray
    weights: np.ndarray


@dataclass
class _Large:
    chunks: list  # list[_Medium-like chunks, sorted by first target]


@dataclass
class TerraceStats:
    """Update-cost counters (the Fig 12 'compact' cost of Terrace)."""

    point_deletes: int = 0
    point_inserts: int = 0
    level_migrations: int = 0
    elements_moved: int = 0


class TerraceGraph:
    """Hierarchical per-vertex adjacency with degree-adaptive levels."""

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise VertexError("num_vertices must be non-negative")
        self._n = num_vertices
        self._adj: list = [_Small(pairs=[]) for _ in range(num_vertices)]
        self._alive = np.ones(num_vertices, dtype=bool)
        self._m = 0
        self.stats = TerraceStats()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, graph: CSRGraph) -> "TerraceGraph":
        """Bulk-load from a CSR graph (choosing each vertex's level once)."""
        tg = cls(graph.num_vertices)
        for v in range(graph.num_vertices):
            targets, weights = graph.neighbors(v)
            deg = targets.size
            if deg == 0:
                continue
            order = np.argsort(targets, kind="stable")
            t, w = targets[order], weights[order]
            tg._adj[v] = tg._make_level(t, w)
            tg._m += deg
        return tg

    @staticmethod
    def _make_level(targets: np.ndarray, weights: np.ndarray):
        deg = targets.size
        if deg <= _SMALL_CAP:
            return _Small(pairs=list(zip(targets.tolist(), weights.tolist())))
        if deg <= _MEDIUM_CAP:
            return _Medium(targets=targets.copy(), weights=weights.copy())
        chunks = []
        for i in range(0, deg, _CHUNK):
            chunks.append(
                _Medium(
                    targets=targets[i : i + _CHUNK].copy(),
                    weights=weights[i : i + _CHUNK].copy(),
                )
            )
        return _Large(chunks=chunks)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        """Stored out-edge count of live vertices.

        After lazy vertex deletion this is an upper bound on the *live*
        edge count: edges pointing at tombstoned vertices remain stored
        (and are filtered at query time), exactly as in Terrace.
        """
        return self._m

    def is_alive(self, v: int) -> bool:
        self._check(v)
        return bool(self._alive[v])

    def degree(self, v: int) -> int:
        self._check(v)
        level = self._adj[v]
        if isinstance(level, _Small):
            return len(level.pairs)
        if isinstance(level, _Medium):
            return int(level.targets.size)
        return sum(int(c.targets.size) for c in level.chunks)

    def neighbors(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(targets, weights)`` of ``v``'s live out-edges."""
        self._check(v)
        if not self._alive[v]:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        level = self._adj[v]
        if isinstance(level, _Small):
            if not level.pairs:
                return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
            t = np.fromiter((p[0] for p in level.pairs), dtype=np.int64)
            w = np.fromiter((p[1] for p in level.pairs), dtype=np.float64)
        elif isinstance(level, _Medium):
            t, w = level.targets, level.weights
        else:
            t = np.concatenate([c.targets for c in level.chunks])
            w = np.concatenate([c.weights for c in level.chunks])
        live = self._alive[t]
        if live.all():
            return t, w
        return t[live], w[live]

    def has_edge(self, u: int, v: int) -> bool:
        t, _ = self.neighbors(u)
        return bool(np.any(t == v))

    def level_name(self, v: int) -> str:
        """Which level stores ``v``'s adjacency ("small"/"medium"/"large")."""
        level = self._adj[v]
        if isinstance(level, _Small):
            return "small"
        if isinstance(level, _Medium):
            return "medium"
        return "large"

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert_edges(self, src, dst, weights) -> None:
        """Insert a batch of edges (duplicates allowed, kept lighter one)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        order = np.argsort(src, kind="stable")
        src, dst, weights = src[order], dst[order], weights[order]
        bounds = np.searchsorted(src, np.arange(self._n + 1))
        for v in np.unique(src).tolist():
            self._check(v)
            lo, hi = bounds[v], bounds[v + 1]
            old_t, old_w = self._raw(v)
            add_t, add_w = dst[lo:hi], weights[lo:hi]
            merged_t = np.concatenate([old_t, add_t])
            merged_w = np.concatenate([old_w, add_w])
            o = np.lexsort((merged_w, merged_t))
            merged_t, merged_w = merged_t[o], merged_w[o]
            first = np.ones(merged_t.size, dtype=bool)
            first[1:] = merged_t[1:] != merged_t[:-1]
            self._m += int(first.sum()) - old_t.size
            self._replace(v, merged_t[first], merged_w[first])
            self.stats.point_inserts += int(add_t.size)

    def delete_edges(self, src, dst) -> int:
        """Delete a batch of ``(src, dst)`` edges; returns how many existed.

        Deletions are grouped per source vertex and applied as one rebuild
        of that vertex's structure — the amortised-batch behaviour of a
        PMA/B-tree level.  The per-edge accounting (``stats.point_deletes``,
        ``stats.elements_moved``) is what the Figure 12 comparison charges.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src/dst must be parallel arrays")
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        removed = 0
        bounds = np.searchsorted(src, np.arange(self._n + 1))
        for v in np.unique(src).tolist():
            self._check(v)
            lo, hi = bounds[v], bounds[v + 1]
            kill = np.unique(dst[lo:hi])
            old_t, old_w = self._raw(v)
            if old_t.size == 0:
                continue
            keep = ~np.isin(old_t, kill)
            gone = int(old_t.size - keep.sum())
            if gone:
                self._replace(v, old_t[keep], old_w[keep])
                removed += gone
                self._m -= gone
            self.stats.point_deletes += int(kill.size)
            self.stats.elements_moved += int(old_t.size)
        return removed

    def delete_vertices(self, vertices) -> None:
        """Mark vertices dead; their in/out edges disappear from queries.

        Terrace-style lazy vertex deletion: the tombstone costs O(1), the
        per-edge cost is paid by later traversals (mirrored by the
        ``neighbors`` liveness filter).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size and (
            vertices.min() < 0 or vertices.max() >= self._n
        ):
            raise VertexError("vertex id out of range")
        for v in vertices.tolist():
            if self._alive[v]:
                self._m -= self.degree(v)
                self._adj[v] = _Small(pairs=[])
        self._alive[vertices] = False
        self.stats.point_deletes += int(vertices.size)

    # ------------------------------------------------------------------
    # algorithms
    # ------------------------------------------------------------------
    def sssp(self, source: int) -> SSSPResult:
        """Dijkstra over the hierarchical structure.

        Deliberately implemented against :meth:`neighbors` (not a flat edge
        array): traversing a pointer-rich container is exactly the constant-
        factor cost Terrace pays on scans, which Figure 12's "SSSP" series
        reflects.
        """
        import heapq

        self._check(source)
        if not self._alive[source]:
            raise VertexError(f"source {source} is deleted")
        dist = np.full(self._n, INF, dtype=np.float64)
        parent = np.full(self._n, -1, dtype=np.int64)
        settled = np.zeros(self._n, dtype=bool)
        stats = SSSPStats()
        dist[source] = 0.0
        parent[source] = source
        heap = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if settled[u]:
                continue
            settled[u] = True
            stats.vertices_settled += 1
            targets, weights = self.neighbors(u)
            for v, w in zip(targets.tolist(), weights.tolist()):
                if settled[v]:
                    continue
                stats.edges_relaxed += 1
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
        stats.phases = stats.vertices_settled
        return SSSPResult(source=source, dist=dist, parent=parent, stats=stats)

    def memory_bytes(self) -> int:
        """Approximate container footprint."""
        total = self._alive.nbytes
        for level in self._adj:
            if isinstance(level, _Small):
                total += 48 * len(level.pairs)
            elif isinstance(level, _Medium):
                total += level.targets.nbytes + level.weights.nbytes
            else:
                total += sum(
                    c.targets.nbytes + c.weights.nbytes for c in level.chunks
                )
        return int(total)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise VertexError(f"vertex {v} out of range [0, {self._n})")

    def _raw(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """The stored adjacency of ``v``, ignoring target liveness."""
        level = self._adj[v]
        if isinstance(level, _Small):
            if not level.pairs:
                return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
            return (
                np.fromiter((p[0] for p in level.pairs), dtype=np.int64),
                np.fromiter((p[1] for p in level.pairs), dtype=np.float64),
            )
        if isinstance(level, _Medium):
            return level.targets, level.weights
        return (
            np.concatenate([c.targets for c in level.chunks]),
            np.concatenate([c.weights for c in level.chunks]),
        )

    def _replace(self, v: int, targets: np.ndarray, weights: np.ndarray) -> None:
        old = self._adj[v]
        new = self._make_level(targets, weights)
        if type(old) is not type(new):
            self.stats.level_migrations += 1
        self._adj[v] = new
