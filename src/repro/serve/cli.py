"""``peek-serve`` — drive the serving layer from the command line.

A smoke/load driver for :class:`~repro.serve.QueryServer`: runs a batch of
seeded random queries against a benchmark-suite graph under a per-query
budget, optionally with an injected fault campaign, and prints the outcome
distribution.

Examples::

    peek-serve --graph GT --scale tiny --queries 20 --timeout 0.5 --k 8
    peek-serve --graph ER --queries 10 --inject prune.scan:timeout --seed 7
"""

from __future__ import annotations

import argparse

from repro.serve.faults import FAULT_KINDS, FaultInjector, FaultRule, parse_fault_spec
from repro.serve.server import OUTCOMES, QueryServer

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="peek-serve",
        description="Serve seeded random KSP queries under a deadline.",
    )
    p.add_argument("--graph", default="GT", help="suite graph name (default GT)")
    p.add_argument(
        "--scale",
        default="tiny",
        choices=("tiny", "small", "medium"),
        help="benchmark suite scale (default tiny)",
    )
    p.add_argument("--queries", type=int, default=10, help="query count")
    p.add_argument("--k", type=int, default=8, help="paths per query")
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-query budget in seconds (default: unbounded)",
    )
    p.add_argument(
        "--kernel",
        default="delta",
        choices=("delta", "dijkstra"),
        help="pruning-stage SSSP kernel",
    )
    p.add_argument("--seed", type=int, default=2023, help="query-pair seed")
    p.add_argument(
        "--inject",
        action="append",
        default=[],
        metavar="STAGE:KIND[:AT_HIT][@RANK]",
        help="fault rule, e.g. prune.scan:timeout, sssp:transient:3 or "
        "dist.sssp.route:rankfail:5@2 "
        f"(kinds: {', '.join(FAULT_KINDS)}); repeatable",
    )
    return p


def _parse_rule(spec: str) -> FaultRule:
    try:
        return parse_fault_spec(spec)
    except ValueError as exc:
        raise SystemExit(f"bad --inject spec: {exc}") from exc


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.graph.suite import random_st_pairs, suite_graph

    g = suite_graph(args.graph, args.scale)
    server = QueryServer(g, kernel=args.kernel)
    pairs = random_st_pairs(g, args.queries, seed=args.seed)

    rules = [_parse_rule(s) for s in args.inject]
    injector = FaultInjector(rules, seed=args.seed) if rules else None

    def run_all() -> None:
        for i, (s, t) in enumerate(pairs):
            res = server.serve(s, t, args.k, timeout=args.timeout)
            print(
                f"  #{i:<3d} {s}->{t}  outcome={res.outcome:<9s} "
                f"tier={res.tier or '-':<7s} paths={len(res.paths):<3d} "
                f"attempts={res.attempts} {res.elapsed * 1e3:8.1f} ms"
                + (f"  [{res.error}]" if res.error else "")
            )

    print(
        f"Serving {args.queries} queries on {args.graph} "
        f"(scale={args.scale}, K={args.k}, timeout={args.timeout}):"
    )
    if injector is not None:
        with injector.installed():
            run_all()
        print(f"faults fired: {injector.fired or 'none'}")
    else:
        run_all()
    dist = {o: server.counters[o] for o in OUTCOMES}
    print(f"outcomes: {dist}  retries={server.counters['retries']}")
    return 0 if server.counters["failed"] == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
