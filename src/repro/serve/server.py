"""``QueryServer`` — bounded-latency KSP serving with graceful degradation.

The paper caps benchmark runs at one hour and writes "-" on overrun; a
production KSP service needs the per-query version of that discipline:
a budget every stage observes, and a *defined* answer when the budget (or
a stage) blows up.  The server composes three mechanisms:

1. **Budgets.** Each query's relative ``timeout`` becomes an absolute
   deadline threaded through :meth:`BatchPeeK.prepare` into every stage —
   pruning SSSPs (per bucket / per settle batch), the spSum scan, the
   compaction build, and the deviation loop — via the cooperative
   checkpoints of :mod:`repro.cancel`.

2. **Degradation chain.**  PeeK → plain OptYen → partial results:

   * a timeout (or an ``UnreachableTargetError``-class fault) in PeeK's
     prune/compact stages falls back to plain OptYen on the *original*
     graph under the same deadline — still exact, just slower (Yamane &
     Kitajima's observation that a reduced-graph fallback stays exact,
     inverted: the unreduced graph is always a sound fallback);
   * a timeout inside either KSP enumeration keeps the paths produced so
     far — deviation algorithms yield in non-decreasing distance order,
     so the prefix is exactly the true top-``len(paths)`` list;
   * the outcome (``complete | degraded | partial | failed``) is recorded
     on the :class:`ServeResult` and on the active obs span.

3. **Retry + admission control.**  Transient faults (anything raising
   with a truthy ``transient`` attribute, e.g. the harness'
   :class:`~repro.serve.faults.InjectedFault`) are retried with
   exponential backoff while budget remains; a bounded in-flight count
   sheds excess load with :class:`~repro.errors.ServerOverloadError`
   before any pipeline work starts.

Constructed over a :class:`~repro.dyn.live.LiveGraph` the server also
serves *live* graphs: :meth:`QueryServer.apply_mutations` applies a
:class:`~repro.dyn.stream.MutationBatch`, swaps in the new versioned
snapshot, and rebinds the underlying versioned
:class:`~repro.core.batch.BatchPeeK` (region-keyed cache invalidation +
certificate-carried prune reuse).  Every :class:`ServeResult` records the
``graph_version`` it was answered against.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.cancel import checkpoint, deadline_in, now, remaining
from repro.core.batch import BatchPeeK
from repro.dyn.live import LiveGraph, Snapshot
from repro.errors import (
    KSPTimeout,
    ServerOverloadError,
    UnreachableTargetError,
)
from repro.ksp.base import KSPResult, KSPStats
from repro.ksp.optyen import OptYenKSP
from repro.obs.tracer import get_tracer
from repro.paths import Path
from repro.serve.query import Query, validate_query

__all__ = [
    "COMPLETE",
    "DEGRADED",
    "PARTIAL",
    "FAILED",
    "OUTCOMES",
    "RetryPolicy",
    "ServeResult",
    "QueryServer",
]

#: the full pipeline finished inside the budget (fewer than K paths only
#: when the graph has fewer simple paths — that is a complete answer)
COMPLETE = "complete"
#: the OptYen fallback finished: results are exact, PeeK's stages were not
DEGRADED = "degraded"
#: enumeration was cut off mid-run: an exact, sorted prefix of the K list
PARTIAL = "partial"
#: no path could be produced (budget exhausted before the first path, the
#: target is unreachable, or retries ran out)
FAILED = "failed"

OUTCOMES = (COMPLETE, DEGRADED, PARTIAL, FAILED)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient faults.

    Attempt ``i`` (1-based) sleeps ``backoff_base * multiplier**(i-1)``
    before retrying, up to ``max_attempts`` total attempts.  A retry is
    skipped when the query's remaining budget would not cover the sleep.

    ``jitter`` spreads the sleep multiplicatively over
    ``[1 - jitter, 1 + jitter]`` to decorrelate retry storms.  The draw
    comes from the *injected* RNG passed to :meth:`backoff` — never from
    module-level randomness — so a seeded harness run (see
    ``docs/load_testing.md``, "The seeding contract") reproduces every
    sleep exactly; with no RNG supplied the schedule stays deterministic
    even when ``jitter`` is set.
    """

    max_attempts: int = 3
    backoff_base: float = 0.02
    backoff_multiplier: float = 2.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff(self, attempt: int, rng=None) -> float:
        """Sleep before retry ``attempt`` (1-based).

        ``rng`` is any object with a ``random() -> [0, 1)`` method
        (``random.Random``, ``numpy.random.Generator``); it is consulted
        only when ``jitter > 0``.
        """
        delay = self.backoff_base * self.backoff_multiplier ** (attempt - 1)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


@dataclass
class ServeResult:
    """One served query: paths plus the outcome contract.

    ``paths`` is always a (possibly empty) sorted list of exact shortest
    paths — degraded and partial outcomes never contain approximate or
    unordered entries (the sanitizer smoke test in CI audits this).
    """

    paths: list[Path]
    k_requested: int
    #: one of :data:`OUTCOMES`
    outcome: str
    #: which tier produced the paths: "peek" or "optyen" ("" when none)
    tier: str
    #: total attempts, including the successful one
    attempts: int
    #: wall-clock seconds spent serving, including backoff sleeps
    elapsed: float
    #: repr of the fault that forced degradation/failure (None when clean)
    error: str | None = None
    #: KSP-stage counters of the tier that produced the paths
    stats: KSPStats = field(default_factory=KSPStats)
    #: the originating request (None only for legacy constructions)
    query: Query | None = None
    #: seconds the request waited before :meth:`QueryServer.serve` started
    #: (supplied by the queueing layer in front of the server; 0 when the
    #: caller dispatched directly)
    queue_time: float = 0.0
    #: seconds inside the degradation chain, on the installed clock —
    #: equal to ``elapsed``; end-to-end latency is ``queue_time +
    #: service_time``
    service_time: float = 0.0
    #: graph snapshot version the query was answered against (0 for
    #: static graphs; see :meth:`QueryServer.apply_mutations`)
    graph_version: int = 0

    @property
    def distances(self) -> list[float]:
        return [p.distance for p in self.paths]

    @property
    def ok(self) -> bool:
        """Whether any exact paths were served (everything but failed)."""
        return self.outcome != FAILED


class _Attempt:
    """Outcome of one degradation-chain walk (internal)."""

    __slots__ = ("paths", "outcome", "tier", "error", "stats")

    def __init__(self, paths, outcome, tier, error, stats):
        self.paths = paths
        self.outcome = outcome
        self.tier = tier
        self.error = error
        self.stats = stats


def _is_transient(exc: BaseException) -> bool:
    return bool(getattr(exc, "transient", False))


class QueryServer:
    """Deadline-aware KSP serving over a shared :class:`BatchPeeK`.

    Parameters
    ----------
    graph:
        The graph every query runs against — either a static
        :class:`~repro.graph.csr.CSRGraph` (historical behaviour,
        bit-for-bit unchanged) or a :class:`~repro.dyn.live.LiveGraph`,
        which enables :meth:`apply_mutations` and versioned serving.
    kernel, alpha, cache_size, use_workspace:
        Forwarded to the underlying :class:`~repro.core.batch.BatchPeeK`.
    default_timeout:
        Per-query budget in seconds when :meth:`serve` is called without
        one (``None`` = unbounded, matching library defaults).
    retry:
        The :class:`RetryPolicy` for transient faults.
    max_in_flight:
        Admission-control bound; query ``max_in_flight + 1`` is shed with
        :class:`~repro.errors.ServerOverloadError` instead of queueing.
    tier1_budget_fraction:
        Budget splitting: cap tier 1 (the full PeeK pipeline) at this
        fraction of the query's remaining budget, reserving the rest for
        the plain-OptYen fallback.  ``None`` (the default) gives tier 1
        the whole budget — the historical behavior, under which a *real*
        deadline expiry can never produce a ``degraded`` outcome (by the
        time tier 1 times out, tier 2 has no budget left).  With a
        fraction set, tight deadlines degrade instead of failing
        wholesale; see ``docs/serving.md``.
    sanitize:
        Audit every served result with the SAN-PATH battery
        (:func:`repro.analysis.sanitize.check_result_paths`) — including
        degraded and partial ones.  ``None`` defers to ``RPR_SANITIZE``.
    sleep:
        Injectable sleep for backoff (tests pass a recording fake; the
        load harness passes ``SimClock.sleep``).
    rng:
        Injected RNG handed to :meth:`RetryPolicy.backoff` for jitter —
        part of the seeding contract (``docs/load_testing.md``).  ``None``
        disables jitter regardless of the policy's ``jitter`` field.
    """

    def __init__(
        self,
        graph,
        *,
        kernel: str = "delta",
        alpha: float = 0.1,
        cache_size: int = 64,
        use_workspace: bool = True,
        default_timeout: float | None = None,
        retry: RetryPolicy | None = None,
        max_in_flight: int = 64,
        tier1_budget_fraction: float | None = None,
        sanitize: bool | None = None,
        sleep=time.sleep,
        rng=None,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if tier1_budget_fraction is not None and not 0.0 < tier1_budget_fraction <= 1.0:
            raise ValueError("tier1_budget_fraction must be in (0, 1]")
        if isinstance(graph, LiveGraph):
            self.live: LiveGraph | None = graph
            self.graph = graph.graph
        else:
            self.live = None
            self.graph = graph
        self.batch = BatchPeeK(
            self.graph,
            kernel=kernel,
            cache_size=cache_size,
            alpha=alpha,
            use_workspace=use_workspace,
            versioned=self.live is not None,
            sanitize=bool(sanitize),
        )
        self.use_workspace = use_workspace
        self.default_timeout = default_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_in_flight = max_in_flight
        self.tier1_budget_fraction = tier1_budget_fraction
        self._sanitize = sanitize
        self._sleep = sleep
        self._rng = rng
        self._lock = threading.Lock()
        self._in_flight = 0
        #: outcome name -> count, plus "shed", "retries", and (live
        #: graphs) "mutation_batches"
        self.counters: dict[str, int] = {o: 0 for o in OUTCOMES}
        self.counters["shed"] = 0
        self.counters["retries"] = 0
        self.counters["mutation_batches"] = 0

    # -- live-graph mutations -------------------------------------------
    def apply_mutations(self, batch) -> Snapshot:
        """Apply one :class:`~repro.dyn.stream.MutationBatch`; new snapshot.

        Only valid for servers constructed over a
        :class:`~repro.dyn.live.LiveGraph`.  Atomically (under the
        server's lock, so concurrent :meth:`serve` calls see either the
        old or the new version, never a torn state): applies the batch to
        the live spine, swaps the current snapshot in as ``self.graph``,
        and rebinds the versioned :class:`~repro.core.batch.BatchPeeK` —
        which surgically invalidates only the SSSP cache entries whose
        trees touch mutated vertices and only the memoised pruning
        decisions the reuse certificate cannot carry forward.
        """
        if self.live is None:
            raise ValueError(
                "apply_mutations requires a server built over a LiveGraph; "
                "this server was constructed over a static graph"
            )
        with self._lock:
            snap = self.live.apply(batch)
            self.graph = snap.graph
            self.batch.rebind(
                snap.graph, version=snap.version, summary=snap.summary
            )
            self.counters["mutation_batches"] += 1
        get_tracer().add("serve.mutation_batches")
        return snap

    # -- admission control ---------------------------------------------
    @property
    def in_flight(self) -> int:
        """Queries currently inside :meth:`serve`."""
        with self._lock:
            return self._in_flight

    def _admit(self) -> None:
        with self._lock:
            if self._in_flight >= self.max_in_flight:
                self.counters["shed"] += 1
                get_tracer().add("serve.shed")
                raise ServerOverloadError(
                    f"{self._in_flight} queries in flight "
                    f"(max_in_flight={self.max_in_flight}); query shed"
                )
            self._in_flight += 1

    def _release(self) -> None:
        with self._lock:
            self._in_flight -= 1

    # -- the front door -------------------------------------------------
    def serve(
        self,
        query: Query | int,
        target: int | None = None,
        k: int | None = None,
        *,
        timeout: float | None = None,
        queue_time: float = 0.0,
    ) -> ServeResult:
        """Serve one query under a budget; never hangs, never raises on
        timeout.

        Two call forms, same behavior:

        * **request-object** — ``serve(Query(source, target, k,
          timeout=0.1))``; the budget comes from ``Query.timeout``;
        * **legacy** — ``serve(source, target, k, timeout=0.1)``; a
          :class:`Query` is constructed internally, so the two forms are
          provably the same code path.

        ``queue_time`` is descriptive only (recorded on the result for
        latency accounting by queueing layers such as
        :mod:`repro.load`); the budget always runs from serve start.

        Invalid *requests* still raise immediately via
        :func:`~repro.serve.query.validate_query`
        (:class:`~repro.errors.VertexError` for out-of-range ids,
        :class:`~repro.errors.KSPError` for ``source == target``,
        ``ValueError`` for ``k < 1``) — those are caller bugs, not faults
        to degrade around.  Overload raises
        :class:`~repro.errors.ServerOverloadError` before any work.
        Everything else yields a :class:`ServeResult` whose ``outcome``
        states exactly what the paths are.
        """
        if isinstance(query, Query):
            if target is not None or k is not None or timeout is not None:
                raise TypeError(
                    "pass either a Query or (source, target, k, timeout=...), "
                    "not both"
                )
        else:
            if target is None or k is None:
                raise TypeError(
                    "serve() takes a Query or (source, target, k) positionally"
                )
            query = Query(query, target, k, timeout=timeout)
        validate_query(self.graph, query)
        self._admit()
        try:
            return self._serve(query, queue_time)
        finally:
            self._release()

    def _serve(self, query: Query, queue_time: float) -> ServeResult:
        timeout = query.timeout
        if timeout is None:
            timeout = self.default_timeout
        deadline = deadline_in(timeout)
        tracer = get_tracer()
        version = self.batch.version  # snapshot the query is answered on
        t0 = now()
        with tracer.span(
            "serve.query", source=query.source, target=query.target, k=query.k
        ) as span:
            attempts = 0
            while True:
                attempts += 1
                try:
                    att = self._attempt(
                        query.source, query.target, query.k, deadline
                    )
                    break
                except Exception as exc:  # noqa: BLE001 - classified below
                    if not _is_transient(exc):
                        raise
                    backoff = self.retry.backoff(attempts, rng=self._rng)
                    if (
                        attempts >= self.retry.max_attempts
                        or remaining(deadline) <= backoff
                    ):
                        att = _Attempt([], FAILED, "", exc, KSPStats())
                        break
                    self.counters["retries"] += 1
                    tracer.add("serve.retries")
                    self._sleep(backoff)
            elapsed = now() - t0
            result = ServeResult(
                paths=att.paths,
                k_requested=query.k,
                outcome=att.outcome,
                tier=att.tier,
                attempts=attempts,
                elapsed=elapsed,
                error=repr(att.error) if att.error is not None else None,
                stats=att.stats,
                query=query,
                queue_time=queue_time,
                service_time=elapsed,
                graph_version=version,
            )
            self._maybe_sanitize(result, query.source, query.target)
            self.counters[att.outcome] += 1
            if span.enabled:
                span.attrs["outcome"] = att.outcome
                span.attrs["tier"] = att.tier
                span.attrs["attempts"] = attempts
                span.attrs["graph_version"] = version
                tracer.add(f"serve.outcome.{att.outcome}")
        return result

    # -- the degradation chain ------------------------------------------
    def _tier1_deadline(self, deadline):
        """Where tier 1's budget ends (the full deadline unless split)."""
        fraction = self.tier1_budget_fraction
        if fraction is None or deadline is None:
            return deadline
        return min(deadline, now() + remaining(deadline) * fraction)

    def _attempt(self, source, target, k, deadline) -> _Attempt:
        """One walk down PeeK → plain OptYen → partial."""
        # --- tier 1: the full batched PeeK pipeline ---
        stage_error: BaseException
        tier1_deadline = self._tier1_deadline(deadline)
        split = tier1_deadline is not None and tier1_deadline != deadline
        tier1_partial: list[Path] = []
        tier1_stats = KSPStats()
        try:
            checkpoint(tier1_deadline, "serve.attempt")
            prep = self.batch.prepare(
                source, target, k, deadline=tier1_deadline
            )
            paths, cut = self._enumerate(prep.inner, k, prep.map_paths)
            if not cut:
                return _Attempt(paths, COMPLETE, "peek", None, prep.inner.stats)
            if paths and not split:
                return _Attempt(
                    paths, PARTIAL, "peek", cut, prep.inner.stats
                )
            # With a budget split, a tier-1 cut still leaves real budget:
            # keep the prefix as a floor and let tier 2 try to beat it.
            tier1_partial = paths
            tier1_stats = prep.inner.stats
            stage_error = cut
        except KSPTimeout as exc:
            stage_error = exc  # prune or compact blew the (tier-1) budget
        except UnreachableTargetError as exc:
            stage_error = exc  # possibly a stage fault; tier 2 decides

        # --- tier 2: plain OptYen on the original, unpruned graph ---
        get_tracer().add("serve.degraded_attempts")
        try:
            fallback = OptYenKSP(
                self.graph,
                source,
                target,
                deadline=deadline,
                use_workspace=self.use_workspace,
            )
            paths, cut = self._enumerate(fallback, k, None)
            if not cut:
                return _Attempt(
                    paths, DEGRADED, "optyen", stage_error, fallback.stats
                )
            # Both tiers were cut: the prefixes are both exact leading
            # segments of the same true list, so the longer one wins.
            if len(tier1_partial) > len(paths):
                return _Attempt(
                    tier1_partial, PARTIAL, "peek", stage_error, tier1_stats
                )
            if paths:
                return _Attempt(paths, PARTIAL, "optyen", cut, fallback.stats)
            return _Attempt([], FAILED, "", cut, fallback.stats)
        except UnreachableTargetError as exc:
            # Confirmed by the unpruned graph: genuinely no s→t path.
            return _Attempt([], FAILED, "", exc, KSPStats())
        except KSPTimeout as exc:
            if tier1_partial:
                return _Attempt(
                    tier1_partial, PARTIAL, "peek", stage_error, tier1_stats
                )
            return _Attempt([], FAILED, "", exc, KSPStats())

    @staticmethod
    def _enumerate(solver, k, map_paths):
        """Drive ``solver.iter_paths`` collecting up to ``k`` paths.

        Returns ``(paths, cut)`` where ``cut`` is the ``KSPTimeout`` that
        interrupted enumeration, or ``None`` when it ran to completion
        (K paths or exhaustion).  Paths collected before the cut are kept:
        deviation enumeration yields in sorted order, so they are the
        exact top-``len(paths)``.
        """
        paths: list[Path] = []
        tracer = get_tracer()
        with tracer.span("ksp", algorithm=solver.name, k=k) as span:
            try:
                for path in solver.iter_paths():
                    paths.append(path)
                    if len(paths) == k:
                        break
            except KSPTimeout as exc:
                if map_paths is not None:
                    paths = map_paths(paths)
                return paths, exc
            finally:
                if span.enabled:
                    solver._emit_obs(span)
        if map_paths is not None:
            paths = map_paths(paths)
        return paths, None

    def _maybe_sanitize(self, result: ServeResult, source, target) -> None:
        sanitize = self._sanitize
        if sanitize is None:
            from repro.analysis.sanitize import sanitize_enabled_from_env

            sanitize = sanitize_enabled_from_env()
        if not sanitize or not result.paths:
            return
        from repro.analysis.sanitize import check_result_paths

        audit = KSPResult(paths=result.paths, k_requested=result.k_requested)
        check_result_paths(self.graph, audit, source, target)
