"""``QueryServer`` — bounded-latency KSP serving with graceful degradation.

The paper caps benchmark runs at one hour and writes "-" on overrun; a
production KSP service needs the per-query version of that discipline:
a budget every stage observes, and a *defined* answer when the budget (or
a stage) blows up.  The server composes three mechanisms:

1. **Budgets.** Each query's relative ``timeout`` becomes an absolute
   deadline threaded through :meth:`BatchPeeK.prepare` into every stage —
   pruning SSSPs (per bucket / per settle batch), the spSum scan, the
   compaction build, and the deviation loop — via the cooperative
   checkpoints of :mod:`repro.cancel`.

2. **Degradation chain.**  PeeK → plain OptYen → partial results:

   * a timeout (or an ``UnreachableTargetError``-class fault) in PeeK's
     prune/compact stages falls back to plain OptYen on the *original*
     graph under the same deadline — still exact, just slower (Yamane &
     Kitajima's observation that a reduced-graph fallback stays exact,
     inverted: the unreduced graph is always a sound fallback);
   * a timeout inside either KSP enumeration keeps the paths produced so
     far — deviation algorithms yield in non-decreasing distance order,
     so the prefix is exactly the true top-``len(paths)`` list;
   * the outcome (``complete | degraded | partial | failed``) is recorded
     on the :class:`ServeResult` and on the active obs span.

3. **Retry + admission control.**  Transient faults (anything raising
   with a truthy ``transient`` attribute, e.g. the harness'
   :class:`~repro.serve.faults.InjectedFault`) are retried with
   exponential backoff while budget remains; a bounded in-flight count
   sheds excess load with :class:`~repro.errors.ServerOverloadError`
   before any pipeline work starts.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.cancel import checkpoint, deadline_in, remaining
from repro.core.batch import BatchPeeK
from repro.errors import (
    KSPError,
    KSPTimeout,
    ServerOverloadError,
    UnreachableTargetError,
    VertexError,
)
from repro.ksp.base import KSPResult, KSPStats
from repro.ksp.optyen import OptYenKSP
from repro.obs.tracer import get_tracer
from repro.paths import Path

__all__ = [
    "COMPLETE",
    "DEGRADED",
    "PARTIAL",
    "FAILED",
    "OUTCOMES",
    "RetryPolicy",
    "ServeResult",
    "QueryServer",
]

#: the full pipeline finished inside the budget (fewer than K paths only
#: when the graph has fewer simple paths — that is a complete answer)
COMPLETE = "complete"
#: the OptYen fallback finished: results are exact, PeeK's stages were not
DEGRADED = "degraded"
#: enumeration was cut off mid-run: an exact, sorted prefix of the K list
PARTIAL = "partial"
#: no path could be produced (budget exhausted before the first path, the
#: target is unreachable, or retries ran out)
FAILED = "failed"

OUTCOMES = (COMPLETE, DEGRADED, PARTIAL, FAILED)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient faults.

    Attempt ``i`` (1-based) sleeps ``backoff_base * multiplier**(i-1)``
    before retrying, up to ``max_attempts`` total attempts.  A retry is
    skipped when the query's remaining budget would not cover the sleep.
    """

    max_attempts: int = 3
    backoff_base: float = 0.02
    backoff_multiplier: float = 2.0

    def backoff(self, attempt: int) -> float:
        return self.backoff_base * self.backoff_multiplier ** (attempt - 1)


@dataclass
class ServeResult:
    """One served query: paths plus the outcome contract.

    ``paths`` is always a (possibly empty) sorted list of exact shortest
    paths — degraded and partial outcomes never contain approximate or
    unordered entries (the sanitizer smoke test in CI audits this).
    """

    paths: list[Path]
    k_requested: int
    #: one of :data:`OUTCOMES`
    outcome: str
    #: which tier produced the paths: "peek" or "optyen" ("" when none)
    tier: str
    #: total attempts, including the successful one
    attempts: int
    #: wall-clock seconds spent serving, including backoff sleeps
    elapsed: float
    #: repr of the fault that forced degradation/failure (None when clean)
    error: str | None = None
    #: KSP-stage counters of the tier that produced the paths
    stats: KSPStats = field(default_factory=KSPStats)

    @property
    def distances(self) -> list[float]:
        return [p.distance for p in self.paths]

    @property
    def ok(self) -> bool:
        """Whether any exact paths were served (everything but failed)."""
        return self.outcome != FAILED


class _Attempt:
    """Outcome of one degradation-chain walk (internal)."""

    __slots__ = ("paths", "outcome", "tier", "error", "stats")

    def __init__(self, paths, outcome, tier, error, stats):
        self.paths = paths
        self.outcome = outcome
        self.tier = tier
        self.error = error
        self.stats = stats


def _is_transient(exc: BaseException) -> bool:
    return bool(getattr(exc, "transient", False))


class QueryServer:
    """Deadline-aware KSP serving over a shared :class:`BatchPeeK`.

    Parameters
    ----------
    graph:
        The static graph every query runs against.
    kernel, alpha, cache_size, use_workspace:
        Forwarded to the underlying :class:`~repro.core.batch.BatchPeeK`.
    default_timeout:
        Per-query budget in seconds when :meth:`serve` is called without
        one (``None`` = unbounded, matching library defaults).
    retry:
        The :class:`RetryPolicy` for transient faults.
    max_in_flight:
        Admission-control bound; query ``max_in_flight + 1`` is shed with
        :class:`~repro.errors.ServerOverloadError` instead of queueing.
    sanitize:
        Audit every served result with the SAN-PATH battery
        (:func:`repro.analysis.sanitize.check_result_paths`) — including
        degraded and partial ones.  ``None`` defers to ``RPR_SANITIZE``.
    sleep:
        Injectable sleep for backoff (tests pass a recording fake).
    """

    def __init__(
        self,
        graph,
        *,
        kernel: str = "delta",
        alpha: float = 0.1,
        cache_size: int = 64,
        use_workspace: bool = True,
        default_timeout: float | None = None,
        retry: RetryPolicy | None = None,
        max_in_flight: int = 64,
        sanitize: bool | None = None,
        sleep=time.sleep,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.graph = graph
        self.batch = BatchPeeK(
            graph,
            kernel=kernel,
            cache_size=cache_size,
            alpha=alpha,
            use_workspace=use_workspace,
        )
        self.use_workspace = use_workspace
        self.default_timeout = default_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_in_flight = max_in_flight
        self._sanitize = sanitize
        self._sleep = sleep
        self._lock = threading.Lock()
        self._in_flight = 0
        #: outcome name -> count, plus "shed" and "retries"
        self.counters: dict[str, int] = {o: 0 for o in OUTCOMES}
        self.counters["shed"] = 0
        self.counters["retries"] = 0

    # -- admission control ---------------------------------------------
    @property
    def in_flight(self) -> int:
        """Queries currently inside :meth:`serve`."""
        with self._lock:
            return self._in_flight

    def _admit(self) -> None:
        with self._lock:
            if self._in_flight >= self.max_in_flight:
                self.counters["shed"] += 1
                get_tracer().add("serve.shed")
                raise ServerOverloadError(
                    f"{self._in_flight} queries in flight "
                    f"(max_in_flight={self.max_in_flight}); query shed"
                )
            self._in_flight += 1

    def _release(self) -> None:
        with self._lock:
            self._in_flight -= 1

    # -- the front door -------------------------------------------------
    def serve(
        self,
        source: int,
        target: int,
        k: int,
        *,
        timeout: float | None = None,
    ) -> ServeResult:
        """Serve one query under a budget; never hangs, never raises on
        timeout.

        Invalid *requests* still raise immediately
        (:class:`~repro.errors.VertexError` for out-of-range ids,
        :class:`~repro.errors.KSPError` for ``source == target``,
        ``ValueError`` for ``k < 1``) — those are caller bugs, not faults
        to degrade around.  Overload raises
        :class:`~repro.errors.ServerOverloadError` before any work.
        Everything else yields a :class:`ServeResult` whose ``outcome``
        states exactly what the paths are.
        """
        n = self.graph.num_vertices
        if not 0 <= source < n or not 0 <= target < n:
            raise VertexError(f"query ({source}, {target}) out of range")
        if source == target:
            raise KSPError("source and target must differ for a KSP query")
        if k < 1:
            raise ValueError("k must be >= 1")
        self._admit()
        try:
            return self._serve(source, target, k, timeout)
        finally:
            self._release()

    def _serve(self, source, target, k, timeout) -> ServeResult:
        if timeout is None:
            timeout = self.default_timeout
        deadline = deadline_in(timeout)
        tracer = get_tracer()
        t0 = time.perf_counter()
        with tracer.span(
            "serve.query", source=source, target=target, k=k
        ) as span:
            attempts = 0
            while True:
                attempts += 1
                try:
                    att = self._attempt(source, target, k, deadline)
                    break
                except Exception as exc:  # noqa: BLE001 - classified below
                    if not _is_transient(exc):
                        raise
                    backoff = self.retry.backoff(attempts)
                    if (
                        attempts >= self.retry.max_attempts
                        or remaining(deadline) <= backoff
                    ):
                        att = _Attempt([], FAILED, "", exc, KSPStats())
                        break
                    self.counters["retries"] += 1
                    tracer.add("serve.retries")
                    self._sleep(backoff)
            result = ServeResult(
                paths=att.paths,
                k_requested=k,
                outcome=att.outcome,
                tier=att.tier,
                attempts=attempts,
                elapsed=time.perf_counter() - t0,
                error=repr(att.error) if att.error is not None else None,
                stats=att.stats,
            )
            self._maybe_sanitize(result, source, target)
            self.counters[att.outcome] += 1
            if span.enabled:
                span.attrs["outcome"] = att.outcome
                span.attrs["tier"] = att.tier
                span.attrs["attempts"] = attempts
                tracer.add(f"serve.outcome.{att.outcome}")
        return result

    # -- the degradation chain ------------------------------------------
    def _attempt(self, source, target, k, deadline) -> _Attempt:
        """One walk down PeeK → plain OptYen → partial."""
        # --- tier 1: the full batched PeeK pipeline ---
        stage_error: BaseException
        try:
            checkpoint(deadline, "serve.attempt")
            prep = self.batch.prepare(source, target, k, deadline=deadline)
            paths, cut = self._enumerate(prep.inner, k, prep.map_paths)
            if not cut:
                return _Attempt(paths, COMPLETE, "peek", None, prep.inner.stats)
            if paths:
                return _Attempt(
                    paths, PARTIAL, "peek", cut, prep.inner.stats
                )
            stage_error = cut  # budget died before the first path
        except KSPTimeout as exc:
            stage_error = exc  # prune or compact blew the budget
        except UnreachableTargetError as exc:
            stage_error = exc  # possibly a stage fault; tier 2 decides

        # --- tier 2: plain OptYen on the original, unpruned graph ---
        get_tracer().add("serve.degraded_attempts")
        try:
            fallback = OptYenKSP(
                self.graph,
                source,
                target,
                deadline=deadline,
                use_workspace=self.use_workspace,
            )
            paths, cut = self._enumerate(fallback, k, None)
            if not cut:
                return _Attempt(
                    paths, DEGRADED, "optyen", stage_error, fallback.stats
                )
            if paths:
                return _Attempt(paths, PARTIAL, "optyen", cut, fallback.stats)
            return _Attempt([], FAILED, "", cut, fallback.stats)
        except UnreachableTargetError as exc:
            # Confirmed by the unpruned graph: genuinely no s→t path.
            return _Attempt([], FAILED, "", exc, KSPStats())
        except KSPTimeout as exc:
            return _Attempt([], FAILED, "", exc, KSPStats())

    @staticmethod
    def _enumerate(solver, k, map_paths):
        """Drive ``solver.iter_paths`` collecting up to ``k`` paths.

        Returns ``(paths, cut)`` where ``cut`` is the ``KSPTimeout`` that
        interrupted enumeration, or ``None`` when it ran to completion
        (K paths or exhaustion).  Paths collected before the cut are kept:
        deviation enumeration yields in sorted order, so they are the
        exact top-``len(paths)``.
        """
        paths: list[Path] = []
        tracer = get_tracer()
        with tracer.span("ksp", algorithm=solver.name, k=k) as span:
            try:
                for path in solver.iter_paths():
                    paths.append(path)
                    if len(paths) == k:
                        break
            except KSPTimeout as exc:
                if map_paths is not None:
                    paths = map_paths(paths)
                return paths, exc
            finally:
                if span.enabled:
                    solver._emit_obs(span)
        if map_paths is not None:
            paths = map_paths(paths)
        return paths, None

    def _maybe_sanitize(self, result: ServeResult, source, target) -> None:
        sanitize = self._sanitize
        if sanitize is None:
            from repro.analysis.sanitize import sanitize_enabled_from_env

            sanitize = sanitize_enabled_from_env()
        if not sanitize or not result.paths:
            return
        from repro.analysis.sanitize import check_result_paths

        audit = KSPResult(paths=result.paths, k_requested=result.k_requested)
        check_result_paths(self.graph, audit, source, target)
