"""The request object of the serving layer: :class:`Query`.

A KSP request used to be four positional scalars scattered across call
sites; production traffic needs a *value* that can be queued, logged,
replayed from a trace, and carried on the response.  :class:`Query` is
that value — frozen, hashable, and cheap — and
:func:`validate_query` is the one place the request-validation taxonomy
lives, so :func:`repro.solve` and :meth:`QueryServer.serve
<repro.serve.QueryServer.serve>` provably reject bad requests with the
same errors in the same order (range check → ``source == target`` →
``k < 1``).

This module deliberately imports nothing heavier than
:mod:`repro.errors`, so the request type is usable from traces, CLIs,
and the load harness without dragging in the solver stack.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import KSPError, VertexError

__all__ = ["Query", "validate_query"]


@dataclass(frozen=True)
class Query:
    """One KSP request, as a value.

    Parameters
    ----------
    source, target:
        Vertex ids of the query endpoints.
    k:
        Number of shortest simple paths requested.
    timeout:
        Per-query budget in seconds, measured from the moment serving
        starts (``None`` defers to the server's ``default_timeout``).
    request_id:
        Opaque caller-supplied identifier, carried through to the
        :class:`~repro.serve.ServeResult` and trace records ("" = none).
    issued_at:
        When the request entered the system, on whatever clock the
        caller uses (the load harness uses simulated seconds).  Purely
        descriptive: the server's budget runs from serve start, not from
        ``issued_at``.

    A query never names a graph version: it is always answered against
    the server's *current* snapshot, and the version actually used comes
    back on ``ServeResult.graph_version`` (0 for static graphs).  On a
    live graph the load harness orders mutation batches against
    ``issued_at``, so which snapshot a query sees is a deterministic
    function of the timeline, not of wall-clock races.
    """

    source: int
    target: int
    k: int
    timeout: float | None = None
    request_id: str = ""
    issued_at: float = 0.0

    def with_timeout(self, timeout: float | None) -> "Query":
        """A copy of this query with a different budget (queues use this
        to pass along the budget *remaining* after queue wait)."""
        return replace(self, timeout=timeout)


def validate_query(graph, query: Query) -> None:
    """Reject an invalid request — the library-wide taxonomy and order.

    Raises, in this order (first failure wins):

    1. :class:`~repro.errors.VertexError` — ``source`` or ``target``
       outside ``[0, graph.num_vertices)`` (so ``(n, n)`` is a vertex
       error, not a source-equals-target error);
    2. :class:`~repro.errors.KSPError` — ``source == target`` (a
       zero-length "path" is not a simple path; the deviation algorithms
       are undefined on it);
    3. ``ValueError`` — ``k < 1``.

    Both :func:`repro.solve` and :class:`repro.serve.QueryServer` call
    this helper, so the two entry points cannot drift apart.
    """
    n = graph.num_vertices
    source, target = query.source, query.target
    if not 0 <= source < n or not 0 <= target < n:
        raise VertexError(f"query ({source}, {target}) out of range [0, {n})")
    if source == target:
        raise KSPError("source and target must differ for a KSP query")
    if query.k < 1:
        raise ValueError("k must be >= 1")
