"""The deadline-aware serving layer (see ``docs/serving.md``).

:class:`QueryServer` is the production front end over
:class:`~repro.core.batch.BatchPeeK`: every query carries a real time
budget that all pipeline stages observe cooperatively, and every query
gets a defined outcome — ``complete``, ``degraded`` (exact results via the
plain-OptYen fallback), ``partial`` (an exact prefix of the K list), or
``failed`` — instead of an unbounded hang or an exception from deep inside
a kernel.

:mod:`repro.serve.faults` is the deterministic fault-injection harness the
degradation paths are tested with.
"""

from repro.serve.faults import FaultInjector, FaultRule, InjectedFault
from repro.serve.query import Query, validate_query
from repro.serve.server import (
    COMPLETE,
    DEGRADED,
    FAILED,
    OUTCOMES,
    PARTIAL,
    QueryServer,
    RetryPolicy,
    ServeResult,
)

__all__ = [
    "Query",
    "validate_query",
    "QueryServer",
    "ServeResult",
    "RetryPolicy",
    "OUTCOMES",
    "COMPLETE",
    "DEGRADED",
    "PARTIAL",
    "FAILED",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
]
