"""Deterministic fault injection at pipeline checkpoint boundaries.

Degradation code is only trustworthy if its failure paths actually run,
and real timeouts are flaky to provoke (a CI machine may be fast enough
that a "tiny" budget still finishes).  This harness makes faults *exact*:
every cooperative-cancellation checkpoint in the pipeline
(:mod:`repro.cancel`) doubles as an injection seam, and a
:class:`FaultInjector` installed as the fault hook raises a chosen
exception at the Nth visit to a named stage — same graph, same seed, same
fault, every run.

Stage names are the checkpoint labels:

========================  ====================================================
``sssp.delta``            Δ-stepping bucket phases (pruning-stage SSSPs)
``sssp.dijkstra``         Dijkstra entry + settle batches (prune or spur)
``prune.scan``            Algorithm 2's spSum scan
``prune.masks``           the vertex/edge mask build
``compact`` / ``compact.build``  adaptive compaction decision / build
``OptYen`` (etc.)         the deviation loop (stage = algorithm name)
``serve.attempt``         :class:`~repro.serve.server.QueryServer` boundary
========================  ====================================================

A rule matches a stage exactly or by dotted prefix (``"sssp"`` matches
both kernels).  Rules with ``at_hit=None`` draw the firing hit count from
the injector's seeded RNG, so randomised fault campaigns are reproducible
from the seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cancel import fault_scope
from repro.errors import KSPTimeout, ReproError, UnreachableTargetError

__all__ = ["InjectedFault", "FaultRule", "FaultInjector"]


class InjectedFault(ReproError):
    """A synthetic fault raised by the harness (never by production code).

    ``transient=True`` marks it retryable: the server's retry-with-backoff
    policy treats it like a transient infrastructure fault (and anything
    else carrying a truthy ``transient`` attribute the same way).
    """

    def __init__(self, stage: str, *, transient: bool = True) -> None:
        super().__init__(f"injected fault at stage {stage!r}")
        self.stage = stage
        self.transient = transient


@dataclass
class FaultRule:
    """Fire one kind of fault at the Nth checkpoint visit of a stage.

    Parameters
    ----------
    stage:
        Checkpoint label to match — exact, or a dotted prefix
        (``"sssp"`` matches ``"sssp.delta"``).
    kind:
        ``"timeout"`` raises :class:`~repro.errors.KSPTimeout`;
        ``"unreachable"`` raises
        :class:`~repro.errors.UnreachableTargetError`; ``"transient"``
        raises a retryable :class:`InjectedFault`; ``"fatal"`` raises a
        non-retryable one.
    at_hit:
        1-based visit count at which to start firing.  ``None`` draws it
        from the injector's seeded RNG in ``[1, max_hit]``.
    times:
        Consecutive visits that fire (lets a "transient" fault survive a
        bounded number of retries before the stage recovers).
    max_hit:
        Upper bound for the seeded draw when ``at_hit`` is ``None``.
    """

    stage: str
    kind: str = "timeout"
    at_hit: int | None = 1
    times: int = 1
    max_hit: int = 4

    def matches(self, stage: str) -> bool:
        return stage == self.stage or stage.startswith(self.stage + ".")

    def make_error(self, stage: str) -> ReproError:
        if self.kind == "timeout":
            return KSPTimeout(f"injected timeout at stage {stage!r}")
        if self.kind == "unreachable":
            return UnreachableTargetError(
                f"injected unreachable fault at stage {stage!r}"
            )
        if self.kind == "transient":
            return InjectedFault(stage, transient=True)
        if self.kind == "fatal":
            return InjectedFault(stage, transient=False)
        raise ValueError(f"unknown fault kind {self.kind!r}")


class FaultInjector:
    """The callable installed as :mod:`repro.cancel`'s fault hook.

    >>> inj = FaultInjector([FaultRule("prune.scan", kind="timeout")])
    >>> with inj.installed():
    ...     ...  # the next prune.scan checkpoint raises KSPTimeout

    ``seed`` resolves every rule whose ``at_hit`` is ``None``; with all
    hits pinned the injector is deterministic regardless of seed.
    ``fired`` records ``(stage, kind)`` per firing for test assertions;
    ``hits`` counts checkpoint visits per rule.
    """

    def __init__(
        self, rules: list[FaultRule], *, seed: int | None = None
    ) -> None:
        rng = random.Random(seed)
        self.rules = list(rules)
        #: resolved firing hit per rule (index-aligned with ``rules``)
        self.at_hits = [
            r.at_hit if r.at_hit is not None else rng.randint(1, r.max_hit)
            for r in self.rules
        ]
        self.hits = [0] * len(self.rules)
        self.fired: list[tuple[str, str]] = []

    def __call__(self, stage: str) -> None:
        for i, rule in enumerate(self.rules):
            if not rule.matches(stage):
                continue
            self.hits[i] += 1
            first = self.at_hits[i]
            if first <= self.hits[i] < first + rule.times:
                self.fired.append((stage, rule.kind))
                raise rule.make_error(stage)

    def installed(self):
        """Context manager installing this injector as the fault hook."""
        return fault_scope(self)
