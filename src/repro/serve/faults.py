"""Deterministic fault injection at pipeline checkpoint boundaries.

Degradation code is only trustworthy if its failure paths actually run,
and real timeouts are flaky to provoke (a CI machine may be fast enough
that a "tiny" budget still finishes).  This harness makes faults *exact*:
every cooperative-cancellation checkpoint in the pipeline
(:mod:`repro.cancel`) doubles as an injection seam, and a
:class:`FaultInjector` installed as the fault hook raises a chosen
exception at the Nth visit to a named stage — same graph, same seed, same
fault, every run.

Stage names are the checkpoint labels:

========================  ====================================================
``sssp.delta``            Δ-stepping bucket phases (pruning-stage SSSPs)
``sssp.dijkstra``         Dijkstra entry + settle batches (prune or spur)
``prune.scan``            Algorithm 2's spSum scan
``prune.masks``           the vertex/edge mask build
``compact`` / ``compact.build``  adaptive compaction decision / build
``OptYen`` (etc.)         the deviation loop (stage = algorithm name)
``serve.attempt``         :class:`~repro.serve.server.QueryServer` boundary
========================  ====================================================

A rule matches a stage exactly or by dotted prefix (``"sssp"`` matches
both kernels).  Rules with ``at_hit=None`` draw the firing hit count from
the injector's seeded RNG, so randomised fault campaigns are reproducible
from the seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cancel import fault_scope
from repro.errors import (
    KSPTimeout,
    RankFailure,
    ReproError,
    UnreachableTargetError,
)

__all__ = [
    "InjectedFault",
    "FaultRule",
    "FaultInjector",
    "FAULT_KINDS",
    "parse_fault_spec",
]


class InjectedFault(ReproError):
    """A synthetic fault raised by the harness (never by production code).

    ``transient=True`` marks it retryable: the server's retry-with-backoff
    policy treats it like a transient infrastructure fault (and anything
    else carrying a truthy ``transient`` attribute the same way).
    """

    def __init__(self, stage: str, *, transient: bool = True) -> None:
        super().__init__(f"injected fault at stage {stage!r}")
        self.stage = stage
        self.transient = transient


@dataclass
class FaultRule:
    """Fire one kind of fault at the Nth checkpoint visit of a stage.

    Parameters
    ----------
    stage:
        Checkpoint label to match — exact, or a dotted prefix
        (``"sssp"`` matches ``"sssp.delta"``).
    kind:
        ``"timeout"`` raises :class:`~repro.errors.KSPTimeout`;
        ``"unreachable"`` raises
        :class:`~repro.errors.UnreachableTargetError`; ``"transient"``
        raises a retryable :class:`InjectedFault`; ``"fatal"`` raises a
        non-retryable one.
    at_hit:
        1-based visit count at which to start firing.  ``None`` draws it
        from the injector's seeded RNG in ``[1, max_hit]``.
    times:
        Consecutive visits that fire (lets a "transient" fault survive a
        bounded number of retries before the stage recovers).
    max_hit:
        Upper bound for the seeded draw when ``at_hit`` is ``None``.
    rank:
        Scope the rule to one simulated MPI rank.  Only meaningful for the
        distributed substrate (``kind="rankfail"`` kills that rank; see
        :class:`~repro.distributed.comm.FaultPlan`); ``None`` means
        unscoped — a ``rankfail`` rule then draws its victim from the
        plan's seeded RNG.
    replica:
        Scope the rule to one serving-fabric *replica* (the ``@R<N>``
        spelling of the ``--inject`` grammar).  Replicas and ranks are
        different namespaces — a replica is a unit of serving failure, a
        rank a unit of BSP computation — even though the fabric maps
        replica ``i`` onto rank ``i`` of its own communicator (see
        ``docs/fabric.md``).  Mutually exclusive with ``rank``.
    """

    stage: str
    kind: str = "timeout"
    at_hit: int | None = 1
    times: int = 1
    max_hit: int = 4
    rank: int | None = None
    replica: int | None = None

    def matches(self, stage: str) -> bool:
        return stage == self.stage or stage.startswith(self.stage + ".")

    def make_error(self, stage: str) -> ReproError:
        if self.kind == "timeout":
            return KSPTimeout(f"injected timeout at stage {stage!r}")
        if self.kind == "unreachable":
            return UnreachableTargetError(
                f"injected unreachable fault at stage {stage!r}"
            )
        if self.kind == "transient":
            return InjectedFault(stage, transient=True)
        if self.kind == "fatal":
            return InjectedFault(stage, transient=False)
        if self.kind == "rankfail":
            return RankFailure(self.rank or 0, stage=stage)
        raise ValueError(f"unknown fault kind {self.kind!r}")


class FaultInjector:
    """The callable installed as :mod:`repro.cancel`'s fault hook.

    >>> inj = FaultInjector([FaultRule("prune.scan", kind="timeout")])
    >>> with inj.installed():
    ...     ...  # the next prune.scan checkpoint raises KSPTimeout

    ``seed`` resolves every rule whose ``at_hit`` is ``None``; with all
    hits pinned the injector is deterministic regardless of seed.
    ``fired`` records ``(stage, kind)`` per firing for test assertions;
    ``hits`` counts checkpoint visits per rule.
    """

    def __init__(
        self, rules: list[FaultRule], *, seed: int | None = None
    ) -> None:
        rng = random.Random(seed)
        self.rules = list(rules)
        #: resolved firing hit per rule (index-aligned with ``rules``)
        self.at_hits = [
            r.at_hit if r.at_hit is not None else rng.randint(1, r.max_hit)
            for r in self.rules
        ]
        self.hits = [0] * len(self.rules)
        self.fired: list[tuple[str, str]] = []

    def __call__(self, stage: str) -> None:
        for i, rule in enumerate(self.rules):
            if not rule.matches(stage):
                continue
            self.hits[i] += 1
            first = self.at_hits[i]
            if first <= self.hits[i] < first + rule.times:
                self.fired.append((stage, rule.kind))
                raise rule.make_error(stage)

    def installed(self):
        """Context manager installing this injector as the fault hook."""
        return fault_scope(self)


#: every fault kind a rule spec may name
FAULT_KINDS = ("timeout", "unreachable", "transient", "fatal", "rankfail")


def parse_fault_spec(spec: str) -> FaultRule:
    """Parse the CLI rule grammar ``STAGE:KIND[:AT_HIT][@RANK | @R<N>]``.

    The ``@RANK`` suffix scopes the rule to one simulated MPI rank (see
    :class:`FaultRule.rank`); the ``@R<N>`` spelling scopes it to serving
    replica ``N`` instead (``fabric.heartbeat:rankfail:3@R1`` kills
    replica 1 at its third heartbeat — see :class:`FaultRule.replica`
    and ``peek-fabric --inject``).  Omitting ``AT_HIT`` leaves the firing
    visit to the seeded draw.  Shared by ``peek-serve --inject``,
    ``peek-fabric --inject`` and
    :meth:`~repro.distributed.comm.FaultPlan.from_specs`.  Raises
    ``ValueError`` on malformed specs.
    """
    body, sep, rank_part = spec.partition("@")
    rank: int | None = None
    replica: int | None = None
    if sep:
        target_part = rank_part
        is_replica = rank_part[:1] in ("R", "r")
        if is_replica:
            target_part = rank_part[1:]
        try:
            target = int(target_part)
        except ValueError:
            raise ValueError(
                f"bad target in fault spec {spec!r} (want @RANK or @R<N>)"
            ) from None
        if target < 0:
            raise ValueError(f"negative target in fault spec {spec!r}")
        if is_replica:
            replica = target
        else:
            rank = target
    parts = body.split(":")
    if len(parts) not in (2, 3) or not parts[0]:
        raise ValueError(
            f"bad fault spec {spec!r} (want STAGE:KIND[:AT_HIT][@RANK])"
        )
    if parts[1] not in FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {parts[1]!r} (kinds: {', '.join(FAULT_KINDS)})"
        )
    at_hit: int | None = None
    if len(parts) == 3:
        try:
            at_hit = int(parts[2])
        except ValueError:
            raise ValueError(f"bad AT_HIT in fault spec {spec!r}") from None
    return FaultRule(
        stage=parts[0], kind=parts[1], at_hit=at_hit, rank=rank, replica=replica
    )
