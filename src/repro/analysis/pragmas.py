"""Suppression pragmas shared by the static-analysis tools.

Both AST tools in :mod:`repro.analysis` — the per-function lint pass
(``# repro-lint: disable=RPR003``) and the whole-program contract
analyzer (``# contracts: disable=CTR201``) — speak the same pragma
dialect, differing only in the tool tag:

* ``# <tool>: disable=ID1,ID2`` (or ``disable=all``) suppresses the
  named rules;
* ``# <tool>: module=repro/ksp/foo.py`` overrides the inferred module
  path (the fixture corpora use it to exercise path-scoped rules from
  outside the source tree).

Statement-span expansion
------------------------
A pragma suppresses findings on every line of the *statement* it is
attached to, not just its own physical line.  Concretely, a pragma
found on any line of

* a **simple statement** spanning several lines (a wrapped call, a
  parenthesised assignment) suppresses findings reported anywhere in
  that statement — tools report at the expression start, which is often
  not the line carrying the trailing comment;
* the **decorator or header lines of a ``def`` / ``class``** suppresses
  findings anywhere inside that definition — decorators shift
  ``node.lineno`` to the ``def`` line, and rules like RPR005 report on
  body statements;
* the **header of any other compound statement** (``for``, ``while``,
  ``if``, ``with``, ``try``) suppresses over the (possibly multi-line)
  header only, *not* the body — a pragma on a loop line must not blanket
  everything inside the loop.

A pragma on a line belonging to no statement (a standalone comment)
applies to that line alone, preserving the historical behaviour.
"""

from __future__ import annotations

import ast
import re

__all__ = ["parse_pragmas", "expand_disabled_lines", "pragma_re"]

_COMPOUND = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.If,
    ast.With,
    ast.AsyncWith,
    ast.Try,
    ast.Match,
)
_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def pragma_re(tool: str) -> re.Pattern:
    """The pragma pattern for one tool tag (``repro-lint``, ``contracts``)."""
    return re.compile(
        rf"#\s*{re.escape(tool)}:\s*(disable|module)\s*=\s*([\w./,\- ]+)"
    )


def parse_pragmas(
    source: str, tool: str
) -> tuple[dict[int, frozenset[str]], str | None]:
    """Raw per-line disabled-rule sets and the optional module override.

    The returned mapping is *unexpanded* — pass it through
    :func:`expand_disabled_lines` with the parsed tree to apply the
    statement-span semantics documented above.
    """
    pattern = pragma_re(tool)
    disabled: dict[int, frozenset[str]] = {}
    module_override: str | None = None
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = pattern.search(line)
        if not m:
            continue
        kind, value = m.group(1), m.group(2)
        if kind == "module":
            module_override = value.strip()
        else:
            rules = frozenset(v.strip().upper() for v in value.split(","))
            disabled[lineno] = disabled.get(lineno, frozenset()) | rules
    return disabled, module_override


def _statement_spans(tree: ast.AST) -> list[tuple[int, int, int]]:
    """``(attach_start, attach_end, suppress_end)`` per statement.

    ``attach_*`` bound the lines a pragma may sit on to claim the
    statement; ``suppress_end`` bounds the lines its suppression covers
    (always starting at ``attach_start``).
    """
    spans: list[tuple[int, int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = getattr(node, "end_lineno", None)
        if end is None:  # pragma: no cover - py<3.8 only
            continue
        start = node.lineno
        decorators = getattr(node, "decorator_list", [])
        if decorators:
            start = min(start, min(d.lineno for d in decorators))
        if isinstance(node, _DEFS):
            # attach on decorators/signature; suppress the whole body
            body = node.body
            header_end = body[0].lineno - 1 if body else end
            spans.append((start, header_end, end))
        elif isinstance(node, _COMPOUND):
            # attach on (possibly multi-line) header; suppress header only
            first = node.body[0].lineno if node.body else end + 1
            header_end = max(start, first - 1)
            spans.append((start, header_end, header_end))
        else:
            # simple statement: the whole extent is both attach and span
            spans.append((start, end, end))
    return spans


def expand_disabled_lines(
    tree: ast.AST, raw: dict[int, frozenset[str]]
) -> dict[int, frozenset[str]]:
    """Expand raw pragma lines over the statements carrying them.

    For each pragma line, the innermost statement whose *attach* region
    contains it claims the pragma, and the pragma's rules are disabled
    on every line of that statement's *suppress* span.  Unclaimed pragma
    lines keep line-local scope.
    """
    spans = _statement_spans(tree)
    out: dict[int, frozenset[str]] = {}

    def add(line: int, rules: frozenset[str]) -> None:
        out[line] = out.get(line, frozenset()) | rules

    for pragma_line, rules in raw.items():
        claimed = [
            (start, attach_end, sup_end)
            for start, attach_end, sup_end in spans
            if start <= pragma_line <= attach_end
        ]
        if not claimed:
            add(pragma_line, rules)
            continue
        # innermost claimant: latest start, then tightest suppression span
        start, _, sup_end = max(claimed, key=lambda s: (s[0], -(s[2] - s[0])))
        for line in range(start, sup_end + 1):
            add(line, rules)
    return out
