"""The self-report: what the analyzer looked at and what it concluded.

``repro-contracts --report results/contracts_report.txt`` writes a small
human-readable summary — module/function/loop counts, findings per
pass, suppression count — so a reviewer can see at a glance that the
analyzer actually covered the tree (a run that silently analyzed three
files and found nothing would be indistinguishable from a clean bill of
health otherwise).  Content is derived purely from the analysis result;
no timestamps, so the artifact is reproducible byte-for-byte.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.contracts.registry import PASSES, RULES

__all__ = ["render_report", "write_report"]


def render_report(result) -> str:
    s = result.stats
    lines = [
        "repro-contracts self-report",
        "===========================",
        "",
        "coverage",
        f"  modules analyzed:    {s['modules']}",
        f"  functions:           {s['functions']}",
        f"  loops:               {s['loops']}",
        f"  call-graph edges:    {s['call_edges']}",
        f"  registry factories:  {s['registry_factories']}",
        f"  entry points:        {s['entry_points']}",
        "",
        "findings by pass",
    ]
    by_pass = s.get("by_pass", {})
    for info in PASSES:
        lines.append(
            f"  {info.pass_id:<13} ({'/'.join(info.rules)}): "
            f"{by_pass.get(info.pass_id, 0)}"
        )
    by_rule = s.get("by_rule", {})
    if by_rule:
        lines.append("")
        lines.append("findings by rule")
        for rule, count in by_rule.items():
            lines.append(f"  {rule}: {count}  ({RULES.get(rule, '')})")
    lines += [
        "",
        f"total findings:      {s['findings']}",
        f"suppressed (pragma): {s['suppressed']}",
        "",
    ]
    return "\n".join(lines)


def write_report(result, path: str | Path) -> None:
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(render_report(result), encoding="utf-8")
