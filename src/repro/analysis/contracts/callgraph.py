"""Project-wide call graph with registry-indirection resolution.

Resolution is *name-based and over-approximate*: a call may resolve to
several candidate functions, and passes treat "any candidate does X" or
"all candidates do X" as the pass semantics require.  The kinds:

* ``foo(...)`` — every top-level function named ``foo``; if none, every
  class named ``foo`` contributes its ``__init__``;
* ``self.foo(...)`` — resolved up the (syntactic) class hierarchy of the
  enclosing class, falling back to any method named ``foo`` project-wide
  when the hierarchy does not define it;
* ``obj.foo(...)`` — every *method* named ``foo`` anywhere (receiver
  types are unknown statically); when the receiver's bare name matches
  a project module's basename (``spans.run(...)``), the module's
  top-level ``foo`` instead;
* ``TABLE[...](...)`` — the values of any module-level dict literal
  named ``TABLE`` (e.g. the ``ALL_EXPERIMENTS`` experiment table);
* ``make_algorithm(...)`` — the AlgorithmSpec registry indirection: the
  factory callables extracted from ``_spec(...)`` / ``AlgorithmSpec(...)``
  calls in the registry module, so the graph flows from an entry through
  the registry into every algorithm implementation.

On top of the edges, three interprocedural facts are computed to a
fixpoint (they are monotone boolean summaries, so iteration converges):
``contains_loop``, ``does_loop_work`` (has a loop here or in any
callee) and ``reaches_checkpoint``.  Reachability from the configured
entry roots is a plain BFS over the resolved edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.contracts.config import ContractConfig
from repro.analysis.contracts.model import CallSite, FunctionInfo, Project

__all__ = ["CallGraph", "build_callgraph"]

#: sentinel "class" for values produced by the registry indirection
_REGISTRY_TYPE = "@registry"


@dataclass
class CallGraph:
    project: Project
    config: ContractConfig
    #: function key → FunctionInfo
    by_key: dict[str, FunctionInfo] = field(default_factory=dict)
    #: function key → resolved callee keys (order-stable)
    edges: dict[str, list[str]] = field(default_factory=dict)
    #: callee key → caller keys
    redges: dict[str, list[str]] = field(default_factory=dict)
    #: factory function names extracted from the AlgorithmSpec registry
    registry_factories: list[str] = field(default_factory=list)
    # fixpoint summaries, per function key
    contains_loop: dict[str, bool] = field(default_factory=dict)
    does_loop_work: dict[str, bool] = field(default_factory=dict)
    reaches_checkpoint: dict[str, bool] = field(default_factory=dict)
    #: keys reachable from functions named in config.entry_names
    reachable_from_entries: set[str] = field(default_factory=set)
    #: entry root keys (functions whose bare name is an entry name)
    entry_keys: set[str] = field(default_factory=set)

    # ------------------------------------------------------------------
    def resolve(self, caller: FunctionInfo, site: CallSite) -> list[str]:
        """Candidate callee keys for one call site (may be empty)."""
        return self._resolve_site(caller, site)

    def callees(self, key: str) -> list[str]:
        return self.edges.get(key, [])

    def callers(self, key: str) -> list[str]:
        return self.redges.get(key, [])

    def transitive_callees(self, key: str) -> set[str]:
        seen: set[str] = set()
        stack = list(self.edges.get(key, ()))
        while stack:
            k = stack.pop()
            if k in seen:
                continue
            seen.add(k)
            stack.extend(self.edges.get(k, ()))
        return seen

    def transitive_callers(self, keys: set[str]) -> set[str]:
        """All functions from which any of ``keys`` is reachable."""
        seen: set[str] = set(keys)
        stack = [c for k in keys for c in self.redges.get(k, ())]
        while stack:
            k = stack.pop()
            if k in seen:
                continue
            seen.add(k)
            stack.extend(self.redges.get(k, ()))
        return seen

    # ------------------------------------------------------------------
    # internal: populated by build_callgraph
    def _index(self) -> None:
        self._top_level: dict[str, list[str]] = {}
        self._methods: dict[str, list[str]] = {}
        self._by_cls_method: dict[tuple[str, str], list[str]] = {}
        self._classes: dict[str, list[str]] = {}  # class name → modules
        self._tables: dict[str, list[str]] = {}
        self._module_basenames: dict[str, set[str]] = {}
        self._by_module = self.project.by_module()
        self._local_types_cache: dict[str, dict[str, set[str]]] = {}
        #: (module, class, attr) → classes assigned via ``self.attr = Foo(...)``
        self._attr_types: dict[tuple[str, str, str], set[str]] = {}
        for mod in self.project.modules:
            base = mod.module.rsplit("/", 1)[-1].removesuffix(".py")
            self._module_basenames.setdefault(base, set()).add(mod.module)
        for mod in self.project.modules:
            for tbl, names in mod.dispatch_tables.items():
                self._tables.setdefault(tbl, []).extend(names)
            for cls in mod.class_bases:
                self._classes.setdefault(cls, []).append(mod.module)
        for fn in self.project.functions():
            self.by_key[fn.key] = fn
            if "." not in fn.qname:
                self._top_level.setdefault(fn.name, []).append(fn.key)
            elif fn.cls is not None:
                self._methods.setdefault(fn.name, []).append(fn.key)
                self._by_cls_method.setdefault((fn.cls, fn.name), []).append(
                    fn.key
                )
        # self.<attr> = Foo(...) anywhere in a class → attr's candidate types
        for fn in self.project.functions():
            if fn.cls is None:
                continue
            for node in ast.walk(fn.node):
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and isinstance(node.targets[0].value, ast.Name)
                    and node.targets[0].value.id in ("self", "cls")
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                func = node.value.func
                name = None
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                cls = self._ctor_class(name, fn)
                marker = (
                    _REGISTRY_TYPE
                    if name in self.config.indirection_names
                    else cls
                )
                if marker is not None:
                    self._attr_types.setdefault(
                        (fn.module.module, fn.cls, node.targets[0].attr), set()
                    ).add(marker)

    def _resolve_site(self, caller: FunctionInfo, site: CallSite) -> list[str]:
        if site.kind == "name":
            if site.name in self.config.indirection_names:
                return self._resolve_registry()
            # same-module definitions shadow everything else
            local = [
                f.key
                for f in caller.module.functions
                if f.name == site.name
                and ("." not in f.qname or f.cls is None)
            ]
            if local:
                return _dedup(local)
            # an explicit ``from repro.x import name`` pins the target
            imp = caller.module.imports.get(site.name)
            if imp is not None:
                source, orig = imp
                m = self._by_module.get(source)
                if m is not None:
                    hits = [f.key for f in m.functions if f.qname == orig]
                    if not hits:  # class import → its __init__
                        hits = [
                            f.key
                            for f in m.functions
                            if f.qname == orig + ".__init__"
                        ]
                    if hits:
                        return _dedup(hits)
            hits = self._top_level.get(site.name, [])
            if not hits:
                # class instantiation → __init__
                hits = self._by_cls_method_all(site.name, "__init__")
            return _dedup(hits)
        if site.kind == "self":
            if caller.cls is None and "." in caller.qname:
                # method-nested helper: treat like attr
                return _dedup(self._methods.get(site.name, []))
            cls = caller.cls or caller.qname.split(".", 1)[0]
            hits = self._resolve_in_hierarchy(cls, site.name, caller)
            if hits:
                return hits
            return _dedup(self._methods.get(site.name, []))
        if site.kind == "attr":
            if site.name in self.config.indirection_names:
                return self._resolve_registry()
            types = self._receiver_types(caller, site)
            if types is not None:
                out: list[str] = []
                for cls in types:
                    if cls == _REGISTRY_TYPE:
                        out.extend(self._registry_method(site.name))
                    else:
                        out.extend(self._hierarchy_methods(cls, site.name))
                return _dedup(out)
            if site.recv is not None and site.recv in self._module_basenames:
                mods = self._module_basenames[site.recv]
                return _dedup(
                    [
                        k
                        for k in self._top_level.get(site.name, [])
                        if k.split("::", 1)[0] in mods
                    ]
                )
            return _dedup(self._methods.get(site.name, []))
        if site.kind == "table":
            names = self._tables.get(site.table or "", [])
            out: list[str] = []
            for n in names:
                out.extend(self._top_level.get(n, []))
            return _dedup(out)
        return []

    def _by_cls_method_all(self, cls: str, meth: str) -> list[str]:
        return self._by_cls_method.get((cls, meth), [])

    def _resolve_in_hierarchy(
        self, cls: str, meth: str, caller: FunctionInfo
    ) -> list[str]:
        seen: set[str] = set()
        queue = [cls]
        while queue:
            c = queue.pop(0)
            if c in seen:
                continue
            seen.add(c)
            hits = self._by_cls_method.get((c, meth))
            if hits:
                return list(hits)
            queue.extend(caller.module.class_bases.get(c, []))
            for mod in self.project.modules:
                if c in mod.class_bases and mod is not caller.module:
                    queue.extend(mod.class_bases[c])
        return []

    # -- receiver typing ------------------------------------------------
    def _ctor_class(self, name: str | None, caller: FunctionInfo) -> str | None:
        """The project class ``name`` names (directly or via import)."""
        if name is None:
            return None
        if name in self._classes:
            return name
        imp = caller.module.imports.get(name)
        if imp is not None and imp[1] in self._classes:
            return imp[1]
        return None

    def _receiver_types(
        self, caller: FunctionInfo, site: CallSite
    ) -> list[str] | None:
        """Candidate classes of an attr call's receiver (None = unknown).

        Sources, in order: a class used as the receiver itself
        (``RowPartition.build(...)``), a chained constructor
        (``PeeK(...).run(k)``), a local assigned from a constructor or
        the registry indirection, and a ``self.<attr>`` whose class
        assigns it from a constructor somewhere.
        """
        if site.recv is not None:
            cls = self._ctor_class(site.recv, caller)
            if cls is not None:
                return [cls]
            local = self._local_types(caller).get(site.recv)
            if local:
                return sorted(local)
            return None
        if site.recv_ctor is not None:
            if site.recv_ctor in self.config.indirection_names:
                return [_REGISTRY_TYPE]
            cls = self._ctor_class(site.recv_ctor, caller)
            if cls is not None:
                return [cls]
            return None
        if site.recv_self_attr is not None and caller.cls is not None:
            hit = self._attr_types.get(
                (caller.module.module, caller.cls, site.recv_self_attr)
            )
            if hit:
                return sorted(hit)
        return None

    def _annotation_class(self, ann, caller: FunctionInfo) -> str | None:
        """The project class an annotation names, unwrapping Optional/unions."""
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            return self._ctor_class(ann.value.strip(), caller)
        if isinstance(ann, ast.Name):
            return self._ctor_class(ann.id, caller)
        if isinstance(ann, ast.Attribute):
            return self._ctor_class(ann.attr, caller)
        if isinstance(ann, ast.BinOp):  # X | None
            return self._annotation_class(
                ann.left, caller
            ) or self._annotation_class(ann.right, caller)
        if isinstance(ann, ast.Subscript):  # Optional[X]
            return self._annotation_class(ann.slice, caller)
        return None

    def _local_types(self, caller: FunctionInfo) -> dict[str, set[str]]:
        cached = self._local_types_cache.get(caller.key)
        if cached is not None:
            return cached
        types: dict[str, set[str]] = {}
        args = caller.node.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        ):
            cls = self._annotation_class(arg.annotation, caller)
            if cls is not None:
                types.setdefault(arg.arg, set()).add(cls)
        for node in ast.walk(caller.node):
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                cls = self._annotation_class(node.annotation, caller)
                if cls is not None:
                    types.setdefault(node.target.id, set()).add(cls)
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                continue
            func = node.value.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            target = node.targets[0].id
            if name in self.config.indirection_names:
                types.setdefault(target, set()).add(_REGISTRY_TYPE)
            else:
                cls = self._ctor_class(name, caller)
                if cls is not None:
                    types.setdefault(target, set()).add(cls)
        self._local_types_cache[caller.key] = types
        return types

    def _hierarchy_methods(self, cls: str, meth: str) -> list[str]:
        """Methods named ``meth`` on ``cls`` or its (syntactic) ancestors."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            c = queue.pop(0)
            if c in seen:
                continue
            seen.add(c)
            hits = self._by_cls_method.get((c, meth))
            if hits:
                return list(hits)
            for mod in self.project.modules:
                if c in mod.class_bases:
                    queue.extend(mod.class_bases[c])
        return []

    def _registry_method(self, meth: str) -> list[str]:
        out: list[str] = []
        for name in self.registry_factories:
            if name in self._classes:
                out.extend(self._hierarchy_methods(name, meth))
        return out

    def _resolve_registry(self) -> list[str]:
        out: list[str] = []
        for name in self.registry_factories:
            out.extend(self._top_level.get(name, []))
            out.extend(self._by_cls_method_all(name, "__init__"))
        return _dedup(out)


def _dedup(keys: list[str]) -> list[str]:
    seen: set[str] = set()
    out: list[str] = []
    for k in keys:
        if k not in seen:
            seen.add(k)
            out.append(k)
    return out


# ----------------------------------------------------------------------
# registry factory extraction


def _extract_registry_factories(project: Project, config: ContractConfig) -> list[str]:
    """Factory names from ``_spec(...)``/``AlgorithmSpec(...)`` calls.

    The registry's spec constructor takes the algorithm name first and
    the factory second (or as ``factory=``); we harvest the syntactic
    name of that argument wherever the call appears in the registry
    module — inside the ``ALGORITHMS`` table literal or anywhere else.
    """
    mod = project.find_module(config.registry_module)
    if mod is None:
        return []
    names: list[str] = []
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        fname = None
        if isinstance(node.func, ast.Name):
            fname = node.func.id
        elif isinstance(node.func, ast.Attribute):
            fname = node.func.attr
        if fname not in ("_spec", "AlgorithmSpec"):
            continue
        factory = None
        if len(node.args) >= 2:
            factory = node.args[1]
        for kw in node.keywords:
            if kw.arg == "factory":
                factory = kw.value
        if isinstance(factory, ast.Name):
            names.append(factory.id)
        elif isinstance(factory, ast.Attribute):
            names.append(factory.attr)
    return _dedup(names)


# ----------------------------------------------------------------------
# local structural facts feeding the fixpoint


def _has_loop(fn: FunctionInfo) -> bool:
    for node in ast.walk(fn.node):
        if node is fn.node:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # nested functions are their own entries
        if isinstance(node, (ast.For, ast.While, ast.AsyncFor)):
            return True
    return False


def _walk_own(fn: FunctionInfo):
    """Walk ``fn``'s body without descending into nested functions."""
    stack = list(getattr(fn.node, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def build_callgraph(project: Project, config: ContractConfig) -> CallGraph:
    cg = CallGraph(project=project, config=config)
    cg._index()
    cg.registry_factories = _extract_registry_factories(project, config)

    # edges -------------------------------------------------------------
    for fn in project.functions():
        resolved: list[str] = []
        for site in fn.calls:
            resolved.extend(cg._resolve_site(fn, site))
        cg.edges[fn.key] = _dedup(resolved)
    for caller, callees in cg.edges.items():
        for callee in callees:
            cg.redges.setdefault(callee, []).append(caller)

    # local facts --------------------------------------------------------
    calls_checkpoint: dict[str, bool] = {}
    for fn in project.functions():
        cg.contains_loop[fn.key] = _has_loop(fn)
        cg.does_loop_work[fn.key] = cg.contains_loop[fn.key]
        calls_checkpoint[fn.key] = any(
            site.name in config.checkpoint_names for site in fn.calls
        )
        cg.reaches_checkpoint[fn.key] = calls_checkpoint[fn.key]

    # fixpoint -----------------------------------------------------------
    changed = True
    while changed:
        changed = False
        for key, callees in cg.edges.items():
            if not cg.does_loop_work[key] and any(
                cg.does_loop_work.get(c, False) for c in callees
            ):
                cg.does_loop_work[key] = True
                changed = True
            if not cg.reaches_checkpoint[key] and any(
                cg.reaches_checkpoint.get(c, False) for c in callees
            ):
                cg.reaches_checkpoint[key] = True
                changed = True

    # entry reachability -------------------------------------------------
    cg.entry_keys = {
        fn.key
        for fn in project.functions()
        if fn.name in config.entry_names
    }
    seen = set(cg.entry_keys)
    stack = list(cg.entry_keys)
    while stack:
        k = stack.pop()
        for c in cg.edges.get(k, ()):
            if c not in seen:
                seen.add(c)
                stack.append(c)
    cg.reachable_from_entries = seen
    return cg
