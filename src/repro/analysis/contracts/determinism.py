"""Pass 1 — determinism discipline (CTR101, CTR102, CTR103).

Reproducibility here rests on two injection seams: RNGs are constructed
from explicit seeds and passed down, and every time read goes through
:func:`repro.cancel.now` so a simulated clock can be installed.  This
pass proves the seams are the *only* doors:

* **CTR101** — a function reachable from a public entry calls into
  module-level RNG state (``random.random()``, ``np.random.shuffle``),
  whose hidden global seed makes runs irreproducible;
* **CTR102** — a wall-clock read (``time.time``, ``time.perf_counter``,
  ``datetime.now``…) outside the injectable-clock module, invisible to
  an installed :class:`SimClock`;
* **CTR103** — an RNG object stored in a module global, smuggling
  nondeterminism across subsystem boundaries without appearing in any
  function signature.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding

__all__ = ["run"]

#: functions on the stdlib/numpy RNG *modules* that read or mutate the
#: hidden global stream (constructors of seedable objects are exempt)
_RNG_CONSTRUCTORS = {
    "Random",
    "SystemRandom",
    "default_rng",
    "RandomState",
    "Generator",
    "PCG64",
    "SeedSequence",
}
_WALL_FUNCS = {"time", "perf_counter", "monotonic", "process_time", "clock"}
_DATETIME_FUNCS = {"now", "utcnow", "today"}


def _import_maps(tree: ast.Module):
    """Local aliases of the time/random/numpy modules and their functions."""
    time_mods: set[str] = set()
    random_mods: set[str] = set()
    numpy_mods: set[str] = set()
    datetime_mods: set[str] = set()
    wall_names: set[str] = set()  # ``from time import perf_counter as pc``
    rng_names: set[str] = set()  # ``from random import randint``
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                if alias.name == "time":
                    time_mods.add(local)
                elif alias.name == "random":
                    random_mods.add(local)
                elif alias.name in ("numpy", "numpy.random"):
                    numpy_mods.add(local)
                elif alias.name == "datetime":
                    datetime_mods.add(local)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_FUNCS:
                        wall_names.add(alias.asname or alias.name)
            elif node.module == "random":
                for alias in node.names:
                    if alias.name not in _RNG_CONSTRUCTORS:
                        rng_names.add(alias.asname or alias.name)
            elif node.module == "datetime":
                for alias in node.names:
                    if alias.name == "datetime":
                        datetime_mods.add(alias.asname or "datetime")
            elif node.module in ("numpy.random",) and node.names:
                for alias in node.names:
                    if alias.name not in _RNG_CONSTRUCTORS:
                        rng_names.add(alias.asname or alias.name)
    return time_mods, random_mods, numpy_mods, datetime_mods, wall_names, rng_names


def _receiver_chain(node: ast.expr) -> list[str]:
    """``np.random.shuffle`` → ``["np", "random", "shuffle"]`` (or [])."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _classify_rng_call(call: ast.Call, maps) -> str | None:
    """``"module-state"`` for global-stream calls, else ``None``."""
    _, random_mods, numpy_mods, _, _, rng_names = maps
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in rng_names:
            return "module-state"
        return None
    chain = _receiver_chain(func)
    if len(chain) < 2:
        return None
    head, attr = chain[0], chain[-1]
    if attr in _RNG_CONSTRUCTORS:
        return None
    if head in random_mods and len(chain) == 2:
        return "module-state"
    if head in numpy_mods and len(chain) >= 3 and chain[1] == "random":
        return "module-state"
    return None


def _is_wall_clock(call: ast.Call, maps) -> str | None:
    time_mods, _, _, datetime_mods, wall_names, _ = maps
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in wall_names:
            return func.id
        return None
    chain = _receiver_chain(func)
    if len(chain) < 2:
        return None
    head, attr = chain[0], chain[-1]
    if head in time_mods and attr in _WALL_FUNCS:
        return f"{head}.{attr}"
    if attr in _DATETIME_FUNCS and (
        head in datetime_mods or "datetime" in chain[:-1]
    ):
        return ".".join(chain)
    return None


def _is_rng_construction(value: ast.expr, maps) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id in _RNG_CONSTRUCTORS
    chain = _receiver_chain(func)
    return bool(chain) and chain[-1] in _RNG_CONSTRUCTORS


def run(ctx, only_modules=None) -> list[Finding]:
    findings: list[Finding] = []
    for mod in ctx.project.modules:
        if only_modules is not None and mod.module not in only_modules:
            continue
        if mod.syntax_error:
            continue
        maps = _import_maps(mod.tree)
        clock_exempt = any(
            mod.module == m or mod.module.endswith("/" + m)
            for m in ctx.config.clock_modules
        )

        # CTR102: wall-clock calls anywhere in the module ----------------
        if not clock_exempt:
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = _is_wall_clock(node, maps)
                if name is not None:
                    findings.append(
                        Finding(
                            tool="contracts",
                            rule="CTR102",
                            severity="error",
                            message=(
                                f"wall-clock read {name}() bypasses the "
                                "injectable clock; route through "
                                "repro.cancel.now() / deadline_in()"
                            ),
                            path=mod.path,
                            line=node.lineno,
                            column=node.col_offset,
                            context={"module": mod.module},
                        )
                    )

        # CTR101: module-level RNG state in entry-reachable code ---------
        for fn in mod.functions:
            if fn.key not in ctx.graph.reachable_from_entries:
                continue
            for site in fn.calls:
                if _classify_rng_call(site.node, maps) is not None:
                    findings.append(
                        Finding(
                            tool="contracts",
                            rule="CTR101",
                            severity="error",
                            message=(
                                f"{fn.qname}() is reachable from a public "
                                "entry and draws from module-level RNG "
                                "state; construct a seeded Generator and "
                                "pass it down"
                            ),
                            path=mod.path,
                            line=site.node.lineno,
                            column=site.node.col_offset,
                            context={"module": mod.module, "function": fn.qname},
                        )
                    )

        # CTR103: RNG objects parked in module globals -------------------
        for stmt in mod.tree.body:
            targets: list[ast.expr] = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_rng_construction(value, maps):
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            label = ", ".join(names) or "<module global>"
            findings.append(
                Finding(
                    tool="contracts",
                    rule="CTR103",
                    severity="error",
                    message=(
                        f"RNG object bound to module global {label!r}; RNGs "
                        "crossing subsystem boundaries must be explicit "
                        "parameters, not ambient globals"
                    ),
                    path=mod.path,
                    line=stmt.lineno,
                    column=stmt.col_offset,
                    context={"module": mod.module},
                )
            )
    return findings
