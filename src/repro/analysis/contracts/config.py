"""Configuration for the contract analyzer.

Everything repo-specific lives here as *data*: which functions are
public entries, which module owns the injectable clock, which parallel
phase functions are audited against which recorder declarations.  The
fixture corpora under ``tests/analysis/fixtures/contracts/`` run the
same passes with the same default config — fixture modules masquerade as
library modules via ``# contracts: module=repro/...`` pragmas — so a
fixture exercises exactly the code path CI runs on the real tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AuditGroup", "ContractConfig", "default_config"]


@dataclass(frozen=True)
class AuditGroup:
    """One footprint audit: phase functions vs. a recorder's declaration.

    ``functions`` are ``(module-suffix, qualname)`` pairs; the static
    writes inferred across the whole group (a decomposition usually
    spans a worker function and a committing master method) are diffed
    against the read/write resource names declared by ``recorder`` in
    the declarations module.
    """

    label: str
    recorder: str
    functions: tuple[tuple[str, str], ...]
    #: array names treated as shared state (before ``name_map``)
    shared: frozenset[str]
    #: array name → declared resource name (e.g. ``out_tgt`` → ``out``)
    name_map: tuple[tuple[str, str], ...] = ()

    def resource_of(self, name: str) -> str | None:
        """The declared resource a (normalised) array name maps to."""
        stripped = name.lstrip("_")
        for array, resource in self.name_map:
            if stripped == array.lstrip("_"):
                return resource
        if name in self.shared or stripped in self.shared:
            return stripped
        return None


@dataclass(frozen=True)
class ContractConfig:
    """Tunable surface of the analyzer (defaults match this repo)."""

    # -- entry points ---------------------------------------------------
    #: bare function/method names treated as public entries (CTR1xx
    #: reachability roots and CTR501 subjects)
    entry_names: frozenset[str] = frozenset({"solve", "serve", "main"})
    #: subset of entries whose call trees must checkpoint (CTR201):
    #: the deadline-carrying doors, not the CLI drivers
    cancellation_roots: frozenset[str] = frozenset({"solve", "serve"})

    # -- determinism ----------------------------------------------------
    #: modules allowed to touch the wall clock (the injectable substrate)
    clock_modules: frozenset[str] = frozenset({"repro/cancel.py"})

    # -- cancellation ---------------------------------------------------
    #: the cooperative-cancellation seam (call by this name = coverage)
    checkpoint_names: frozenset[str] = frozenset({"checkpoint"})

    # -- entry contracts ------------------------------------------------
    #: request validators (reaching one of these = validated)
    validator_names: frozenset[str] = frozenset({"validate_query"})
    #: module prefixes that count as "kernel code" for CTR501 — the
    #: query-serving KSP kernel.  SSSP and graph plumbing are excluded
    #: on purpose: ``validate_query`` validates a *query*, and a bench
    #: running bare ``delta_stepping(graph, src)`` has none to validate.
    kernel_prefixes: tuple[str, ...] = ("repro/ksp/",)
    #: call names resolved through the AlgorithmSpec registry
    indirection_names: frozenset[str] = frozenset({"make_algorithm"})
    #: module (suffix) holding the ALGORITHMS registry table
    registry_module: str = "repro/ksp/registry.py"

    # -- footprints -----------------------------------------------------
    #: module holding the Footprint recorder declarations
    declarations_module: str = "repro/analysis/race.py"
    audits: tuple[AuditGroup, ...] = ()

    # -- span pairing ---------------------------------------------------
    #: method name opening a span (the obs tracer API)
    span_open_attr: str = "span"
    #: call names / attrs that close a manually-held span
    span_close_attrs: frozenset[str] = frozenset({"__exit__", "close"})

    def digest_fields(self) -> dict:
        """JSON-ready view used in cache keys (order-stable)."""
        return {
            "entry_names": sorted(self.entry_names),
            "cancellation_roots": sorted(self.cancellation_roots),
            "clock_modules": sorted(self.clock_modules),
            "checkpoint_names": sorted(self.checkpoint_names),
            "validator_names": sorted(self.validator_names),
            "kernel_prefixes": list(self.kernel_prefixes),
            "indirection_names": sorted(self.indirection_names),
            "registry_module": self.registry_module,
            "declarations_module": self.declarations_module,
            "audits": [
                {
                    "label": a.label,
                    "recorder": a.recorder,
                    "functions": [list(f) for f in a.functions],
                    "shared": sorted(a.shared),
                    "name_map": [list(m) for m in a.name_map],
                }
                for a in self.audits
            ],
            "span_open_attr": self.span_open_attr,
            "span_close_attrs": sorted(self.span_close_attrs),
        }


def default_config() -> ContractConfig:
    """The shipped configuration: this repo's contracts."""
    return ContractConfig(
        audits=(
            AuditGroup(
                label="mp-backend",
                recorder="MPBackendFootprints",
                functions=(
                    ("repro/parallel/mp_backend.py", "_worker_main"),
                    (
                        "repro/parallel/mp_backend.py",
                        "SharedMemoryDeltaExecutor.relax",
                    ),
                ),
                shared=frozenset(
                    {
                        "dist",
                        "parent",
                        "frontier",
                        "out_tgt",
                        "out_src",
                        "out_cand",
                    }
                ),
                name_map=(
                    ("out_tgt", "out"),
                    ("out_src", "out"),
                    ("out_cand", "out"),
                ),
            ),
            AuditGroup(
                label="delta-stepping",
                recorder="DeltaSteppingFootprints",
                functions=(
                    ("repro/sssp/delta_stepping.py", "_VectorizedEngine.relax"),
                    ("repro/sssp/delta_stepping.py", "_ScalarEngine.relax"),
                ),
                shared=frozenset({"dist", "parent"}),
            ),
            AuditGroup(
                label="dist-delta",
                recorder="DistDeltaFootprints",
                functions=(
                    (
                        "repro/distributed/dist_sssp.py",
                        "distributed_delta_stepping",
                    ),
                ),
                shared=frozenset({"dist", "parent", "needs"}),
            ),
        ),
    )
