"""Pass 4 — static footprint audit (CTR401, CTR402).

The simulated race detector (:mod:`repro.analysis.race`) is only as good
as the footprints the recorders *declare*: ``record_mp_step`` says "the
workers write ``out``, the master writes ``dist``/``parent``", and the
detector checks those claims against each other — not against the code.
An array the kernel writes but the recorder never mentions is invisible
to every race the detector could have caught on it.

This pass closes that loop statically.  For each configured audit group
it

1. extracts the *declared* write resources from the recorder class in
   the declarations module — string constants flowing into
   ``writes[...].add((name, ...))`` (through aliases like
   ``w = writes[...]``) and into ``comm.record_writes(rank, ((name, v)
   for ...))`` generators;
2. *infers* the arrays the phase functions actually write — subscript
   stores, ``.fill(...)``, ``out=`` keywords — tracking aliases
   (``dist = arrays["dist"]``, ``d = self._dist``) and propagating
   through calls via a parameter-write summary computed to a fixpoint
   (``_relax_batch(self.dist, ...)`` writes its first two parameters);
3. diffs the two: an inferred-but-undeclared write is **CTR401** (the
   detector is blind to races on it); a declared-but-never-written
   resource is **CTR402** (the declaration drifted from the code and
   the detector checks fiction).

Private scratch arrays — anything not in the group's shared set — are
ignored on purpose; the contract covers shared state only.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding

__all__ = ["run", "declared_writes"]


# ----------------------------------------------------------------------
# declared side


def _const_resource(elt: ast.expr) -> str | None:
    """The resource name of one footprint tuple: ``("dist", v)`` → dist."""
    if isinstance(elt, ast.Tuple) and elt.elts:
        first = elt.elts[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


def declared_writes(decl_mod, recorder: str) -> tuple[set[str], int] | None:
    """Write resource names declared by ``recorder`` in the decl module.

    Returns ``(names, class_lineno)`` or ``None`` when the class is
    missing from the declarations module.
    """
    cls_node = None
    for node in decl_mod.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == recorder:
            cls_node = node
            break
    if cls_node is None:
        return None
    names: set[str] = set()
    # names aliased to ``writes[...]`` subscript cells, e.g. ``w = writes[t]``
    write_aliases: set[str] = {"writes"}
    for node in ast.walk(cls_node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            tgt, val = node.targets[0], node.value
            if (
                isinstance(tgt, ast.Name)
                and isinstance(val, ast.Subscript)
                and isinstance(val.value, ast.Name)
                and val.value.id in write_aliases
            ):
                write_aliases.add(tgt.id)
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        # writes[t].add((name, ...)) / w.add((name, ...))
        if func.attr == "add" and node.args:
            base = func.value
            is_writes = (
                isinstance(base, ast.Subscript)
                and isinstance(base.value, ast.Name)
                and base.value.id in write_aliases
            ) or (isinstance(base, ast.Name) and base.id in write_aliases)
            if is_writes:
                r = _const_resource(node.args[0])
                if r is not None:
                    names.add(r)
        # comm.record_writes(rank, ((name, v) for ...)) / tuple literal
        if func.attr == "record_writes" and len(node.args) >= 2:
            payload = node.args[1]
            elts: list[ast.expr] = []
            if isinstance(payload, ast.GeneratorExp):
                elts = [payload.elt]
            elif isinstance(payload, (ast.Tuple, ast.List, ast.Set)):
                elts = list(payload.elts)
            for elt in elts:
                r = _const_resource(elt)
                if r is not None:
                    names.add(r)
    return names, cls_node.lineno


# ----------------------------------------------------------------------
# inferred side


def _param_names(fn) -> list[str]:
    args = fn.node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if fn.cls is not None and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _written_names(fn) -> set[str]:
    """Bare names ``fn`` writes through: ``x[...] = ``, ``x.fill``, ``out=x``."""
    out: set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for tgt in targets:
                if isinstance(tgt, ast.Subscript) and isinstance(
                    tgt.value, ast.Name
                ):
                    out.add(tgt.value.id)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "fill"
                and isinstance(func.value, ast.Name)
            ):
                out.add(func.value.id)
            for kw in node.keywords:
                if kw.arg == "out" and isinstance(kw.value, ast.Name):
                    out.add(kw.value.id)
    return out


def compute_param_writes(ctx) -> dict[str, frozenset[int]]:
    """Per-function: parameter indices whose arrays it (transitively) writes."""
    params: dict[str, list[str]] = {}
    writes: dict[str, set[int]] = {}
    for fn in ctx.project.functions():
        names = _param_names(fn)
        params[fn.key] = names
        direct = _written_names(fn)
        writes[fn.key] = {i for i, n in enumerate(names) if n in direct}
    changed = True
    while changed:
        changed = False
        for fn in ctx.project.functions():
            names = params[fn.key]
            if not names:
                continue
            for site in fn.calls:
                for callee in ctx.graph.resolve(fn, site):
                    callee_writes = writes.get(callee)
                    if not callee_writes:
                        continue
                    cparams = params.get(callee, [])
                    passed = _args_by_param(site.node, cparams)
                    for idx in callee_writes:
                        arg = passed.get(idx)
                        if isinstance(arg, ast.Name) and arg.id in names:
                            pidx = names.index(arg.id)
                            if pidx not in writes[fn.key]:
                                writes[fn.key].add(pidx)
                                changed = True
    return {k: frozenset(v) for k, v in writes.items()}


def _args_by_param(call: ast.Call, param_names: list[str]) -> dict[int, ast.expr]:
    out: dict[int, ast.expr] = {}
    for i, arg in enumerate(call.args):
        out[i] = arg
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in param_names:
            out[param_names.index(kw.arg)] = kw.value
    return out


def _attr_resource(expr: ast.expr, group) -> str | None:
    """``self._frontier`` / ``self.dist`` → the shared resource name."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id in ("self", "cls")
    ):
        return group.resource_of(expr.attr)
    return None


def _alias_map(fn, group) -> dict[str, str]:
    """Local name → shared resource, from params and alias assignments."""
    aliases: dict[str, str] = {}
    for name in _param_names(fn):
        r = group.resource_of(name)
        if r is not None:
            aliases[name] = r
    for node in ast.walk(fn.node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        tgt, val = node.targets[0], node.value
        if not isinstance(tgt, ast.Name):
            continue
        # dist = self._dist
        r = _attr_resource(val, group)
        # dist = arrays["dist"]
        if (
            r is None
            and isinstance(val, ast.Subscript)
            and isinstance(val.slice, ast.Constant)
            and isinstance(val.slice.value, str)
        ):
            r = group.resource_of(val.slice.value)
        # dist = frontier  (alias of an alias)
        if r is None and isinstance(val, ast.Name) and val.id in aliases:
            r = aliases[val.id]
        if r is not None:
            aliases[tgt.id] = r
    return aliases


def infer_writes(ctx, fn, group, param_writes) -> dict[str, int]:
    """Shared resources ``fn`` writes → first offending line."""
    aliases = _alias_map(fn, group)
    found: dict[str, int] = {}

    def record(resource: str | None, lineno: int) -> None:
        if resource is not None and resource not in found:
            found[resource] = lineno

    def resolve(expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            hit = aliases.get(expr.id)
            if hit is not None:
                return hit
            # rank-local arrays named for the resource they realise
            # (``dist = np.full(n, INF)`` in the distributed kernel)
            return group.resource_of(expr.id)
        return _attr_resource(expr, group)

    site_by_node = {site.node: site for site in fn.calls}
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for tgt in targets:
                if isinstance(tgt, ast.Subscript):
                    record(resolve(tgt.value), tgt.lineno)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "fill":
                record(resolve(func.value), node.lineno)
            for kw in node.keywords:
                if kw.arg == "out":
                    record(resolve(kw.value), node.lineno)
            site = site_by_node.get(node)
            if site is None:
                continue
            for callee in ctx.graph.resolve(fn, site):
                widx = param_writes.get(callee)
                if not widx:
                    continue
                callee_fn = ctx.graph.by_key.get(callee)
                pnames = _param_names(callee_fn) if callee_fn else []
                passed = _args_by_param(node, pnames)
                for idx in widx:
                    arg = passed.get(idx)
                    if arg is not None:
                        record(resolve(arg), node.lineno)
    return found


def _audit_functions(ctx, group):
    """The group's phase functions, nested defs included."""
    for suffix, qname in group.functions:
        mod = ctx.project.find_module(suffix)
        if mod is None:
            continue
        for fn in mod.functions:
            if fn.qname == qname or fn.qname.startswith(qname + "."):
                yield fn


def run(ctx, only_modules=None) -> list[Finding]:
    findings: list[Finding] = []
    decl_mod = ctx.project.find_module(ctx.config.declarations_module)
    if decl_mod is None:
        return findings
    param_writes = compute_param_writes(ctx)
    for group in ctx.config.audits:
        decl = declared_writes(decl_mod, group.recorder)
        if decl is None:
            continue
        declared, cls_line = decl
        inferred: dict[str, tuple[int, object]] = {}
        for fn in _audit_functions(ctx, group):
            for resource, lineno in infer_writes(ctx, fn, group, param_writes).items():
                if resource not in inferred:
                    inferred[resource] = (lineno, fn)
        for resource in sorted(set(inferred) - declared):
            lineno, fn = inferred[resource]
            if only_modules is not None and fn.module.module not in only_modules:
                continue
            findings.append(
                Finding(
                    tool="contracts",
                    rule="CTR401",
                    severity="error",
                    message=(
                        f"{fn.qname}() writes shared array {resource!r} but "
                        f"{group.recorder} never declares that write; the "
                        "race detector is blind to conflicts on it"
                    ),
                    path=fn.module.path,
                    line=lineno,
                    column=0,
                    context={
                        "module": fn.module.module,
                        "function": fn.qname,
                        "audit": group.label,
                        "resource": resource,
                    },
                )
            )
        shared_resources = {
            group.resource_of(n) for n in group.shared
        } - {None}
        for resource in sorted((declared & shared_resources) - set(inferred)):
            if only_modules is not None and decl_mod.module not in only_modules:
                continue
            findings.append(
                Finding(
                    tool="contracts",
                    rule="CTR402",
                    severity="error",
                    message=(
                        f"{group.recorder} declares writes to {resource!r} "
                        "but no audited phase function writes it; the "
                        "declaration has drifted from the code"
                    ),
                    path=decl_mod.path,
                    line=cls_line,
                    column=0,
                    context={
                        "module": decl_mod.module,
                        "function": group.recorder,
                        "audit": group.label,
                        "resource": resource,
                    },
                )
            )
    return findings
