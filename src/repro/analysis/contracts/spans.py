"""Pass 3 — interprocedural span pairing (CTR301).

Lint rule RPR002 already insists that a tracer span opened with
``__enter__`` is closed in the *same function, lexically*.  Real code
outgrew that: a span handle is opened in one function and handed to a
helper that closes it, or stashed until a later phase.  This pass
upgrades the check to CFG paths across function boundaries:

* a *manual open* is ``handle = <obj>.span(...)`` (optionally chained
  with ``.__enter__()``) outside a ``with`` header — ``with`` pairs
  natively and is exempt;
* a *close* is ``handle.__exit__(...)`` / ``handle.close()``, or passing
  the handle to a function whose summary says it closes that parameter
  (computed to a fixpoint, so a helper that delegates to another helper
  still counts);
* returning or yielding the handle, or storing it into an attribute,
  container, or another name, transfers ownership — the pass stops
  tracking rather than guessing;
* the finding fires when some CFG path from the open reaches the
  function's normal or exceptional exit without passing a close — the
  classic miss is an exception edge skipping the ``__exit__`` because
  the open/close pair is not wrapped in ``try/finally``.
"""

from __future__ import annotations

import ast

from repro.analysis.contracts.cfg import EXC_EXIT, EXIT, build_cfg, own_region
from repro.analysis.findings import Finding

__all__ = ["run", "compute_close_summaries"]


def _unwrap_enter(value: ast.expr) -> ast.expr:
    """``x.span(...).__enter__()`` → the inner ``x.span(...)`` call."""
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "__enter__"
    ):
        return value.func.value
    return value


def _open_target(stmt: ast.stmt, open_attr: str) -> str | None:
    """The variable name bound to a manual span open, if ``stmt`` is one."""
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return None
    target = stmt.targets[0]
    if not isinstance(target, ast.Name):
        return None
    value = _unwrap_enter(stmt.value)
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == open_attr
    ):
        return target.id
    return None


def _param_names(fn) -> list[str]:
    args = fn.node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if fn.cls is not None and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _direct_closes(fn, close_attrs: frozenset[str]) -> set[str]:
    """Names ``x`` with a literal ``x.__exit__()`` / ``x.close()`` in ``fn``."""
    closed: set[str] = set()
    for site in fn.calls:
        func = site.node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in close_attrs
            and isinstance(func.value, ast.Name)
        ):
            closed.add(func.value.id)
    return closed


def compute_close_summaries(ctx) -> dict[str, frozenset[int]]:
    """Per-function: which parameter indices it (transitively) closes."""
    graph = ctx.graph
    close_attrs = ctx.config.span_close_attrs
    params: dict[str, list[str]] = {}
    closes: dict[str, set[int]] = {}
    for fn in ctx.project.functions():
        names = _param_names(fn)
        params[fn.key] = names
        direct = _direct_closes(fn, close_attrs)
        closes[fn.key] = {i for i, n in enumerate(names) if n in direct}

    changed = True
    while changed:
        changed = False
        for fn in ctx.project.functions():
            names = params[fn.key]
            if not names:
                continue
            for site in fn.calls:
                for callee in graph.resolve(fn, site):
                    callee_closed = closes.get(callee)
                    if not callee_closed:
                        continue
                    passed = _args_by_param(site.node, params.get(callee, []))
                    for idx in callee_closed:
                        arg = passed.get(idx)
                        if isinstance(arg, ast.Name) and arg.id in names:
                            pidx = names.index(arg.id)
                            if pidx not in closes[fn.key]:
                                closes[fn.key].add(pidx)
                                changed = True
    return {k: frozenset(v) for k, v in closes.items()}


def _args_by_param(call: ast.Call, param_names: list[str]) -> dict[int, ast.expr]:
    out: dict[int, ast.expr] = {}
    for i, arg in enumerate(call.args):
        out[i] = arg
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in param_names:
            out[param_names.index(kw.arg)] = kw.value
    return out


def _name_used(expr: ast.expr, name: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == name for n in ast.walk(expr)
    )


def _stmt_closes(
    stmt: ast.stmt, name: str, ctx, fn, closes: dict[str, frozenset[int]]
) -> bool:
    """Whether executing ``stmt`` closes (or takes ownership of) ``name``."""
    # ownership transfer: return/yield/raise mentioning the handle
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        if _name_used(stmt.value, name):
            return True
    if isinstance(stmt, ast.Expr) and isinstance(
        stmt.value, (ast.Yield, ast.YieldFrom)
    ):
        if stmt.value.value is not None and _name_used(stmt.value.value, name):
            return True
    # escape: stored into an attribute / subscript / other name
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        value = getattr(stmt, "value", None)
        if value is not None and _name_used(value, name):
            return True
    site_by_node = {site.node: site for site in fn.calls}
    calls = [
        node
        for root in own_region(stmt)
        for node in ast.walk(root)
        if isinstance(node, ast.Call)
    ]
    for node in calls:
        func = node.func
        # direct close: handle.__exit__() / handle.close()
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ctx.config.span_close_attrs
            and isinstance(func.value, ast.Name)
            and func.value.id == name
        ):
            return True
        site = site_by_node.get(node)
        if site is None:
            continue
        for callee in ctx.graph.resolve(fn, site):
            callee_closed = closes.get(callee)
            if not callee_closed:
                continue
            callee_fn = ctx.graph.by_key.get(callee)
            pnames = _param_names(callee_fn) if callee_fn else []
            passed = _args_by_param(node, pnames)
            for idx in callee_closed:
                arg = passed.get(idx)
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
    return False


def run(ctx, only_modules=None) -> list[Finding]:
    findings: list[Finding] = []
    closes = compute_close_summaries(ctx)
    open_attr = ctx.config.span_open_attr
    for fn in ctx.project.functions():
        if only_modules is not None and fn.module.module not in only_modules:
            continue
        has_open = any(
            isinstance(site.node.func, ast.Attribute)
            and site.node.func.attr == open_attr
            for site in fn.calls
        )
        if not has_open:
            continue
        cfg = build_cfg(fn.node)
        for nid, stmt in list(cfg.stmts.items()):
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                continue  # native pairing
            name = _open_target(stmt, open_attr)
            if name is None:
                continue
            blockers = {
                n
                for n, s in cfg.stmts.items()
                if n != nid and _stmt_closes(s, name, ctx, fn, closes)
            }
            starts = set(cfg.succ.get(nid, ())) - {
                cfg.exc_target.get(nid, -1)
            }
            escaped = cfg.paths_avoid(starts, blockers)
            if not escaped:
                continue
            how = []
            if EXIT in escaped:
                how.append("a normal return")
            if EXC_EXIT in escaped:
                how.append("an exception path")
            findings.append(
                Finding(
                    tool="contracts",
                    rule="CTR301",
                    severity="error",
                    message=(
                        f"span handle {name!r} opened in {fn.qname}() can "
                        f"leave the function via {' and '.join(how)} without "
                        "being closed by any caller-visible close; wrap in "
                        "try/finally or hand it to a closing helper"
                    ),
                    path=fn.module.path,
                    line=stmt.lineno,
                    column=stmt.col_offset,
                    context={"module": fn.module.module, "function": fn.qname},
                )
            )
    return findings
