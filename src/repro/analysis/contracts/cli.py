"""The ``repro-contracts`` command line.

    repro-contracts src/repro                      # text, fail on findings
    repro-contracts --format sarif src/repro       # CI artifact
    repro-contracts --baseline contracts_baseline.json src/repro
    repro-contracts --incremental --cache .contracts_cache.json src/repro
    repro-contracts --report results/contracts_report.txt src/repro

Exit status: 0 when no *new* finding (new = not in the baseline, or any
finding when no baseline is given), 1 otherwise, 2 on usage/parse
errors.  Output is deterministic — two runs over the same tree produce
byte-identical text/JSON/SARIF.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.contracts.analyzer import analyze_paths
from repro.analysis.contracts.baseline import (
    load_baseline,
    split_by_baseline,
    stale_entries,
    write_baseline,
)
from repro.analysis.contracts.registry import PASSES, RULES
from repro.analysis.contracts.report import write_report
from repro.analysis.contracts.sarif import findings_to_sarif
from repro.analysis.findings import findings_to_json, render_findings

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-contracts",
        description="whole-program contract analyzer for the repro tree",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="known-findings file; only findings absent from it fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite --baseline with the current findings and exit 0",
    )
    parser.add_argument(
        "--incremental",
        action="store_true",
        help="reuse cached per-module results keyed on content hashes",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        default=".contracts_cache.json",
        help="cache file for --incremental (default: .contracts_cache.json)",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="also write the coverage/finding self-report to FILE",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the pass and rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for info in PASSES:
        lines.append(f"{info.pass_id}: {info.title}")
        for rule in info.rules:
            lines.append(f"  {rule}  {RULES[rule]}")
    return "\n".join(lines)


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    for p in args.paths:
        if not Path(p).exists():
            print(f"repro-contracts: no such path: {p}", file=sys.stderr)
            return 2
    try:
        result = analyze_paths(
            args.paths,
            cache_path=args.cache if args.incremental else None,
        )
    except SyntaxError as exc:
        print(f"repro-contracts: {exc}", file=sys.stderr)
        return 2

    if args.report:
        write_report(result, args.report)

    if args.baseline and args.write_baseline:
        write_baseline(args.baseline, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {args.baseline}",
            file=sys.stderr,
        )
        return 0

    new = result.findings
    known: list = []
    baseline_note = ""
    if args.baseline:
        if not Path(args.baseline).exists():
            print(
                f"repro-contracts: baseline not found: {args.baseline}",
                file=sys.stderr,
            )
            return 2
        entries = load_baseline(args.baseline)
        new, known = split_by_baseline(result.findings, entries)
        stale = stale_entries(result.findings, entries)
        if stale:
            baseline_note = (
                f"{len(stale)} baseline entr"
                f"{'y is' if len(stale) == 1 else 'ies are'} stale (fixed); "
                f"refresh with --write-baseline"
            )

    if args.format == "json":
        print(findings_to_json(new))
    elif args.format == "sarif":
        print(findings_to_sarif(new))
    else:
        if new:
            print(render_findings(new))
        summary = (
            f"repro-contracts: {len(new)} new finding(s)"
            + (f", {len(known)} baselined" if known else "")
            + (f", {result.suppressed} suppressed" if result.suppressed else "")
        )
        print(summary, file=sys.stderr)
        if args.incremental:
            print(
                f"repro-contracts: incremental — "
                f"{len(result.cache_hits)} cached, "
                f"{len(result.cache_misses)} re-analyzed",
                file=sys.stderr,
            )
    if baseline_note:
        print(f"repro-contracts: {baseline_note}", file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
