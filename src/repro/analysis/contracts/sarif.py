"""SARIF 2.1.0 output for the contracts analyzer.

Minimal but valid: one run, a tool driver carrying the rule catalogue,
one result per finding with a physical location.  Emission is fully
deterministic — findings arrive pre-sorted and nothing here reads the
clock — so two runs over the same tree are byte-identical, which CI
relies on for artifact diffing.
"""

from __future__ import annotations

import json

from repro.analysis.contracts.registry import RULES

__all__ = ["findings_to_sarif"]

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def findings_to_sarif(findings) -> str:
    rule_ids = sorted({f.rule for f in findings} | set(RULES))
    rules = [
        {
            "id": rid,
            "shortDescription": {"text": RULES.get(rid, rid)},
        }
        for rid in rule_ids
    ]
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "ruleIndex": rule_ids.index(f.rule),
            "level": _LEVELS.get(f.severity, "error"),
            "message": {"text": f.message},
        }
        if f.path is not None:
            region = {}
            if f.line is not None:
                region["startLine"] = f.line
            if f.column is not None:
                # SARIF columns are 1-based; ast's are 0-based
                region["startColumn"] = f.column + 1
            location = {
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                }
            }
            if region:
                location["physicalLocation"]["region"] = region
            result["locations"] = [location]
        results.append(result)
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-contracts",
                        "informationUri": "docs/correctness_tooling.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)
