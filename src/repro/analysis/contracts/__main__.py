"""``python -m repro.analysis.contracts`` → the contracts CLI."""

from repro.analysis.contracts.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
