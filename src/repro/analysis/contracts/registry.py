"""The pass catalogue and the context handed to every pass.

Each pass is a module exposing ``run(ctx, only_modules=None) ->
list[Finding]``; ``only_modules`` restricts which modules may *carry*
findings (incremental mode re-analyzes dirty modules only), while the
interprocedural structures — call graph, summaries — always span the
whole project, which is what makes an incremental run agree with a full
one by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.contracts import (
    cancellation,
    determinism,
    entrypoints,
    footprints,
    spans,
)
from repro.analysis.contracts.callgraph import CallGraph
from repro.analysis.contracts.config import ContractConfig
from repro.analysis.contracts.model import Project

__all__ = ["PassContext", "PassInfo", "PASSES", "RULES"]


@dataclass
class PassContext:
    project: Project
    graph: CallGraph
    config: ContractConfig


@dataclass(frozen=True)
class PassInfo:
    pass_id: str
    title: str
    rules: tuple[str, ...]
    run: object  # run(ctx, only_modules=None) -> list[Finding]


PASSES: tuple[PassInfo, ...] = (
    PassInfo(
        "determinism",
        "determinism discipline",
        ("CTR101", "CTR102", "CTR103"),
        determinism.run,
    ),
    PassInfo(
        "cancellation",
        "cancellation coverage",
        ("CTR201",),
        cancellation.run,
    ),
    PassInfo(
        "spans",
        "interprocedural span pairing",
        ("CTR301",),
        spans.run,
    ),
    PassInfo(
        "footprints",
        "static footprint audit",
        ("CTR401", "CTR402"),
        footprints.run,
    ),
    PassInfo(
        "entrypoints",
        "entry-point contracts",
        ("CTR501",),
        entrypoints.run,
    ),
)

#: rule id → one-line description (drives --list-rules and SARIF metadata)
RULES: dict[str, str] = {
    "CTR101": "entry-reachable use of module-level RNG state",
    "CTR102": "wall-clock read outside the injectable clock module",
    "CTR103": "RNG object stored in a module global",
    "CTR201": "unbounded loop reachable from solve()/serve() never checkpoints",
    "CTR301": "manually opened span not closed on every CFG path",
    "CTR401": "parallel phase writes a shared array its recorder never declares",
    "CTR402": "recorder declares a write no audited phase performs",
    "CTR501": "public entry reaches kernel code before validate_query()",
}
