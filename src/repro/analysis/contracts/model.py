"""Project loading: modules, functions, and raw call sites.

The analyzer works on a *project* — a set of parsed modules treated as
one program.  Like the lint pass, nothing here imports the library under
analysis; a tree that does not import cleanly must still analyze.

Module paths are repo-relative (``repro/serve/server.py``), anchored at
the last ``repro`` path component, and overridable per file with a
``# contracts: module=...`` pragma — the fixture corpora use that to
masquerade as library modules.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.pragmas import expand_disabled_lines, parse_pragmas

__all__ = ["CallSite", "FunctionInfo", "ModuleInfo", "Project", "load_project"]

PRAGMA_TOOL = "contracts"


@dataclass(frozen=True)
class CallSite:
    """One call expression, attributed to its innermost enclosing function.

    ``kind`` is how the callee is named syntactically:

    * ``"name"`` — ``foo(...)``;
    * ``"self"`` — ``self.foo(...)`` / ``cls.foo(...)``;
    * ``"attr"`` — ``obj.foo(...)`` for any other receiver (``recv``
      holds the receiver's bare name when it is one, letting the call
      graph treat ``spans.run(...)`` as a module-function call);
    * ``"table"`` — ``TABLE[...](...)`` dispatch through a module-level
      dict literal (``table`` holds the dict's name).
    """

    kind: str
    name: str
    node: ast.Call
    table: str | None = None
    recv: str | None = None
    #: ``self.<attr>.foo(...)`` — the receiver's attribute name
    recv_self_attr: str | None = None
    #: ``Foo(...).foo(...)`` / ``make_algorithm(...).solve(...)`` — the
    #: constructor/indirection the receiver came from
    recv_ctor: str | None = None


@dataclass
class FunctionInfo:
    """One function or method (nested functions are separate entries)."""

    module: "ModuleInfo"
    qname: str  # "QueryServer.serve", "distributed_delta_stepping.run_bucket"
    name: str  # bare name
    cls: str | None  # immediately enclosing class, if any
    node: ast.AST
    calls: list[CallSite] = field(default_factory=list)

    @property
    def key(self) -> str:
        """Project-unique id: ``module::qualname``."""
        return f"{self.module.module}::{self.qname}"

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ModuleInfo:
    path: str  # path as given on the command line (stable across runs)
    module: str  # repo-relative module path used for scoping
    source: str
    tree: ast.Module
    sha: str
    functions: list[FunctionInfo] = field(default_factory=list)
    disabled: dict[int, frozenset[str]] = field(default_factory=dict)
    #: module-level ``NAME = {"k": fn, ...}`` dispatch tables
    dispatch_tables: dict[str, list[str]] = field(default_factory=dict)
    #: class name → list of syntactic base-class names
    class_bases: dict[str, list[str]] = field(default_factory=dict)
    #: local name → (source module path, original name) for
    #: ``from repro.x.y import f [as g]`` imports (absolute or relative)
    imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    syntax_error: str | None = None


@dataclass
class Project:
    modules: list[ModuleInfo]

    def by_module(self) -> dict[str, ModuleInfo]:
        return {m.module: m for m in self.modules}

    def functions(self):
        for m in self.modules:
            yield from m.functions

    def find_module(self, suffix: str) -> ModuleInfo | None:
        """The module whose repo-relative path equals or ends with ``suffix``."""
        for m in self.modules:
            if m.module == suffix or m.module.endswith("/" + suffix):
                return m
        return None


def _collect_imports(mod: ModuleInfo) -> None:
    """Record ``from <module> import name [as alias]`` origin modules.

    Dotted module references are rewritten to repo-relative paths
    (``repro.sssp.delta_stepping`` → ``repro/sssp/delta_stepping.py``);
    relative imports resolve against the importing module's path.  Only
    top-of-tree ``repro`` imports are kept — external libraries cannot
    be call-graph targets anyway.
    """
    pkg_parts = mod.module.split("/")[:-1]  # containing package
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        if node.level:
            base = pkg_parts[: len(pkg_parts) - (node.level - 1)]
            if node.level - 1 > len(pkg_parts):
                continue
            parts = base + (node.module.split(".") if node.module else [])
        else:
            if not node.module or not node.module.startswith("repro"):
                continue
            parts = node.module.split(".")
        source = "/".join(parts) + ".py"
        for alias in node.names:
            if alias.name == "*":
                continue
            mod.imports[alias.asname or alias.name] = (source, alias.name)


def _module_path(filename: str, override: str | None) -> str:
    if override:
        return override.strip()
    parts = Path(filename).as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return parts[-1]


class _FunctionCollector(ast.NodeVisitor):
    """Collects functions (with nesting-aware qualnames) and their calls."""

    def __init__(self, mod: ModuleInfo) -> None:
        self.mod = mod
        self._cls_stack: list[str] = []
        self._fn_stack: list[FunctionInfo] = []

    # -- structure ------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = []
        for b in node.bases:
            if isinstance(b, ast.Name):
                bases.append(b.id)
            elif isinstance(b, ast.Attribute):
                bases.append(b.attr)
        self.mod.class_bases[node.name] = bases
        self._cls_stack.append(node.name)
        self.generic_visit(node)
        self._cls_stack.pop()

    def _visit_function(self, node) -> None:
        prefix = ""
        if self._fn_stack:
            prefix = self._fn_stack[-1].qname + "."
        elif self._cls_stack:
            prefix = ".".join(self._cls_stack) + "."
        info = FunctionInfo(
            module=self.mod,
            qname=prefix + node.name,
            name=node.name,
            cls=self._cls_stack[-1] if self._cls_stack and not self._fn_stack else None,
            node=node,
        )
        self.mod.functions.append(info)
        self._fn_stack.append(info)
        for stmt in node.body:
            self.visit(stmt)
        self._fn_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self._fn_stack:
            site = _classify_call(node)
            if site is not None:
                self._fn_stack[-1].calls.append(site)
        self.generic_visit(node)

    # -- module-level dispatch tables -----------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._fn_stack and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and isinstance(node.value, ast.Dict):
                names = [
                    v.id for v in node.value.values if isinstance(v, ast.Name)
                ]
                if names:
                    self.mod.dispatch_tables[target.id] = names
        self.generic_visit(node)


def _classify_call(node: ast.Call) -> CallSite | None:
    func = node.func
    if isinstance(func, ast.Name):
        return CallSite("name", func.id, node)
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name) and base.id in ("self", "cls"):
            return CallSite("self", func.attr, node)
        recv = recv_self_attr = recv_ctor = None
        if isinstance(base, ast.Name):
            recv = base.id
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id in ("self", "cls")
        ):
            recv_self_attr = base.attr
        elif isinstance(base, ast.Call):
            if isinstance(base.func, ast.Name):
                recv_ctor = base.func.id
            elif isinstance(base.func, ast.Attribute):
                recv_ctor = base.func.attr
        return CallSite(
            "attr",
            func.attr,
            node,
            recv=recv,
            recv_self_attr=recv_self_attr,
            recv_ctor=recv_ctor,
        )
    if isinstance(func, ast.Subscript) and isinstance(func.value, ast.Name):
        return CallSite("table", "", node, table=func.value.id)
    return None


def load_source(
    source: str, filename: str, *, module: str | None = None
) -> ModuleInfo:
    """Parse one source string into a :class:`ModuleInfo`."""
    raw_disabled, override = parse_pragmas(source, PRAGMA_TOOL)
    mod_path = _module_path(filename, module or override)
    sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return ModuleInfo(
            path=filename,
            module=mod_path,
            source=source,
            tree=ast.Module(body=[], type_ignores=[]),
            sha=sha,
            syntax_error=f"{exc.msg} (line {exc.lineno})",
        )
    mod = ModuleInfo(
        path=filename,
        module=mod_path,
        source=source,
        tree=tree,
        sha=sha,
        disabled=expand_disabled_lines(tree, raw_disabled),
    )
    _collect_imports(mod)
    _FunctionCollector(mod).visit(tree)
    return mod


def load_project(paths) -> Project:
    """Load files and directories (recursively) into one project.

    Paths are kept as given — relative invocations produce relative,
    machine-independent finding paths, which is what makes two runs of
    the analyzer byte-identical.
    """
    modules: list[ModuleInfo] = []
    for raw in paths:
        p = Path(raw)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            modules.append(
                load_source(f.read_text(encoding="utf-8"), f.as_posix())
            )
    modules.sort(key=lambda m: m.module)
    return Project(modules=modules)
