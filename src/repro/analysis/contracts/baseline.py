"""Finding baselines: ratchet semantics for CI.

A baseline file records the findings a tree is *known* to carry — each
as a location-free fingerprint ``(rule, module, function, message)`` so
unrelated edits moving a line do not churn it.  CI fails on any finding
not in the baseline ("no new debt") while the listed ones age out as
they are fixed; ``--write-baseline`` regenerates the file, and an entry
that no longer matches anything is reported by ``stale_entries`` so the
file cannot quietly accumulate fiction.  The shipped baseline
(``contracts_baseline.json``) is empty: the tree holds its contracts.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = [
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "split_by_baseline",
    "stale_entries",
]


def fingerprint(f: Finding) -> tuple[str, str, str, str]:
    return (
        f.rule,
        str(f.context.get("module", f.path or "")),
        str(f.context.get("function", "")),
        f.message,
    )


def load_baseline(path: str | Path) -> list[tuple[str, str, str, str]]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    out = []
    for entry in data.get("findings", []):
        out.append(
            (
                entry["rule"],
                entry.get("module", ""),
                entry.get("function", ""),
                entry["message"],
            )
        )
    return out


def write_baseline(path: str | Path, findings) -> None:
    entries = sorted(
        {fingerprint(f) for f in findings}
    )
    payload = {
        "tool": "repro-contracts",
        "findings": [
            {
                "rule": rule,
                "module": module,
                "function": function,
                "message": message,
            }
            for rule, module, function, message in entries
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def split_by_baseline(findings, baseline):
    """``(new, known)`` — findings absent from / present in the baseline."""
    known_set = set(baseline)
    new: list[Finding] = []
    known: list[Finding] = []
    for f in findings:
        (known if fingerprint(f) in known_set else new).append(f)
    return new, known


def stale_entries(findings, baseline):
    """Baseline entries matching no current finding (fixed debt)."""
    present = {fingerprint(f) for f in findings}
    return [e for e in baseline if e not in present]
