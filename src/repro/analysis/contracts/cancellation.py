"""Pass 2 — cancellation coverage (CTR201).

``solve(deadline=...)`` and ``serve()`` promise bounded response time;
the mechanism is cooperative: long-running loops call
:func:`repro.cancel.checkpoint`, which raises once the deadline passes.
The promise silently breaks when someone adds a hot loop three calls
below ``solve`` and forgets the checkpoint — nothing fails, the server
just stops honouring deadlines on that path.

This pass walks every function reachable from a cancellation root and
inspects each loop in its body.  A loop is *unbounded work* when its
body (or a ``for``'s iterator expression) contains another loop, calls a
function that transitively loops, or spins on a constant-true ``while``.
Such a loop must be *covered*: its body checkpoints directly, or calls
something whose call tree reaches a checkpoint.  Bounded housekeeping
loops (unpacking a tuple of arrays, a fixed-arity dispatch) are left
alone — flagging those would train people to sprinkle pragmas.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding

__all__ = ["run", "cancellation_reachable"]


def cancellation_reachable(ctx) -> set[str]:
    """Function keys reachable from the configured cancellation roots."""
    roots = {
        fn.key
        for fn in ctx.project.functions()
        if fn.name in ctx.config.cancellation_roots
    }
    seen = set(roots)
    stack = list(roots)
    while stack:
        k = stack.pop()
        for c in ctx.graph.edges.get(k, ()):
            if c not in seen:
                seen.add(c)
                stack.append(c)
    return seen


def _walk_region(nodes, *, skip_defs: bool = True):
    stack = list(nodes)
    while stack:
        node = stack.pop()
        if skip_defs and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _const_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _loop_region(loop: ast.stmt):
    region = list(loop.body) + list(getattr(loop, "orelse", []))
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        region.append(loop.iter)
    return region


def run(ctx, only_modules=None) -> list[Finding]:
    findings: list[Finding] = []
    covered_keys = cancellation_reachable(ctx)
    for fn in ctx.project.functions():
        if fn.key not in covered_keys:
            continue
        if only_modules is not None and fn.module.module not in only_modules:
            continue
        # call sites by AST node identity, for per-loop attribution
        site_by_node = {site.node: site for site in fn.calls}
        for node in _walk_region(fn.node.body):
            if not isinstance(node, (ast.For, ast.While, ast.AsyncFor)):
                continue
            region = _loop_region(node)
            unbounded = isinstance(node, ast.While) and _const_true(node.test)
            checkpointed = False
            for sub in _walk_region(region):
                if isinstance(sub, (ast.For, ast.While, ast.AsyncFor)):
                    unbounded = True
                if not isinstance(sub, ast.Call):
                    continue
                site = site_by_node.get(sub)
                if site is None:
                    continue
                if site.name in ctx.config.checkpoint_names:
                    checkpointed = True
                    continue
                for callee in ctx.graph.resolve(fn, site):
                    if ctx.graph.does_loop_work.get(callee, False):
                        unbounded = True
                    if ctx.graph.reaches_checkpoint.get(callee, False):
                        checkpointed = True
            if unbounded and not checkpointed:
                findings.append(
                    Finding(
                        tool="contracts",
                        rule="CTR201",
                        severity="error",
                        message=(
                            f"unbounded loop in {fn.qname}() is reachable "
                            "from a deadline-carrying entry but neither it "
                            "nor its callees reach checkpoint(); the "
                            "deadline cannot fire on this path"
                        ),
                        path=fn.module.path,
                        line=node.lineno,
                        column=node.col_offset,
                        context={
                            "module": fn.module.module,
                            "function": fn.qname,
                        },
                    )
                )
    return findings
