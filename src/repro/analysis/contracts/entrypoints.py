"""Pass 5 — entry-point contracts (CTR501).

Every public door into the system — ``solve()``, ``serve()``, the CLI
``main``s — must reach :func:`repro.serve.query.validate_query` before
any KSP kernel code runs.  The kernels index raw arrays with the query's
vertices; validation is the only thing standing between a malformed
request and an out-of-bounds read three frames deep.

The check is a forward *must* dataflow over each entry's CFG: a
``validated`` bit starts ``False``, is set by a statement that calls a
validator (or a callee whose summary says it validates on every normal
return), and is met with AND at joins — a query validated on only one
branch is not validated.  Kernel touches are calls into a
``kernel_prefixes`` module or into a callee summarised as touching the
kernel while unvalidated; summaries are computed over the call graph to
a fixpoint, so ``main → run_experiment → time_run → make_algorithm``
is traced through three hops and reported at the entry's offending
call site.
"""

from __future__ import annotations

import ast

from repro.analysis.contracts.cfg import ENTRY, EXIT, build_cfg, own_region
from repro.analysis.findings import Finding

__all__ = ["run", "compute_validation_summaries", "NONE", "VALIDATES", "TOUCHES"]

NONE = "none"
VALIDATES = "validates"
TOUCHES = "touches"

_MAX_ROUNDS = 25


def _is_kernel(module: str, config) -> bool:
    return module.startswith(tuple(config.kernel_prefixes))


def _stmt_sites(stmt: ast.stmt, fn):
    site_by_node = {site.node: site for site in fn.calls}
    for root in own_region(stmt):
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                site = site_by_node.get(node)
                if site is not None:
                    yield site


def _classify_nodes(cfg, fn, ctx, summaries):
    """Per CFG node: (validating, touching, touch_label)."""
    info: dict[int, tuple[bool, bool, str | None]] = {}
    for nid, stmt in cfg.stmts.items():
        validating = False
        touching = False
        label: str | None = None
        for site in _stmt_sites(stmt, fn):
            if site.name in ctx.config.validator_names:
                validating = True
                continue
            callees = ctx.graph.resolve(fn, site)
            for callee in callees:
                callee_fn = ctx.graph.by_key.get(callee)
                if callee_fn is not None and _is_kernel(
                    callee_fn.module.module, ctx.config
                ):
                    touching = True
                    label = label or site.name or callee_fn.name
                elif summaries.get(callee) == TOUCHES:
                    touching = True
                    label = label or site.name or (
                        callee_fn.name if callee_fn else callee
                    )
            if callees and all(
                summaries.get(c) == VALIDATES for c in callees
            ):
                validating = True
        info[nid] = (validating, touching, label)
    return info


def _dataflow(cfg, node_info):
    """Must-validated bit per node entry; returns ``in`` map."""
    preds: dict[int, set[int]] = {}
    for a, succs in cfg.succ.items():
        for b in succs:
            preds.setdefault(b, set()).add(a)
    nodes = set(cfg.stmts) | {ENTRY, EXIT}
    in_map = {n: True for n in nodes}
    in_map[ENTRY] = False
    out_map: dict[int, bool] = {}

    def out_of(n: int) -> bool:
        if n == ENTRY:
            return False
        validating = node_info.get(n, (False, False, None))[0]
        return in_map[n] or validating

    changed = True
    while changed:
        changed = False
        for n in nodes:
            if n == ENTRY:
                continue
            ps = preds.get(n, set())
            new_in = all(out_of(p) for p in ps) if ps else False
            if new_in != in_map[n]:
                in_map[n] = new_in
                changed = True
    for n in nodes:
        out_map[n] = out_of(n)
    return in_map, out_map


def _analyze_function(fn, ctx, summaries):
    """(summary, violations) for one non-kernel function.

    Violations are ``(stmt, label)`` pairs: kernel touches executed while
    the validated bit may still be False — i.e. when the function itself
    is entered unvalidated, which is exactly an entry's situation.
    """
    cfg = build_cfg(fn.node)
    node_info = _classify_nodes(cfg, fn, ctx, summaries)
    in_map, _ = _dataflow(cfg, node_info)
    violations = []
    for nid, (validating, touching, label) in node_info.items():
        if touching and not validating and not in_map.get(nid, False):
            violations.append((cfg.stmts[nid], label))
    if violations:
        return TOUCHES, violations
    validating_nodes = {
        n for n, (v, _, _) in node_info.items() if v
    }
    starts = set(cfg.succ.get(ENTRY, ()))
    escaped = cfg.paths_avoid(starts, validating_nodes)
    if validating_nodes and EXIT not in escaped:
        return VALIDATES, []
    return NONE, []


def compute_validation_summaries(ctx) -> dict[str, str]:
    """Fixpoint NONE/VALIDATES/TOUCHES summary per function key."""
    summaries: dict[str, str] = {}
    analyzed: list = []
    for fn in ctx.project.functions():
        if _is_kernel(fn.module.module, ctx.config):
            summaries[fn.key] = TOUCHES
        elif fn.name in ctx.config.validator_names:
            summaries[fn.key] = VALIDATES
        else:
            summaries[fn.key] = NONE
            analyzed.append(fn)
    for _ in range(_MAX_ROUNDS):
        changed = False
        for fn in analyzed:
            new, _ = _analyze_function(fn, ctx, summaries)
            if summaries[fn.key] != new:
                summaries[fn.key] = new
                changed = True
        if not changed:
            break
    return summaries


def run(ctx, only_modules=None) -> list[Finding]:
    findings: list[Finding] = []
    summaries = compute_validation_summaries(ctx)
    for fn in ctx.project.functions():
        if fn.name not in ctx.config.entry_names:
            continue
        if _is_kernel(fn.module.module, ctx.config):
            continue
        if only_modules is not None and fn.module.module not in only_modules:
            continue
        _, violations = _analyze_function(fn, ctx, summaries)
        for stmt, label in violations:
            via = f" via {label}()" if label else ""
            findings.append(
                Finding(
                    tool="contracts",
                    rule="CTR501",
                    severity="error",
                    message=(
                        f"entry {fn.qname}() reaches kernel code{via} on a "
                        "path where validate_query() has not run; a "
                        "malformed query goes straight to array indexing"
                    ),
                    path=fn.module.path,
                    line=stmt.lineno,
                    column=stmt.col_offset,
                    context={"module": fn.module.module, "function": fn.qname},
                )
            )
    return findings
