"""Per-function control-flow graphs with exception edges.

One node per simple statement; compound statements contribute structure
(branch/loop/handler edges) rather than nodes of their own.  Three
virtual nodes bracket the function: ``ENTRY``, ``EXIT`` (normal return,
including falling off the end) and ``EXC_EXIT`` (an exception escaping
the function).  Any statement that *may raise* — conservatively, one
containing a call, a ``raise``, or a subscript — gets an edge to the
innermost enclosing handler/finally, or to ``EXC_EXIT`` when there is
none; a ``return`` inside ``try/finally`` routes through every
enclosing finally body before reaching ``EXIT``.  That is exactly the structure the span-pairing pass needs to ask
"is this span closed on every path, including the unhappy ones?", and
the entry-contract pass needs for its must-validate dataflow.

``with`` statements are kept opaque on purpose: a ``with`` pairs enter
and exit natively on every path, so its context expressions are exempt
from manual-pairing analysis (mirroring lint rule RPR002).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CFG", "build_cfg", "own_region"]

ENTRY = 0
EXIT = 1
EXC_EXIT = 2


@dataclass
class CFG:
    """Statement-level flow graph for one function body."""

    stmts: dict[int, ast.stmt] = field(default_factory=dict)
    succ: dict[int, set[int]] = field(
        default_factory=lambda: {ENTRY: set(), EXIT: set(), EXC_EXIT: set()}
    )
    #: node → where *its own* raise lands (absent when it cannot raise)
    exc_target: dict[int, int] = field(default_factory=dict)

    def add_node(self, stmt: ast.stmt) -> int:
        nid = 3 + len(self.stmts)
        self.stmts[nid] = stmt
        self.succ[nid] = set()
        return nid

    def add_edge(self, a: int, b: int) -> None:
        if a not in (EXIT, EXC_EXIT):
            self.succ[a].add(b)

    def nodes_for(self, pred) -> set[int]:
        """Nodes whose statement satisfies ``pred``."""
        return {n for n, s in self.stmts.items() if pred(s)}

    def paths_avoid(self, starts: set[int], blockers: set[int]) -> set[int]:
        """Exits reachable from ``starts`` without passing a blocker node.

        Returns the subset of ``{EXIT, EXC_EXIT}`` reachable; empty means
        every path hits a blocker first.  ``starts`` themselves are not
        treated as blockers.
        """
        seen: set[int] = set()
        stack = [n for n in starts]
        reached: set[int] = set()
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if n in (EXIT, EXC_EXIT):
                reached.add(n)
                continue
            if n in blockers:
                continue
            stack.extend(self.succ.get(n, ()))
        return reached


def own_region(stmt: ast.stmt) -> list[ast.AST]:
    """The AST a CFG node *itself* represents.

    Compound statements own only their header expressions — their body
    statements have nodes of their own, and walking the whole subtree
    would attribute a nested call to every enclosing header.  ``Try``
    headers (and the virtual handler-entry nodes sharing their stmt)
    own nothing.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return list(stmt.decorator_list)
    return [stmt]


def _may_raise(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for node in ast.walk(stmt):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, (ast.Call, ast.Subscript, ast.Attribute)):
            return True
    return False


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        # stack of (break_sinks, continue_target) for enclosing loops
        self._loops: list[tuple[set[int], int | None, list[int]]] = []
        # per enclosing try-with-finally: return nodes deferred into it —
        # a ``return`` runs every enclosing finally before leaving
        self._fin_stack: list[set[int]] = []

    # ------------------------------------------------------------------
    def build(self, body: list[ast.stmt]) -> CFG:
        frontier = self._seq(body, {ENTRY}, EXC_EXIT)
        for n in frontier:
            self.cfg.add_edge(n, EXIT)
        return self.cfg

    # ------------------------------------------------------------------
    def _seq(
        self, body: list[ast.stmt], frontier: set[int], exc: int
    ) -> set[int]:
        """Wire ``body`` after ``frontier``; returns the new frontier.

        ``exc`` is where an exception raised in this region lands.
        """
        for stmt in body:
            frontier = self._stmt(stmt, frontier, exc)
            if not frontier:
                break  # unreachable tail (after return/raise/…)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: set[int], exc: int) -> set[int]:
        cfg = self.cfg
        if isinstance(stmt, (ast.If,)):
            nid = cfg.add_node(stmt)  # the test
            self._link(frontier, nid, exc, test_only=True)
            then = self._seq(stmt.body, {nid}, exc)
            other = self._seq(stmt.orelse, {nid}, exc) if stmt.orelse else {nid}
            return then | other
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = cfg.add_node(stmt)  # test / iterator advance
            self._link(frontier, head, exc)
            breaks: set[int] = set()
            self._loops.append((breaks, head, []))
            body_out = self._seq(stmt.body, {head}, exc)
            self._loops.pop()
            for n in body_out:
                cfg.add_edge(n, head)  # back edge
            out = {head} | breaks  # condition-false / iterator-exhausted
            if stmt.orelse:
                out = self._seq(stmt.orelse, {head}, exc) | breaks
            return out
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier, exc)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            nid = cfg.add_node(stmt)  # the with header (context managers)
            self._link(frontier, nid, exc)
            return self._seq(stmt.body, {nid}, exc)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            nid = cfg.add_node(stmt)
            self._link(frontier, nid, exc, test_only=True)
            return {nid}  # nested bodies are separate CFGs
        # simple statements
        nid = cfg.add_node(stmt)
        self._link(frontier, nid, exc)
        if isinstance(stmt, ast.Return):
            if self._fin_stack:
                self._fin_stack[-1].add(nid)
            else:
                cfg.add_edge(nid, EXIT)
            return set()
        if isinstance(stmt, ast.Raise):
            cfg.add_edge(nid, exc)
            return set()
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][0].add(nid)
            return set()
        if isinstance(stmt, ast.Continue):
            if self._loops and self._loops[-1][1] is not None:
                cfg.add_edge(nid, self._loops[-1][1])
            return set()
        return {nid}

    def _link(
        self, frontier: set[int], nid: int, exc: int, *, test_only: bool = False
    ) -> None:
        for n in frontier:
            self.cfg.add_edge(n, nid)
        stmt = self.cfg.stmts[nid]
        header = stmt
        if not test_only and _may_raise_header(header):
            self.cfg.add_edge(nid, exc)
            self.cfg.exc_target[nid] = exc

    # ------------------------------------------------------------------
    def _try(self, stmt: ast.Try, frontier: set[int], exc: int) -> set[int]:
        cfg = self.cfg
        # A virtual node for the try header keeps the frontier in one place.
        head = cfg.add_node(stmt)
        self._link(frontier, head, exc, test_only=True)

        if stmt.finalbody:
            self._fin_stack.append(set())
        handler_target_nodes: list[int] = []
        handler_entry = cfg.add_node(stmt)  # virtual: "an exception arrived"
        cfg.succ[handler_entry] = set()

        body_out = self._seq(stmt.body, {head}, handler_entry)
        if stmt.orelse:
            body_out = self._seq(stmt.orelse, body_out, handler_entry)

        handler_outs: set[int] = set()
        if stmt.handlers:
            for handler in stmt.handlers:
                h_out = self._seq(
                    handler.body,
                    {handler_entry},
                    exc if not stmt.finalbody else handler_entry,
                )
                handler_outs |= h_out
            handler_target_nodes.append(handler_entry)
        if stmt.finalbody:
            # normal completion, deferred returns, and exceptions (from
            # body or handlers) all run the finally; model it once,
            # entered from every region, exiting every way
            pending_returns = self._fin_stack.pop()
            fin_in = body_out | handler_outs | pending_returns
            if not stmt.handlers:
                fin_in = fin_in | {handler_entry}
            fin_out = self._seq(stmt.finalbody, fin_in, exc)
            # the exceptional pass through finally re-raises afterwards
            for n in fin_out:
                cfg.add_edge(n, exc)
            if pending_returns:
                # the deferred returns resume leaving after the finally,
                # via the next enclosing finally when there is one
                if self._fin_stack:
                    self._fin_stack[-1] |= fin_out
                else:
                    for n in fin_out:
                        cfg.add_edge(n, EXIT)
            return fin_out
        if not stmt.handlers:
            # try/else with no except and no finally (rare): propagate
            cfg.add_edge(handler_entry, exc)
        else:
            # an exception no handler matches propagates
            cfg.add_edge(handler_entry, exc)
        return body_out | handler_outs


def _may_raise_header(stmt: ast.stmt) -> bool:
    """Whether the *header* of ``stmt`` (not nested blocks) may raise."""
    if isinstance(stmt, (ast.If, ast.While, ast.Try)):
        return False  # tests handled conservatively by body statements
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return any(
            isinstance(n, (ast.Call, ast.Subscript, ast.Attribute))
            for n in ast.walk(stmt.iter)
        )
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return True
    return _may_raise(stmt)


def build_cfg(fn_node) -> CFG:
    """The CFG of one function's body (nested defs are opaque nodes)."""
    return _Builder().build(fn_node.body)
