"""repro-contracts: the whole-program contract analyzer.

Where :mod:`repro.analysis.lint` pattern-matches single functions, this
package builds a *project-wide* view — every module's AST, a per-function
control-flow graph with exception edges, and an interprocedural call
graph that resolves through the ``AlgorithmSpec`` registry indirection —
and checks the contracts that make the repo's reproducibility claims
*provable* rather than merely tested:

* **determinism discipline** (``CTR101``–``CTR103``) — no reachable use
  of unseeded module-level RNG state, no wall-clock reads outside the
  injectable clock of :mod:`repro.cancel`, no RNG objects smuggled
  across subsystem boundaries through module globals;
* **cancellation coverage** (``CTR201``) — every unbounded-work loop
  reachable from ``serve()`` / ``solve()`` checkpoints, directly or via
  its callees;
* **interprocedural span pairing** (``CTR301``) — a tracer span opened
  in one function and closed in another is closed on *all* CFG paths,
  including exception edges;
* **static footprint audit** (``CTR401``/``CTR402``) — the arrays each
  parallel phase actually writes match the :class:`Footprint`
  declarations the dynamic race detector trusts;
* **entry-point contracts** (``CTR501``) — every public entry validates
  the request before touching kernel code.

Run as ``python -m repro.analysis.contracts`` or via the installed
``repro-contracts`` script; see ``docs/correctness_tooling.md``.
"""

from repro.analysis.contracts.analyzer import AnalysisResult, analyze_paths
from repro.analysis.contracts.config import ContractConfig, default_config
from repro.analysis.contracts.registry import PASSES, PassInfo

__all__ = [
    "AnalysisResult",
    "analyze_paths",
    "ContractConfig",
    "default_config",
    "PASSES",
    "PassInfo",
]
