"""Orchestration: load → call graph → passes, with incremental caching.

Full mode parses every module, builds the call graph, and runs the five
passes over everything.  Incremental mode (``--incremental``) keeps a
small JSON cache mapping each module to a *validity key* and its last
findings; a module whose key still matches is skipped by the passes and
its cached findings replayed.

The key is what makes "incremental agrees with full" a theorem rather
than a hope.  It digests

* the module's own content hash,
* an *interface* digest: for each of its functions, the reachability
  bits (from public entries; from cancellation roots) and, per direct
  callee, the callee's module hash and every interprocedural summary a
  pass consumes (loop-work, reaches-checkpoint, validation summary,
  close-parameter set).  Summaries are transitive fixpoints, so a
  change three hops down flips a direct callee's summary and dirties
  this module;
* the analyzer config and, for modules involved in a footprint audit,
  the content hashes of the declarations module and every audited
  module (an audit finding diffs two modules; either side changing must
  re-run it).

Interprocedural structures are *always* rebuilt from the full tree —
they are cheap; only per-module CFG/dataflow work and finding emission
are skipped — so cached and fresh findings are drawn from identical
global state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.contracts import entrypoints, spans
from repro.analysis.contracts.callgraph import build_callgraph
from repro.analysis.contracts.cancellation import cancellation_reachable
from repro.analysis.contracts.config import ContractConfig, default_config
from repro.analysis.contracts.model import Project, load_project
from repro.analysis.contracts.registry import PASSES, PassContext
from repro.analysis.findings import Finding

__all__ = ["AnalysisResult", "analyze_paths", "CACHE_VERSION"]

CACHE_VERSION = 1


@dataclass
class AnalysisResult:
    findings: list[Finding]
    suppressed: int
    stats: dict
    project: Project
    #: modules replayed from cache / re-analyzed (incremental mode)
    cache_hits: list[str] = field(default_factory=list)
    cache_misses: list[str] = field(default_factory=list)


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _module_keys(project, graph, config, ctx) -> dict[str, str]:
    config_digest = _sha(json.dumps(config.digest_fields(), sort_keys=True))
    close_summaries = spans.compute_close_summaries(ctx)
    val_summaries = entrypoints.compute_validation_summaries(ctx)
    cancel_keys = cancellation_reachable(ctx)
    shas = {m.module: m.sha for m in project.modules}

    audit_modules: set[str] = set()
    decl = project.find_module(config.declarations_module)
    if decl is not None:
        audit_modules.add(decl.module)
    for group in config.audits:
        for suffix, _ in group.functions:
            mod = project.find_module(suffix)
            if mod is not None:
                audit_modules.add(mod.module)
    audit_digest = _sha(
        json.dumps(sorted((m, shas[m]) for m in audit_modules))
    )

    keys: dict[str, str] = {}
    for mod in project.modules:
        interface = []
        for fn in sorted(mod.functions, key=lambda f: f.key):
            callees = []
            for c in sorted(graph.edges.get(fn.key, ())):
                callee_fn = graph.by_key.get(c)
                callees.append(
                    [
                        c,
                        callee_fn.module.sha if callee_fn else "",
                        graph.does_loop_work.get(c, False),
                        graph.reaches_checkpoint.get(c, False),
                        val_summaries.get(c, ""),
                        sorted(close_summaries.get(c, ())),
                    ]
                )
            interface.append(
                [
                    fn.key,
                    fn.key in graph.reachable_from_entries,
                    fn.key in cancel_keys,
                    callees,
                ]
            )
        parts = [
            CACHE_VERSION,
            mod.sha,
            config_digest,
            sorted(graph.registry_factories),
            interface,
        ]
        if mod.module in audit_modules:
            parts.append(audit_digest)
        keys[mod.module] = _sha(json.dumps(parts, sort_keys=True))
    return keys


def _suppress(findings, project) -> tuple[list[Finding], dict[str, int]]:
    """Apply ``# contracts: disable=`` pragmas; returns kept + per-module count."""
    by_module = project.by_module()
    kept: list[Finding] = []
    suppressed: dict[str, int] = {}
    for f in findings:
        module = str(f.context.get("module", ""))
        mod = by_module.get(module)
        rules = (
            mod.disabled.get(f.line, frozenset())
            if mod is not None and f.line is not None
            else frozenset()
        )
        if f.rule in rules or "ALL" in rules:
            suppressed[module] = suppressed.get(module, 0) + 1
        else:
            kept.append(f)
    return kept, suppressed


def _count_loops(project) -> int:
    import ast

    n = 0
    for fn in project.functions():
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.For, ast.While, ast.AsyncFor)):
                n += 1
    return n


def _sort_key(f: Finding):
    return (f.path or "", f.line or 0, f.column or 0, f.rule, f.message)


def analyze_paths(
    paths,
    *,
    config: ContractConfig | None = None,
    cache_path: str | Path | None = None,
) -> AnalysisResult:
    """Run every pass over ``paths``; incremental iff ``cache_path`` given."""
    config = config or default_config()
    project = load_project(paths)
    graph = build_callgraph(project, config)
    ctx = PassContext(project=project, graph=graph, config=config)

    for mod in project.modules:
        if mod.syntax_error:
            raise SyntaxError(f"{mod.path}: {mod.syntax_error}")

    cache: dict = {}
    if cache_path is not None and Path(cache_path).exists():
        try:
            raw = json.loads(Path(cache_path).read_text(encoding="utf-8"))
            if raw.get("version") == CACHE_VERSION:
                cache = raw.get("modules", {})
        except (json.JSONDecodeError, OSError):
            cache = {}

    keys = _module_keys(project, graph, config, ctx)
    all_modules = {m.module for m in project.modules}
    if cache_path is not None:
        clean = {
            m
            for m in all_modules
            if m in cache and cache[m].get("key") == keys[m]
        }
    else:
        clean = set()
    dirty = all_modules - clean

    fresh: list[Finding] = []
    for info in PASSES:
        run_pass = info.run
        fresh.extend(run_pass(ctx, only_modules=None if not clean else dirty))
    fresh, suppressed_by_mod = _suppress(fresh, project)

    findings: list[Finding] = []
    suppressed_total = 0
    new_cache: dict = {}
    fresh_by_mod: dict[str, list[Finding]] = {}
    for f in fresh:
        fresh_by_mod.setdefault(str(f.context.get("module", "")), []).append(f)
    for module in sorted(all_modules):
        if module in clean:
            entry = cache[module]
            mod_findings = [Finding(**d) for d in entry.get("findings", [])]
            n_suppressed = int(entry.get("suppressed", 0))
        else:
            mod_findings = fresh_by_mod.get(module, [])
            n_suppressed = suppressed_by_mod.get(module, 0)
        findings.extend(mod_findings)
        suppressed_total += n_suppressed
        new_cache[module] = {
            "key": keys[module],
            "findings": [f.to_dict() for f in sorted(mod_findings, key=_sort_key)],
            "suppressed": n_suppressed,
        }

    if cache_path is not None:
        Path(cache_path).write_text(
            json.dumps({"version": CACHE_VERSION, "modules": new_cache}, indent=2)
            + "\n",
            encoding="utf-8",
        )

    findings.sort(key=_sort_key)
    rule_counts: dict[str, int] = {}
    for f in findings:
        rule_counts[f.rule] = rule_counts.get(f.rule, 0) + 1
    pass_of_rule = {r: info.pass_id for info in PASSES for r in info.rules}
    pass_counts = {info.pass_id: 0 for info in PASSES}
    for f in findings:
        pass_counts[pass_of_rule.get(f.rule, "other")] = (
            pass_counts.get(pass_of_rule.get(f.rule, "other"), 0) + 1
        )
    stats = {
        "modules": len(project.modules),
        "functions": sum(1 for _ in project.functions()),
        "loops": _count_loops(project),
        "call_edges": sum(len(v) for v in graph.edges.values()),
        "registry_factories": len(graph.registry_factories),
        "entry_points": len(graph.entry_keys),
        "findings": len(findings),
        "suppressed": suppressed_total,
        "by_rule": {k: rule_counts[k] for k in sorted(rule_counts)},
        "by_pass": pass_counts,
    }
    return AnalysisResult(
        findings=findings,
        suppressed=suppressed_total,
        stats=stats,
        project=project,
        cache_hits=sorted(clean),
        cache_misses=sorted(dirty),
    )
