"""repro-lint: the repo-specific AST lint pass.

Ruff guards generic Python hygiene; this pass guards the invariants that
are *specific to this codebase* and that no general-purpose linter can
know about — the immutability contract of :class:`~repro.graph.csr.CSRGraph`,
the pairing discipline of tracer spans, the SSSP-workspace allocation
budget of the KSP hot path, float-cost comparison hygiene, and the
thin-alias contract of the registry free functions.

Rules (catalogue with examples in ``docs/correctness_tooling.md``):

* **RPR001** — no mutation of CSRGraph backing arrays (``indptr`` /
  ``indices`` / ``weights``) outside ``repro/graph/`` and
  ``repro/core/compaction.py``.  Every kernel relies on graphs being
  frozen after construction; deletion goes through the compaction views.
* **RPR002** — ``Tracer.span`` only as a ``with`` context (or via the
  ``traced`` decorator); a span entered manually and lost on an exception
  corrupts the whole stage tree.  ``repro/obs/`` itself is exempt.
* **RPR003** — no O(n) ``np.full`` / ``np.zeros`` / ``np.ones`` /
  ``np.empty`` allocations lexically inside loops in ``repro/ksp/``,
  ``repro/sssp/``, ``repro/parallel/mp_backend.py``, ``repro/load/``,
  ``repro/serve/`` and ``repro/dyn/`` (the serving/load event loops run
  one iteration per request and the Terrace update loops one rebuild per
  touched vertex, so a per-iteration O(n) alloc is a per-query tax
  exactly like a per-spur one); per-spur state must route through
  :class:`~repro.sssp.workspace.SSSPWorkspace`.  Small constant-size
  allocations (≤ 64 elements) are allowed.
* **RPR004** — no ``==`` / ``!=`` on float cost expressions; the
  identifier vocabulary covers path costs (dist/distance/cost/bound/
  total) and, since the load/serve layers landed, accumulated float
  times (latency/wait/elapsed/``*_time``).  Use
  :func:`repro.paths.costs_close`.
* **RPR005** — the registry free functions (``yen_ksp`` ... ``peek_ksp``)
  must stay thin aliases of :func:`repro.solve` — a docstring, the solve
  import, at most simple name bindings, and one ``return solve(...)``.

Suppression: append ``# repro-lint: disable=RPR003`` (comma-separated ids,
or ``all``) to the offending statement — the pragma covers every line of
the statement carrying it, so it works on wrapped calls and on decorated
functions (see :mod:`repro.analysis.pragmas`).  A file-level
``# repro-lint: module=repro/ksp/foo.py`` comment overrides the inferred
module path — the regression fixtures under ``tests/analysis/fixtures/``
use it to exercise path-scoped rules from outside the source tree.

Run as ``python -m repro.analysis.lint src/`` or via the installed
``repro-lint`` entry point; exits non-zero on any finding.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import (
    Finding,
    exit_code,
    findings_to_json,
    render_findings,
)
from repro.analysis.pragmas import expand_disabled_lines, parse_pragmas

__all__ = ["RULES", "LintRule", "lint_source", "lint_file", "lint_paths", "main"]


@dataclass(frozen=True)
class LintRule:
    """Catalogue entry for one rule (id, one-liner, where it applies)."""

    id: str
    summary: str
    scope: str  # human description of the path scope


RULES: dict[str, LintRule] = {
    r.id: r
    for r in (
        LintRule(
            "RPR001",
            "CSRGraph backing arrays (indptr/indices/weights) are immutable",
            "everywhere except repro/graph/ and repro/core/compaction.py",
        ),
        LintRule(
            "RPR002",
            "Tracer.span must be used as a `with` context, never entered manually",
            "everywhere except repro/obs/",
        ),
        LintRule(
            "RPR003",
            "no O(n) numpy allocations inside loops on the KSP/SSSP hot path "
            "or the serving/load event loops",
            "repro/ksp/, repro/sssp/ (workspace.py exempt), "
            "repro/parallel/mp_backend.py, repro/load/, repro/serve/, "
            "repro/dyn/",
        ),
        LintRule(
            "RPR004",
            "float costs (path costs, latencies, accumulated times) are "
            "never compared with == / != (use repro.paths.costs_close)",
            "everywhere",
        ),
        LintRule(
            "RPR005",
            "registry free functions stay thin aliases of repro.solve",
            "repro/ksp/ and repro/core/peek.py",
        ),
    )
}

_CSR_FIELDS = frozenset({"indptr", "indices", "weights"})
_ARRAY_MUTATORS = frozenset({"fill", "sort", "put", "partition", "resize", "itemset"})
_NP_ALLOCATORS = frozenset({"full", "zeros", "ones", "empty"})
#: constant-size allocations at or below this are not "O(n)" (RPR003)
_SMALL_ALLOC = 64
_COST_NAME_RE = re.compile(
    r"(^|_)(dist|dists|distance|distances|cost|costs|bound|total"
    r"|latency|latencies|wait|elapsed|time)($|_)"
)
#: the registry aliases RPR005 polices (must mirror repro.ksp.registry)
_ALIAS_FUNCTIONS = frozenset(
    {
        "yen_ksp",
        "nc_ksp",
        "optyen_ksp",
        "sb_ksp",
        "sb_star_ksp",
        "pnc_ksp",
        "psb_ksp",
        "peek_ksp",
    }
)

def _module_path(filename: str, override: str | None) -> str:
    """Repo-relative module path used for rule scoping.

    The last ``repro`` path component anchors the path (``src/repro/ksp/x.py``
    → ``repro/ksp/x.py``); a file-level ``module=`` pragma overrides it.
    """
    if override:
        return override.strip()
    parts = Path(filename).as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return parts[-1]


def _is_cost_expr(node: ast.expr) -> str | None:
    """The cost-looking identifier inside ``node``, or None.

    Matches a bare name, an attribute access, or a subscript whose base
    matches — ``prefix_dist``, ``path.distance``, ``dist[v]`` all count.
    """
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    elif isinstance(node, ast.Subscript):
        return _is_cost_expr(node.value)
    elif isinstance(node, ast.Call):
        return None  # function results are the callee's responsibility
    else:
        return None
    return ident if _COST_NAME_RE.search(ident) else None


def _csr_attr_name(node: ast.expr) -> str | None:
    """``"x.weights"`` when ``node`` is an attribute access on a CSR field."""
    if isinstance(node, ast.Attribute) and node.attr in _CSR_FIELDS:
        return f"{ast.unparse(node.value)}.{node.attr}"
    return None


class _Checker(ast.NodeVisitor):
    def __init__(self, module: str, path: str, disabled: dict[int, frozenset[str]]):
        self.module = module
        self.path = path
        self.disabled = disabled
        self.findings: list[Finding] = []
        self._loop_depth = 0
        self._with_contexts: set[int] = set()  # id() of with-item call nodes
        # rule applicability, decided once per file
        self.check_001 = not (
            module.startswith("repro/graph/") or module == "repro/core/compaction.py"
        )
        self.check_002 = not module.startswith("repro/obs/")
        self.check_003 = (
            module.startswith(
                (
                    "repro/ksp/",
                    "repro/sssp/",
                    "repro/load/",
                    "repro/serve/",
                    "repro/dyn/",
                )
            )
            or module == "repro/parallel/mp_backend.py"
        ) and not module.endswith("workspace.py")
        self.check_005 = module.startswith("repro/ksp/") or module == "repro/core/peek.py"

    # ------------------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", None)
        if lineno is not None:
            off = self.disabled.get(lineno, frozenset())
            if rule in off or "ALL" in off:
                return
        self.findings.append(
            Finding(
                tool="lint",
                rule=rule,
                severity="error",
                message=message,
                path=self.path,
                line=lineno,
                column=getattr(node, "col_offset", None),
            )
        )

    # ------------------------------------------------------------------
    # RPR001 — CSR backing-array mutation
    # ------------------------------------------------------------------
    def _check_mutation_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_mutation_target(elt)
            return
        if isinstance(target, ast.Subscript):
            name = _csr_attr_name(target.value)
            if name:
                self._emit(
                    "RPR001",
                    target,
                    f"assignment into CSR backing array `{name}[...]`; "
                    "CSRGraph is immutable outside repro.graph / "
                    "repro.core.compaction — use a compaction view or "
                    "build a new graph",
                )
        # Plain attribute rebinding (`self.weights = ...`) is deliberately
        # not flagged: classes outside repro.graph own arrays with these
        # names (EdgeSwapView, SSSP kernels); the contract protects the
        # *contents* of a constructed CSR, not the attribute slot.

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.check_001:
            for t in node.targets:
                self._check_mutation_target(t)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self.check_001:
            self._check_mutation_target(node.target)
            name = _csr_attr_name(node.target)
            if name:
                self._emit(
                    "RPR001",
                    node,
                    f"in-place update of CSR backing array `{name}`; "
                    "CSRGraph is immutable outside repro.graph / "
                    "repro.core.compaction",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # loops (RPR003 context)
    # ------------------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    # ------------------------------------------------------------------
    # with-items (RPR002 context)
    # ------------------------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self._with_contexts.add(id(item.context_expr))
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # calls: RPR001 mutating methods, RPR002 span misuse, RPR003 allocs
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self.check_001
            and isinstance(func, ast.Attribute)
            and func.attr in _ARRAY_MUTATORS
        ):
            name = _csr_attr_name(func.value)
            if name:
                self._emit(
                    "RPR001",
                    node,
                    f"mutating call `{name}.{func.attr}(...)` on a CSR "
                    "backing array; CSRGraph is immutable outside "
                    "repro.graph / repro.core.compaction",
                )
        if self.check_001:
            for kw in node.keywords:
                if kw.arg == "out" and kw.value is not None:
                    for sub in ast.walk(kw.value):
                        name = _csr_attr_name(sub)
                        if name:
                            self._emit(
                                "RPR001",
                                node,
                                f"`out={name}` writes into a CSR backing "
                                "array; CSRGraph is immutable outside "
                                "repro.graph / repro.core.compaction",
                            )
                            break

        if (
            self.check_002
            and isinstance(func, ast.Attribute)
            and func.attr == "span"
            and id(node) not in self._with_contexts
        ):
            self._emit(
                "RPR002",
                node,
                "Tracer.span(...) outside a `with` statement; a manually "
                "entered span that is not exited on every path corrupts "
                "the span stack — use `with tracer.span(...):` or @traced",
            )

        if (
            self.check_003
            and self._loop_depth > 0
            and isinstance(func, ast.Attribute)
            and func.attr in _NP_ALLOCATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
        ):
            small = (
                bool(node.args)
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, int)
                and node.args[0].value <= _SMALL_ALLOC
            )
            if not small:
                self._emit(
                    "RPR003",
                    node,
                    f"np.{func.attr}(...) inside a loop on the KSP/SSSP hot "
                    "path; hoist the buffer out of the loop or route the "
                    "state through repro.sssp.workspace.SSSPWorkspace",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # RPR004 — float cost equality
    # ------------------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        for op, right in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (node.left, right):
                ident = _is_cost_expr(side)
                if ident:
                    opname = "==" if isinstance(op, ast.Eq) else "!="
                    self._emit(
                        "RPR004",
                        node,
                        f"`{opname}` comparison on path cost `{ident}`; "
                        "float costs accumulate rounding error — use "
                        "repro.paths.costs_close (or math.isnan for "
                        "NaN probes)",
                    )
                    break
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # RPR005 — thin-alias contract
    # ------------------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self.check_005 and node.name in _ALIAS_FUNCTIONS and node.col_offset == 0:
            self._check_alias(node)
        self.generic_visit(node)

    def _check_alias(self, node: ast.FunctionDef) -> None:
        returns = 0
        for i, stmt in enumerate(node.body):
            if (
                i == 0
                and isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                continue  # docstring
            if isinstance(stmt, ast.ImportFrom) and stmt.module in (
                "repro.api",
                "repro",
            ):
                continue
            if isinstance(stmt, ast.Assign) and not any(
                isinstance(n, ast.Call) for n in ast.walk(stmt.value)
            ):
                continue  # simple name binding (psb_ksp's variant table)
            if isinstance(stmt, ast.Return):
                returns += 1
                call = stmt.value
                if (
                    isinstance(call, ast.Call)
                    and (
                        (isinstance(call.func, ast.Name) and call.func.id == "solve")
                        or (
                            isinstance(call.func, ast.Attribute)
                            and call.func.attr == "solve"
                        )
                    )
                ):
                    continue
                self._emit(
                    "RPR005",
                    stmt,
                    f"registry alias `{node.name}` must return "
                    "`solve(...)` directly; route new behaviour through "
                    "repro.solve / the AlgorithmSpec registry instead",
                )
                return
            self._emit(
                "RPR005",
                stmt,
                f"registry alias `{node.name}` has non-trivial body "
                f"statement ({type(stmt).__name__}); it must stay a thin "
                "alias of repro.solve (docstring + solve import + return)",
            )
            return
        if returns != 1:
            self._emit(
                "RPR005",
                node,
                f"registry alias `{node.name}` must contain exactly one "
                f"`return solve(...)` (found {returns})",
            )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def lint_source(
    source: str, filename: str = "<string>", *, module: str | None = None
) -> list[Finding]:
    """Lint one source string; ``module`` overrides the inferred path."""
    raw_disabled, override = parse_pragmas(source, "repro-lint")
    mod = _module_path(filename, module or override)
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            Finding(
                tool="lint",
                rule="RPR000",
                severity="error",
                message=f"syntax error: {exc.msg}",
                path=filename,
                line=exc.lineno,
                column=exc.offset,
            )
        ]
    checker = _Checker(mod, filename, expand_disabled_lines(tree, raw_disabled))
    checker.visit(tree)
    return checker.findings


def lint_file(path: str | Path) -> list[Finding]:
    """Lint one ``.py`` file."""
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def lint_paths(paths) -> list[Finding]:
    """Lint files and directories (recursively), in sorted order."""
    findings: list[Finding] = []
    for raw in paths:
        p = Path(raw)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            findings.extend(lint_file(f))
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="repo-specific correctness lint (rules RPR001-RPR005)",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.id}  {rule.summary}  [{rule.scope}]")
        return 0

    findings = lint_paths(args.paths)
    if args.fmt == "json":
        print(findings_to_json(findings))
    elif findings:
        print(render_findings(findings))
        print(f"\nrepro-lint: {len(findings)} finding(s)")
    else:
        print("repro-lint: clean")
    return exit_code(findings)


if __name__ == "__main__":
    sys.exit(main())
