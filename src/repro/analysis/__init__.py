"""Correctness tooling: lint, runtime sanitizers, and race detection.

Three legs, one shared :class:`~repro.analysis.findings.Finding` record
(see ``docs/correctness_tooling.md`` for the full catalogue):

* :mod:`repro.analysis.lint` — AST lint with repo-specific rules
  RPR001–RPR005 (``python -m repro.analysis.lint src/`` or the
  ``repro-lint`` console script);
* :mod:`repro.analysis.sanitize` — runtime invariant checks enabled by
  ``repro.solve(..., sanitize=True)`` or ``RPR_SANITIZE=1``;
* :mod:`repro.analysis.race` — vector-clock race detection over declared
  phase footprints of the parallel/distributed simulators.
"""

from repro.analysis.findings import (
    Finding,
    exit_code,
    findings_to_json,
    render_findings,
    worst_severity,
)
from repro.analysis.race import (
    DeltaSteppingFootprints,
    RaceDetector,
    check_workload,
)
from repro.analysis.sanitize import run_sanitized, sanitize_enabled_from_env

__all__ = [
    "Finding",
    "worst_severity",
    "exit_code",
    "render_findings",
    "findings_to_json",
    "RaceDetector",
    "DeltaSteppingFootprints",
    "check_workload",
    "run_sanitized",
    "sanitize_enabled_from_env",
]
