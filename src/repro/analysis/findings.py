"""The common finding record shared by every correctness tool.

The three legs of :mod:`repro.analysis` — the AST lint pass, the runtime
sanitizer, and the simulated-race detector — all report through one
structured :class:`Finding` type, so a CI job, a test helper, or a human
reading a terminal sees the same shape regardless of which tool spoke:

    src/repro/ksp/yen.py:42:8: RPR003 error [lint] O(n) np.full inside ...

Severity is ordinal (``error`` > ``warning`` > ``note``); the shared
:func:`worst_severity` / :func:`exit_code` helpers give every tool the same
pass/fail semantics.  Nothing here imports the rest of the library — the
lint CLI must be runnable on a tree that does not import cleanly.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

__all__ = [
    "Finding",
    "SEVERITIES",
    "worst_severity",
    "exit_code",
    "render_findings",
    "findings_to_json",
]

#: Recognised severities, most severe first.
SEVERITIES = ("error", "warning", "note")


@dataclass(frozen=True)
class Finding:
    """One diagnostic from a correctness tool.

    Attributes
    ----------
    tool:
        Which leg produced it: ``"lint"``, ``"sanitize"`` or ``"race"``.
    rule:
        Stable identifier — a lint rule id (``RPR001``...), a sanitizer
        check id (``SAN-...``), or a race class (``RACE-WW`` / ``RACE-RW``).
    severity:
        One of :data:`SEVERITIES`.
    message:
        Human-readable description naming the offending object (vertex,
        edge, expression) so the report is actionable without re-running.
    path, line, column:
        Source location for lint findings (``None`` for runtime findings).
    context:
        Free-form extra detail — the conflicting tasks of a race, the
        resource key, the epoch numbers of a stale workspace read.
    """

    tool: str
    rule: str
    severity: str
    message: str
    path: str | None = None
    line: int | None = None
    column: int | None = None
    context: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def format(self) -> str:
        """One-line rendering: ``path:line:col: RULE severity [tool] message``."""
        loc = ""
        if self.path is not None:
            loc = self.path
            if self.line is not None:
                loc += f":{self.line}"
                if self.column is not None:
                    loc += f":{self.column}"
            loc += ": "
        return f"{loc}{self.rule} {self.severity} [{self.tool}] {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready dict (``context`` preserved verbatim)."""
        return asdict(self)


def worst_severity(findings) -> str | None:
    """The most severe severity present, or ``None`` when empty."""
    worst = None
    for f in findings:
        if worst is None or SEVERITIES.index(f.severity) < SEVERITIES.index(worst):
            worst = f.severity
    return worst


def exit_code(findings) -> int:
    """Process exit status for a tool run: non-zero on any finding.

    Every tool in this package treats any finding — including warnings —
    as a failure; a rule that should not gate CI belongs out of the
    default rule set, not at a softer severity.
    """
    return 1 if list(findings) else 0


def render_findings(findings, *, header: str | None = None) -> str:
    """Multi-line text report, stable order (path, line, rule)."""
    items = sorted(
        findings,
        key=lambda f: (f.path or "", f.line or 0, f.column or 0, f.rule),
    )
    lines = [f.format() for f in items]
    if header is not None:
        lines.insert(0, header)
    return "\n".join(lines)


def findings_to_json(findings) -> str:
    """The findings as a JSON array (the lint CLI's ``--format json``)."""
    return json.dumps([f.to_dict() for f in findings], indent=2)
