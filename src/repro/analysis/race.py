"""Simulated-race detection for the parallel phase decompositions.

The shared-memory simulator (:mod:`repro.parallel`) and the BSP
communicator (:mod:`repro.distributed.comm`) both replay *declared*
parallel structure: phases whose tasks are claimed to be independent,
separated by barriers.  Nothing in the simulators verifies that claim —
a decomposition that forgets a barrier, or partitions writes incorrectly,
still simulates fine and silently reports speedups for a program that
would corrupt memory on real threads.

This module closes that gap with a FastTrack-style vector-clock detector
over declared read/write footprints.  Each concurrent task carries a
vector clock; :meth:`RaceDetector.barrier` joins all clocks (everything
before the barrier happens-before everything after); two accesses to the
same resource conflict when neither happens-before the other and at least
one is a write.  Conflicts surface as :class:`~repro.analysis.findings.
Finding` records with rule ``RACE-WW`` (write-write) or ``RACE-RW``
(read-write).

Footprints enter three ways:

* :class:`~repro.parallel.workload.Phase` / ``TaskPhase`` accept an
  optional ``footprints`` tuple (one :class:`Footprint` per concurrent
  task); :func:`check_workload` sweeps a workload and checks every phase
  that declares them.
* ``delta_stepping(..., footprint_recorder=DeltaSteppingFootprints(...))``
  records the kernel's real gather → barrier → commit decomposition as it
  runs, so the shipped bucket-relaxation structure is checked against the
  *actual* frontiers and relaxations of a run, not a hand-written model.
* ``SimComm(..., race_detector=...)`` treats every collective as a
  barrier and lets distributed algorithms declare per-rank footprints via
  ``record_reads`` / ``record_writes``.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.parallel.workload import Footprint, JobKind, Phase, Workload

__all__ = [
    "Footprint",
    "RaceDetector",
    "DeltaSteppingFootprints",
    "DistDeltaFootprints",
    "MPBackendFootprints",
    "check_workload",
]


def _resource_name(resource) -> str:
    """``("dist", 5)`` → ``"dist[5]"``; anything else via ``str``."""
    if isinstance(resource, tuple) and len(resource) == 2:
        return f"{resource[0]}[{resource[1]}]"
    return str(resource)


class RaceDetector:
    """Vector-clock happens-before checker over declared accesses.

    Tasks are numbered ``0..num_tasks-1``.  Record accesses with
    :meth:`read` / :meth:`write` (or the bulk variants), insert
    :meth:`barrier` wherever the decomposition claims synchronisation,
    and inspect :attr:`findings` — one deduplicated
    :class:`~repro.analysis.findings.Finding` per conflicting
    (rule, resource, task-pair) triple.
    """

    def __init__(self, num_tasks: int, *, label: str = "") -> None:
        if num_tasks < 1:
            raise ValueError("need at least one task")
        self.num_tasks = num_tasks
        self.label = label
        # vc[t][u]: the latest tick of task u that task t has synchronised with
        self._vc = [[0] * num_tasks for _ in range(num_tasks)]
        for t in range(num_tasks):
            self._vc[t][t] = 1
        self._last_write: dict = {}  # resource -> (task, tick)
        self._reads: dict = {}  # resource -> {task: tick}
        self.findings: list[Finding] = []
        self._reported: set = set()

    # ------------------------------------------------------------------
    def _happens_before(self, observer: int, other: int, tick: int) -> bool:
        return self._vc[observer][other] >= tick

    def _report(self, rule: str, resource, a: int, b: int) -> None:
        key = (rule, resource, min(a, b), max(a, b))
        if key in self._reported:
            return
        self._reported.add(key)
        name = _resource_name(resource)
        where = f" in {self.label}" if self.label else ""
        kind = "write-write" if rule == "RACE-WW" else "read-write"
        self.findings.append(
            Finding(
                tool="race",
                rule=rule,
                severity="error",
                message=(
                    f"{kind} conflict on {name}{where}: tasks {min(a, b)} "
                    f"and {max(a, b)} access it concurrently with no "
                    "separating barrier"
                ),
                context={
                    "resource": name,
                    "tasks": (min(a, b), max(a, b)),
                    "phase": self.label,
                },
            )
        )

    # ------------------------------------------------------------------
    def read(self, task: int, resource) -> None:
        """Task ``task`` reads ``resource`` at its current clock."""
        lw = self._last_write.get(resource)
        if lw is not None:
            writer, tick = lw
            if writer != task and not self._happens_before(task, writer, tick):
                self._report("RACE-RW", resource, writer, task)
        self._reads.setdefault(resource, {})[task] = self._vc[task][task]

    def write(self, task: int, resource) -> None:
        """Task ``task`` writes ``resource`` at its current clock."""
        lw = self._last_write.get(resource)
        if lw is not None:
            writer, tick = lw
            if writer != task and not self._happens_before(task, writer, tick):
                self._report("RACE-WW", resource, writer, task)
        for reader, tick in self._reads.get(resource, {}).items():
            if reader != task and not self._happens_before(task, reader, tick):
                self._report("RACE-RW", resource, reader, task)
        self._last_write[resource] = (task, self._vc[task][task])

    def record_reads(self, task: int, resources) -> None:
        """Bulk :meth:`read` of an iterable of resources."""
        for r in resources:
            self.read(task, r)

    def record_writes(self, task: int, resources) -> None:
        """Bulk :meth:`write` of an iterable of resources."""
        for r in resources:
            self.write(task, r)

    def barrier(self) -> None:
        """Global synchronisation: join every clock, then advance each task."""
        joined = [
            max(self._vc[t][u] for t in range(self.num_tasks))
            for u in range(self.num_tasks)
        ]
        for t in range(self.num_tasks):
            self._vc[t] = joined.copy()
            self._vc[t][t] += 1


def check_workload(workload: Workload) -> list[Finding]:
    """Check every footprint-declaring phase of a workload for races.

    Phase boundaries are barriers (that is the simulator's execution
    model), so each phase is checked independently: its tasks run
    concurrently with no internal synchronisation and every declared
    access pair on a shared resource with at least one write is a
    conflict.  Phases without footprints are skipped — declaring them is
    opt-in per decomposition.
    """
    findings: list[Finding] = []
    for phase in workload.phases:
        fps = getattr(phase, "footprints", ())
        if not fps:
            continue
        det = RaceDetector(len(fps), label=phase.label)
        for t, fp in enumerate(fps):
            det.record_reads(t, fp.reads)
        for t, fp in enumerate(fps):
            det.record_writes(t, fp.writes)
        findings.extend(det.findings)
    return findings


class DeltaSteppingFootprints:
    """Record Δ-stepping's bucket steps as footprint-declared phases.

    Pass an instance as ``delta_stepping(..., footprint_recorder=...)``.
    Each bucket step is decomposed the way the paper parallelises it
    (§6.2, GBBS-style): a *gather* phase where tasks read the distances
    of their frontier/edge-target chunk, a barrier, then a *commit* phase
    where the min-reduced relaxations are written back partitioned by
    target vertex — so no two tasks ever write the same slot.

    ``elide_barriers=True`` deliberately merges each step's gather and
    commit into one phase — the classic forgotten-barrier bug — which the
    detector must flag (this is the synthetic-bug regression test; the
    shipped decomposition must report zero conflicts).
    """

    def __init__(self, num_tasks: int = 2, *, elide_barriers: bool = False) -> None:
        if num_tasks < 1:
            raise ValueError("need at least one task")
        self.num_tasks = num_tasks
        self.elide_barriers = elide_barriers
        self.phases: list[tuple[str, tuple[Footprint, ...]]] = []

    def record_step(self, label: str, sources, read_targets, written) -> None:
        """Record one bucket step's accesses (arrays of vertex ids).

        ``sources``/``read_targets`` are the per-edge frontier sources and
        relaxation targets the step *read* distances of; ``written`` are
        the vertices whose ``dist``/``parent`` the step improved.
        """
        nt = self.num_tasks
        reads: list[set] = [set() for _ in range(nt)]
        # edges are dealt to tasks round-robin by position — the simulator's
        # static chunking of one vectorised batch
        for pos, u in enumerate(sources.tolist()):
            reads[pos % nt].add(("dist", int(u)))
        for pos, v in enumerate(read_targets.tolist()):
            reads[pos % nt].add(("dist", int(v)))
        writes: list[set] = [set() for _ in range(nt)]
        # commits are owner-partitioned by target vertex
        for v in written.tolist():
            w = writes[int(v) % nt]
            w.add(("dist", int(v)))
            w.add(("parent", int(v)))
        if self.elide_barriers:
            self.phases.append(
                (
                    label,
                    tuple(
                        Footprint(
                            reads=tuple(sorted(reads[t])),
                            writes=tuple(sorted(writes[t])),
                        )
                        for t in range(nt)
                    ),
                )
            )
            return
        self.phases.append(
            (
                f"{label}-gather",
                tuple(
                    Footprint(reads=tuple(sorted(reads[t]))) for t in range(nt)
                ),
            )
        )
        self.phases.append(
            (
                f"{label}-commit",
                tuple(
                    Footprint(writes=tuple(sorted(writes[t]))) for t in range(nt)
                ),
            )
        )

    def as_workload(self) -> Workload:
        """The recorded steps as a footprint-carrying DATA-phase workload."""
        phases = [
            Phase(
                JobKind.DATA,
                work=sum(len(fp.reads) + len(fp.writes) for fp in fps),
                label=label,
                footprints=fps,
            )
            for label, fps in self.phases
        ]
        return Workload(phases=phases, label="delta-stepping-footprints")

    def check(self) -> list[Finding]:
        """Run the race detector over everything recorded so far."""
        return check_workload(self.as_workload())


class MPBackendFootprints:
    """Record the mp backend's real gather → relax → commit decomposition.

    Pass an instance as ``delta_stepping(..., backend="mp",
    footprint_recorder=...)``: the executor calls :meth:`record_mp_step`
    with the actual per-worker frontier chunks and gathered targets of
    every bucket step.  Tasks ``0..W-1`` are the workers; task ``W`` is the
    committing master.  The shipped decomposition declares

    * a *scatter* phase where the master alone writes the shared frontier
      regions (``self._frontier[:f] = frontier`` in the executor) before
      signalling the workers,
    * a *relax* phase where each worker reads its frontier region and the
      shared distances of its chunk's sources and writes only its private
      output region (``out[w]``), and
    * a *commit* phase (after the queue-synchronisation barrier) where the
      master alone reads every output region plus the batch targets and
      writes the improved ``dist``/``parent`` slots,

    which must report **zero** conflicts.  ``racy_commit=True`` instead
    declares the naive port — each worker commits its own chunk's targets
    directly, with no barrier and no owner partitioning — which races
    whenever two chunks relax into the same vertex, and which the detector
    must flag (the synthetic-bug regression test).
    """

    def __init__(self, *, racy_commit: bool = False) -> None:
        self.racy_commit = racy_commit
        self.phases: list[tuple[str, tuple[Footprint, ...]]] = []

    def record_mp_step(self, label, chunk_sources, chunk_targets, improved):
        """Record one step: per-worker source/target chunks + improvements."""
        nw = len(chunk_sources)
        reads: list[set] = [set() for _ in range(nw + 1)]
        writes: list[set] = [set() for _ in range(nw + 1)]
        # bounded by one bucket step's recorded chunks; the mp driver
        # checkpoints once per bucket phase
        for w in range(nw):  # contracts: disable=CTR201 (bounded)
            for u in chunk_sources[w].tolist():
                reads[w].add(("dist", int(u)))
            if self.racy_commit:
                # forgotten reduction: each worker writes its own targets
                for v in chunk_targets[w].tolist():
                    writes[w].add(("dist", int(v)))
                    writes[w].add(("parent", int(v)))
            else:
                writes[w].add(("out", w))
        if self.racy_commit:
            self.phases.append(
                (
                    label,
                    tuple(
                        Footprint(
                            reads=tuple(sorted(reads[t])),
                            writes=tuple(sorted(writes[t])),
                        )
                        for t in range(nw)
                    ),
                )
            )
            return
        master = nw
        # scatter: the master alone populates the shared frontier regions
        # the workers are about to read; sequenced before the worker
        # signal, so it gets its own single-writer phase
        for w in range(nw):
            writes[master].add(("frontier", w))
            reads[w].add(("frontier", w))
        self.phases.append(
            (
                f"{label}-scatter",
                tuple(
                    Footprint(
                        reads=(),
                        writes=tuple(sorted(writes[master]))
                        if t == master
                        else (),
                    )
                    for t in range(nw + 1)
                ),
            )
        )
        writes[master].clear()
        for w in range(nw):  # contracts: disable=CTR201 (bounded)
            reads[master].add(("out", w))
            for v in chunk_targets[w].tolist():
                reads[master].add(("dist", int(v)))
        for v in improved.tolist():
            writes[master].add(("dist", int(v)))
            writes[master].add(("parent", int(v)))
        self.phases.append(
            (
                f"{label}-relax",
                tuple(
                    Footprint(
                        reads=tuple(sorted(reads[t])) if t < nw else (),
                        writes=tuple(sorted(writes[t])) if t < nw else (),
                    )
                    for t in range(nw + 1)
                ),
            )
        )
        self.phases.append(
            (
                f"{label}-commit",
                tuple(
                    Footprint(
                        reads=tuple(sorted(reads[master])) if t == master else (),
                        writes=tuple(sorted(writes[master])) if t == master else (),
                    )
                    for t in range(nw + 1)
                ),
            )
        )

    def as_workload(self) -> Workload:
        """The recorded steps as a footprint-carrying DATA-phase workload."""
        phases = [
            Phase(
                JobKind.DATA,
                work=sum(len(fp.reads) + len(fp.writes) for fp in fps),
                label=label,
                footprints=fps,
            )
            for label, fps in self.phases
        ]
        return Workload(phases=phases, label="mp-backend-footprints")

    def check(self) -> list[Finding]:
        """Run the race detector over everything recorded so far."""
        return check_workload(self.as_workload())


class DistDeltaFootprints:
    """Declare distributed Δ-stepping's per-rank footprints as it runs.

    Pass an instance as ``distributed_delta_stepping(...,
    footprint_recorder=...)`` together with a ``SimComm(...,
    race_detector=RaceDetector(num_ranks))``: the kernel calls
    :meth:`gather` for each rank before routing (reads of the rank's own
    frontier distances, clears of its own ``needs`` flags) and
    :meth:`commit` after the ``alltoallv`` (owner-side reads of request
    targets, writes of improved distances/parents).  The collectives are
    the barriers — SimComm already joins the detector's clocks on every
    one — so the shipped owner-routed decomposition must report **zero**
    conflicts.

    ``owner_routed=False`` declares the classic distributed-memory bug
    instead: the *requesting* rank writes the target's distance directly,
    as a shared-memory port naively would, which races between any two
    ranks relaxing edges into the same vertex in one superstep.  The
    detector must flag that (the synthetic-bug regression test).
    """

    def __init__(self, *, owner_routed: bool = True) -> None:
        self.owner_routed = owner_routed

    def gather(self, comm, rank: int, frontier, targets) -> None:
        """Rank-local expansion: read own frontier, clear own flags."""
        frontier = [int(u) for u in frontier]
        comm.record_reads(rank, (("dist", u) for u in frontier))
        comm.record_writes(rank, (("needs", u) for u in frontier))
        if not self.owner_routed:
            comm.record_writes(
                rank, (("dist", int(v)) for v in targets)
            )

    def commit(self, comm, rank: int, targets, improved) -> None:
        """Owner-side apply: read routed targets, write improvements."""
        comm.record_reads(rank, (("dist", int(v)) for v in targets))
        improved = [int(v) for v in improved]
        comm.record_writes(rank, (("dist", v) for v in improved))
        comm.record_writes(rank, (("parent", v) for v in improved))
        comm.record_writes(rank, (("needs", v) for v in improved))
