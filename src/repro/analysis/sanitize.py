"""Runtime sanitizers: machine-checked invariants for the PeeK pipeline.

PeeK's correctness story rests on invariants that are cheap to *check* but
easy to silently break while refactoring: CSR structural integrity, the
faithfulness of the compaction views, the simplicity/ordering/re-summation
contract of returned paths, the prune bound's certificate over the result,
and the epoch discipline of the shared SSSP workspaces.  This module turns
each into an explicit check that raises :class:`~repro.errors.SanitizerError`
carrying a structured :class:`~repro.analysis.findings.Finding` naming the
offending vertex/edge/path.

Enable per call with ``repro.solve(..., sanitize=True)`` or process-wide
with ``RPR_SANITIZE=1``.  The checks only *read* — a sanitized run returns
bitwise-identical results to an unsanitized one (asserted by the slow test
in ``tests/analysis/test_overhead.py``, which also bounds the overhead at
under 2× the untraced runtime on the medium suite).

Check ids: ``SAN-CSR`` (CSR structure), ``SAN-VIEW`` (compaction views),
``SAN-PATH`` (result paths), ``SAN-PRUNE`` (PeeK prune certificate),
``SAN-WS`` (workspace epoch integrity), ``SAN-DYN`` (live-graph
prune-bound reuse: a reused prune must match a cold re-prune on the
current snapshot).
"""

from __future__ import annotations

import os

import numpy as np

from repro.analysis.findings import Finding
from repro.errors import SanitizerError
from repro.paths import COST_REL_TOL, costs_close

__all__ = [
    "sanitize_enabled_from_env",
    "check_graph",
    "check_csr",
    "check_reverse_roundtrip",
    "check_status_view",
    "check_edge_swap_view",
    "check_regenerated",
    "check_result_paths",
    "check_prune_certificate",
    "check_dyn_reuse",
    "check_workspace",
    "run_sanitized",
]


def sanitize_enabled_from_env() -> bool:
    """True when ``RPR_SANITIZE`` requests process-wide sanitizing."""
    return os.environ.get("RPR_SANITIZE", "").strip().lower() not in (
        "",
        "0",
        "false",
        "off",
    )


def _fail(rule: str, message: str, **context) -> None:
    raise SanitizerError(
        f"{rule}: {message}",
        finding=Finding(
            tool="sanitize",
            rule=rule,
            severity="error",
            message=message,
            context=context,
        ),
    )


# ----------------------------------------------------------------------
# structural checks
# ----------------------------------------------------------------------
def check_csr(graph, *, name: str = "graph") -> None:
    """CSR structural integrity: monotone indptr, in-range targets, weights."""
    indptr = np.asarray(graph.indptr)
    indices = np.asarray(graph.indices)
    weights = np.asarray(graph.weights)
    n = int(indptr.size - 1)
    if indptr.size < 1 or int(indptr[0]) != 0:
        _fail("SAN-CSR", f"{name}: indptr[0] is {int(indptr[0])}, expected 0")
    deltas = np.diff(indptr)
    bad = np.flatnonzero(deltas < 0)
    if bad.size:
        v = int(bad[0])
        _fail(
            "SAN-CSR",
            f"{name}: indptr decreases at vertex {v} "
            f"({int(indptr[v])} -> {int(indptr[v + 1])})",
            vertex=v,
        )
    if int(indptr[-1]) != indices.size:
        _fail(
            "SAN-CSR",
            f"{name}: indptr[-1]={int(indptr[-1])} but {indices.size} edges stored",
        )
    if indices.size:
        out = np.flatnonzero((indices < 0) | (indices >= n))
        if out.size:
            e = int(out[0])
            _fail(
                "SAN-CSR",
                f"{name}: edge {e} targets vertex {int(indices[e])}, "
                f"outside [0, {n})",
                edge=e,
                target=int(indices[e]),
            )
        nan = np.flatnonzero(np.isnan(weights))
        if nan.size:
            e = int(nan[0])
            _fail("SAN-CSR", f"{name}: edge {e} has NaN weight", edge=e)
        nonpos = np.flatnonzero(~np.isfinite(weights) | (weights <= 0.0))
        if nonpos.size:
            e = int(nonpos[0])
            _fail(
                "SAN-CSR",
                f"{name}: edge {e} has non-finite or non-positive weight "
                f"{float(weights[e])}",
                edge=e,
                weight=float(weights[e]),
            )


def check_reverse_roundtrip(graph, *, name: str = "graph") -> None:
    """``reverse()`` preserves the edge multiset and round-trips."""
    rev = graph.reverse()
    if rev.num_edges != graph.num_edges:
        _fail(
            "SAN-CSR",
            f"{name}: reverse() has {rev.num_edges} edges, original has "
            f"{graph.num_edges}",
        )
    n = graph.num_vertices
    in_deg = np.bincount(graph.indices, minlength=n)
    if not np.array_equal(in_deg, rev.out_degrees()):
        v = int(np.flatnonzero(in_deg != rev.out_degrees())[0])
        _fail(
            "SAN-CSR",
            f"{name}: vertex {v} has in-degree {int(in_deg[v])} but "
            f"reverse out-degree {int(rev.out_degrees()[v])}",
            vertex=v,
        )
    if graph.num_edges and not costs_close(
        float(graph.weights.sum()), float(rev.weights.sum())
    ):
        _fail("SAN-CSR", f"{name}: reverse() changed the total edge weight")
    back = rev.reverse()
    if back is not graph and not back.structurally_equal(graph):
        _fail("SAN-CSR", f"{name}: reverse().reverse() is not the original graph")


def check_status_view(view) -> None:
    """Status-array view: mask shape and endpoint-liveness consistency."""
    base = view.base
    check_csr(base, name="StatusArrayView.base")
    m = base.num_edges
    if view.edge_mask.size != m:
        _fail(
            "SAN-VIEW",
            f"StatusArrayView: edge_mask has {view.edge_mask.size} entries "
            f"for {m} edges",
        )
    if view.keep_vertices.size != base.num_vertices:
        _fail(
            "SAN-VIEW",
            f"StatusArrayView: keep_vertices has {view.keep_vertices.size} "
            f"entries for {base.num_vertices} vertices",
        )
    # a live edge must connect two kept vertices
    live = np.flatnonzero(view.edge_mask)
    if live.size:
        src = base.edge_sources()[live]
        dst = base.indices[live]
        bad = np.flatnonzero(
            ~view.keep_vertices[src] | ~view.keep_vertices[dst]
        )
        if bad.size:
            e = int(live[bad[0]])
            _fail(
                "SAN-VIEW",
                f"StatusArrayView: edge {e} "
                f"({int(base.edge_sources()[e])}->{int(base.indices[e])}) is "
                "live but one endpoint is pruned",
                edge=e,
            )


def check_edge_swap_view(view) -> None:
    """Edge-swap view: segment ends in range, live slice structurally valid."""
    base = view.base
    indptr = base.indptr
    n = base.num_vertices
    ends = view._ends
    bad = np.flatnonzero((ends < indptr[:-1]) | (ends > indptr[1:]))
    if bad.size:
        v = int(bad[0])
        _fail(
            "SAN-VIEW",
            f"EdgeSwapView: vertex {v} live segment end {int(ends[v])} "
            f"outside its CSR segment [{int(indptr[v])}, {int(indptr[v + 1])}]",
            vertex=v,
        )
    degs = np.diff(indptr)
    live = np.arange(base.num_edges, dtype=np.int64) < np.repeat(ends, degs)
    if int(live.sum()) != view.num_edges:
        _fail(
            "SAN-VIEW",
            f"EdgeSwapView: num_edges={view.num_edges} but live segments "
            f"hold {int(live.sum())} edges",
        )
    live_pos = np.flatnonzero(live)
    if live_pos.size:
        tgt = view.indices[live_pos]
        out = np.flatnonzero((tgt < 0) | (tgt >= n))
        if out.size:
            e = int(live_pos[out[0]])
            _fail(
                "SAN-VIEW",
                f"EdgeSwapView: live edge at position {e} targets vertex "
                f"{int(view.indices[e])}, outside [0, {n}) — dangling index",
                edge=e,
                target=int(view.indices[e]),
            )
        w = view.weights[live_pos]
        badw = np.flatnonzero(~np.isfinite(w) | (w <= 0.0))
        if badw.size:
            e = int(live_pos[badw[0]])
            _fail(
                "SAN-VIEW",
                f"EdgeSwapView: live edge at position {e} has invalid "
                f"weight {float(view.weights[e])}",
                edge=e,
            )


def check_regenerated(regen) -> None:
    """Regenerated graph: fresh CSR valid, id maps mutually inverse."""
    check_csr(regen.graph, name="RegeneratedGraph.graph")
    n_new = regen.graph.num_vertices
    if regen.old_id.size != n_new:
        _fail(
            "SAN-VIEW",
            f"RegeneratedGraph: old_id has {regen.old_id.size} entries for "
            f"{n_new} vertices",
        )
    if not np.array_equal(
        regen.new_id[regen.old_id], np.arange(n_new, dtype=np.int64)
    ):
        _fail("SAN-VIEW", "RegeneratedGraph: new_id/old_id maps are not inverse")


def check_graph(graph, *, name: str = "graph") -> None:
    """Dispatch the structural check matching ``graph``'s concrete type."""
    from repro.core.compaction import (
        EdgeSwapView,
        RegeneratedGraph,
        StatusArrayView,
    )
    from repro.graph.csr import CSRGraph

    if isinstance(graph, CSRGraph):
        check_csr(graph, name=name)
        check_reverse_roundtrip(graph, name=name)
    elif isinstance(graph, StatusArrayView):
        check_status_view(graph)
    elif isinstance(graph, EdgeSwapView):
        check_edge_swap_view(graph)
    elif isinstance(graph, RegeneratedGraph):
        check_regenerated(graph)
    else:
        # adjacency-protocol duck types (tests' stubs): best-effort only
        if hasattr(graph, "indptr"):
            check_csr(graph, name=name)


# ----------------------------------------------------------------------
# result checks
# ----------------------------------------------------------------------
def check_result_paths(
    graph, result, source: int, target: int, *, rel_tol: float = COST_REL_TOL
) -> None:
    """Returned paths are simple, correctly summed, sorted, and distinct."""
    prev = float("-inf")
    seen: set[tuple[int, ...]] = set()
    # the sanitizer walks an already-computed result: <= K paths, each
    # a finite vertex list — no checkpoint needed after kernel exit
    for i, path in enumerate(result.paths):  # contracts: disable=CTR201 (bounded)
        verts = path.vertices
        if verts[0] != source or verts[-1] != target:
            _fail(
                "SAN-PATH",
                f"path #{i} runs {verts[0]}->{verts[-1]}, query was "
                f"{source}->{target}",
                path=i,
            )
        marked: set[int] = set()
        for v in verts:  # contracts: disable=CTR201 (bounded)
            if v in marked:
                _fail(
                    "SAN-PATH",
                    f"path #{i} is not simple: vertex {v} repeats",
                    path=i,
                    vertex=int(v),
                )
            marked.add(v)
        total = 0.0
        for u, v in zip(verts[:-1], verts[1:]):  # contracts: disable=CTR201 (bounded)
            w = graph.edge_weight(u, v)
            if w is None:
                _fail(
                    "SAN-PATH",
                    f"path #{i} uses edge {u}->{v}, absent from the graph",
                    path=i,
                    edge=(int(u), int(v)),
                )
            total += w
        if not costs_close(total, path.distance, rel_tol=rel_tol):
            _fail(
                "SAN-PATH",
                f"path #{i} claims distance {path.distance!r} but its edges "
                f"sum to {total!r}",
                path=i,
            )
        if path.distance < prev and not costs_close(path.distance, prev, rel_tol=rel_tol):
            _fail(
                "SAN-PATH",
                f"path #{i} (distance {path.distance!r}) breaks the "
                "non-decreasing order",
                path=i,
            )
        if verts in seen:
            _fail("SAN-PATH", f"path #{i} duplicates an earlier path", path=i)
        seen.add(verts)
        prev = max(prev, path.distance)
    if len(result.paths) > result.k_requested:
        _fail(
            "SAN-PATH",
            f"{len(result.paths)} paths returned for k={result.k_requested}",
        )


def check_prune_certificate(result, *, rel_tol: float = COST_REL_TOL) -> None:
    """PeeK-specific: every returned path survives the prune bound.

    The K-upper-bound ``b`` dominates the true K-th shortest distance
    (paper Lemma 4.2 / Theorem 4.3), so every returned path must cost at
    most ``b`` and every vertex on it must have ``spSum[v] <= b`` — i.e.
    none of the returned paths touches anything the prune was allowed to
    delete.  This certifies the compaction stage changed no answer.
    """
    pr = getattr(result, "prune", None)
    if pr is None or not np.isfinite(pr.bound):
        return
    slack = rel_tol * max(1.0, abs(pr.bound))
    # bounded by the <= K returned paths of a finished run
    for i, path in enumerate(result.paths):  # contracts: disable=CTR201 (bounded)
        if path.distance > pr.bound + slack:
            _fail(
                "SAN-PRUNE",
                f"path #{i} costs {path.distance!r}, above the prune bound "
                f"{pr.bound!r} — the prune certificate is violated",
                path=i,
                bound=float(pr.bound),
            )
        verts = np.asarray(path.vertices, dtype=np.int64)
        sp = pr.sp_sum[verts]
        bad = np.flatnonzero(sp > pr.bound + slack)
        if bad.size:
            v = int(verts[bad[0]])
            _fail(
                "SAN-PRUNE",
                f"path #{i} visits vertex {v} with spSum {float(pr.sp_sum[v])!r} "
                f"above the prune bound {pr.bound!r} — that vertex should "
                "have been prunable",
                path=i,
                vertex=v,
                bound=float(pr.bound),
            )


def check_dyn_reuse(
    graph,
    prune,
    source: int,
    target: int,
    k: int,
    *,
    kernel: str = "delta",
    strong_edge_prune: bool = False,
) -> None:
    """Live-graph reuse audit: a reused prune must equal a cold re-prune.

    :meth:`repro.core.batch.BatchPeeK.prepare` may answer a query from a
    cached pruning decision when the mutation batches since it was
    computed satisfied :func:`repro.core.pruning.prune_reuse_certificate`.
    This check recomputes the prune from scratch on the *current*
    snapshot and asserts the certificate's promise: the K upper bound
    agrees (to :data:`~repro.paths.COST_REL_TOL`) and the kept-vertex set
    is identical.  Expensive (two SSSPs + a spSum scan), so it only runs
    under sanitizers.
    """
    from repro.core.pruning import k_upper_bound_prune

    cold = k_upper_bound_prune(
        graph,
        source,
        target,
        k,
        kernel=kernel,
        strong_edge_prune=strong_edge_prune,
    )
    both_inf = not (np.isfinite(prune.bound) or np.isfinite(cold.bound))
    if not both_inf and not costs_close(prune.bound, cold.bound):
        _fail(
            "SAN-DYN",
            f"reused prune bound {prune.bound!r} disagrees with a cold "
            f"re-prune's bound {cold.bound!r} for query "
            f"({source}, {target}, k={k}) — the reuse certificate admitted "
            "a batch it should have refused",
            source=source,
            target=target,
            k=k,
            reused_bound=float(prune.bound),
            cold_bound=float(cold.bound),
        )
    if not np.array_equal(prune.keep_vertices, cold.keep_vertices):
        delta = np.flatnonzero(prune.keep_vertices != cold.keep_vertices)
        v = int(delta[0])
        _fail(
            "SAN-DYN",
            f"reused kept-vertex set disagrees with a cold re-prune at "
            f"vertex {v} (reused keeps it: {bool(prune.keep_vertices[v])}) "
            f"for query ({source}, {target}, k={k})",
            source=source,
            target=target,
            k=k,
            vertex=v,
        )


def check_workspace(ws) -> None:
    """Workspace epoch integrity: no future stamps, consistent ban mask."""
    ep = ws.epoch
    dstamp = np.asarray(ws._dstamp, dtype=np.int64)
    sstamp = np.asarray(ws._sstamp, dtype=np.int64)
    bad = np.flatnonzero(dstamp > ep)
    if bad.size:
        v = int(bad[0])
        _fail(
            "SAN-WS",
            f"workspace vertex {v} carries distance stamp {int(dstamp[v])} "
            f"beyond the current epoch {ep} — stale-epoch discipline broken",
            vertex=v,
            epoch=ep,
        )
    bad = np.flatnonzero(sstamp > ep)
    if bad.size:
        v = int(bad[0])
        _fail(
            "SAN-WS",
            f"workspace vertex {v} carries settled stamp {int(sstamp[v])} "
            f"beyond the current epoch {ep}",
            vertex=v,
            epoch=ep,
        )
    mask_set = set(np.flatnonzero(ws.ban).tolist())
    if mask_set != ws._ban_current:
        delta = mask_set.symmetric_difference(ws._ban_current)
        v = int(next(iter(delta)))
        _fail(
            "SAN-WS",
            f"workspace incremental ban mask out of sync at vertex {v} "
            f"(mask says {v in mask_set}, tracking set says "
            f"{v in ws._ban_current})",
            vertex=v,
        )


# ----------------------------------------------------------------------
# the sanitized solve pipeline
# ----------------------------------------------------------------------
def run_sanitized(graph, source: int, target: int, k: int, algorithm: str, opts):
    """Run one solve under the full sanitizer battery.

    Called by :func:`repro.solve` when sanitizing is requested.  Checks the
    input graph structurally, runs the untouched solver, then audits the
    result paths, PeeK's prune certificate and compaction artefacts, and
    any SSSP workspace the solver used.  The result object is returned
    unmodified.
    """
    from repro.ksp.registry import make_algorithm
    from repro.obs.tracer import get_tracer

    tracer = get_tracer()
    with tracer.span("sanitize.pre", algorithm=algorithm):
        check_graph(graph, name="input graph")

    solver = make_algorithm(algorithm, graph, source, target, **opts)
    result = solver.run(k)

    with tracer.span("sanitize.post", algorithm=algorithm):
        check_result_paths(graph, result, source, target)
        check_prune_certificate(result)
        comp = getattr(solver, "compaction_result", None)
        if comp is not None:
            check_graph(comp.compacted, name="compacted graph")
        inner = getattr(solver, "_inner", None) or solver
        ws = getattr(inner, "_workspace", None)
        if ws is not None:
            check_workspace(ws)
    return result
