# Developer entry points.  Everything runs from the repo root with the
# in-tree sources on PYTHONPATH — no install step needed.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast test-slow lint contracts bench bench-hot bench-serving bench-dyn bench-fabric example-tuning

## Tier-1 suite: the full gate every change must keep green.
test:
	$(PYTHON) -m pytest -x -q

## Fast loop: skips tests marked `slow` (medium-scale smoke tests).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

## Opt-in medium-scale smoke tests only.
test-slow:
	REPRO_RUN_SLOW=1 $(PYTHON) -m pytest -q -m slow

## Lint (CI runs this; requires ruff, which is not a runtime dependency).
## repro-lint is the repo-specific AST pass (rules RPR001-RPR005; see
## docs/correctness_tooling.md).
lint: contracts
	ruff check src tests
	$(PYTHON) -m repro.analysis.lint src

## Whole-program contract analyzer (rules CTR101-CTR501; see
## docs/correctness_tooling.md).  Fails on any finding not in the
## checked-in baseline; also refreshes the coverage self-report.
contracts:
	$(PYTHON) -m repro.analysis.contracts --baseline contracts_baseline.json \
		--report results/contracts_report.txt src/repro

## KSP hot-path benchmark: workspace on/off for Yen/OptYen/PeeK.
## Writes BENCH_hot_path.json and results/hot_path.txt.
bench: bench-hot
bench-hot:
	$(PYTHON) benchmarks/bench_hot_path.py

## Serving-capacity benchmark: the medium run table on simulated time.
## Writes BENCH_serving.json and results/serving_capacity.txt.
bench-serving:
	$(PYTHON) benchmarks/bench_serving.py

## Live-graph serving benchmark: prune-bound reuse under seeded
## mutation streams.  Writes BENCH_dyn_serving.json and
## results/dyn_serving.txt.
bench-dyn:
	$(PYTHON) benchmarks/bench_dyn_serving.py

## Fabric SLO benchmark: replicated serving under seeded replica kills.
## Writes BENCH_fabric.json and results/fabric_slo.txt.
bench-fabric:
	$(PYTHON) benchmarks/bench_fabric.py

## The performance-tuning walkthrough (includes the workspace act).
example-tuning:
	$(PYTHON) examples/performance_tuning.py
