#!/usr/bin/env python
"""Fabric SLO benchmark: replicated serving under seeded kills.

Four scenarios over the LJ tiny graph, all on the same simulated
timeline discipline (see :mod:`repro.fabric.fabric`):

* ``steady``            — 3 replicas, steady Poisson, no faults: the
  baseline the failure scenarios are judged against;
* ``mmpp_kill``         — the acceptance scenario: the medium MMPP
  workload with one seeded replica kill at the 3rd heartbeat.  The run
  aborts unless availability >= 0.99, every query served inside the
  kill->recovery window is ``complete`` or ``degraded``, and the
  replica recovers within the configured heartbeat budget;
* ``mmpp_kill_elastic`` — same kill with the scaling policy enabled, so
  the burst edge and the recovery race the scale decisions;
* ``mutate_kill``       — a seeded incident stream mutates the live
  graph while a replica dies, exercising batch-log replay during
  recovery (the kill record's ``missed_batches`` says how much).

Outputs (same convention as ``bench_serving.py``):

* ``BENCH_fabric.json``       — one row per scenario;
* ``results/fabric_slo.txt``  — the rendered SLO table.

Everything is simulated-clock and seed-derived: rerunning reproduces
both files byte-for-byte (CI runs the CLI twice and ``cmp``'s).

Environment knobs:

* ``REPRO_FABRIC_SEED``  — master seed (default: 0)
* ``REPRO_FABRIC_GRAPH`` — suite graph (default: LJ)
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.distributed.comm import FaultPlan
from repro.dyn.stream import IncidentStream
from repro.fabric.cli import MMPP_SPEC
from repro.fabric.elastic import ElasticPolicy
from repro.fabric.fabric import FabricConfig, ServingFabric, report_row, slo_text
from repro.graph.suite import suite_graph
from repro.load.arrivals import arrival_process
from repro.load.mixes import make_mix

REPO_ROOT = Path(__file__).resolve().parent.parent

SCALE = "tiny"
HORIZON = 1.0
MAX_QUERIES = 2000
KILL_SPEC = "fabric.heartbeat:rankfail:3@R1"

#: every sampled pair reachable — availability measures the fabric
MIX_SPEC = {"kind": "hotspot", "scc": True, "k": {"dist": "small_heavy", "k_max": 8}}


def run_scenario(
    name: str,
    graph,
    seed: int,
    *,
    workload: dict,
    inject: list[str] | None = None,
    elastic: bool = False,
    mutations: bool = False,
) -> dict:
    config = FabricConfig(
        replicas=3,
        max_replicas=5 if elastic else 3,
        min_replicas=2,
        elastic=ElasticPolicy(min_replicas=2) if elastic else None,
        seed=seed,
    )
    plan = FaultPlan.from_specs(inject, seed=seed) if inject else None
    mix = make_mix(graph, dict(MIX_SPEC))
    fabric = ServingFabric(graph, mix, config=config, fault_plan=plan)
    batches = (
        IncidentStream(seed=seed, rate=40.0).batches(fabric.authority, HORIZON)
        if mutations
        else None
    )
    report = fabric.run(
        arrival_process(dict(workload)),
        horizon=HORIZON,
        max_queries=MAX_QUERIES,
        mutations=batches,
    )
    row = report_row(name, report)
    row["inject"] = list(inject or [])
    row["elastic"] = elastic
    row["mutations"] = mutations
    return row


def check_row(row: dict) -> None:
    """The per-scenario invariants every fabric run must satisfy."""
    d = row["dispositions"]
    assert d["issued"] == sum(d[k] for k in
                              ("complete", "degraded", "partial",
                               "failed", "shed", "expired")), row["scenario"]
    for kill in row["kill_records"]:
        assert kill["recovered_at"] is not None, (
            f"{row['scenario']}: replica {kill['replica']} never recovered"
        )
        assert kill["within_budget"], (
            f"{row['scenario']}: recovery blew the heartbeat budget "
            f"(ttr={kill['ttr']})"
        )
    # every query *served* during a recovery window got a real answer
    window = row["recovery_window"]
    served = {k: v for k, v in window.items() if v and k not in ("shed", "expired")}
    assert set(served) <= {"complete", "degraded"}, (
        f"{row['scenario']}: recovery-window served dispositions {served}"
    )


def main() -> None:
    seed = int(os.environ.get("REPRO_FABRIC_SEED", "0"))
    graph_name = os.environ.get("REPRO_FABRIC_GRAPH", "LJ")
    graph = suite_graph(graph_name, SCALE)

    steady = {"kind": "poisson", "rate": 300.0}
    scenarios = [
        ("steady", dict(workload=steady)),
        ("mmpp_kill", dict(workload=MMPP_SPEC, inject=[KILL_SPEC])),
        (
            "mmpp_kill_elastic",
            dict(workload=MMPP_SPEC, inject=[KILL_SPEC], elastic=True),
        ),
        (
            "mutate_kill",
            dict(workload=MMPP_SPEC, inject=[KILL_SPEC], mutations=True),
        ),
    ]

    t0 = time.perf_counter()
    rows = []
    for name, kwargs in scenarios:
        row = run_scenario(name, graph, seed, **kwargs)
        check_row(row)
        rows.append(row)
        print(
            f"{name:>20}: {row['queries']} queries, "
            f"availability={row['availability']:.4f}, kills={row['kills']}, "
            f"ttr_max={row['ttr_max']}"
        )
    wall = time.perf_counter() - t0

    # the acceptance criteria ride on the medium-MMPP kill scenario
    accept = next(r for r in rows if r["scenario"] == "mmpp_kill")
    assert accept["availability"] >= 0.99, (
        f"availability {accept['availability']} < 0.99 under kill"
    )
    assert accept["kills"] == 1 and accept["recovery_within_budget"]
    baseline = next(r for r in rows if r["scenario"] == "steady")
    assert baseline["kills"] == 0 and not baseline["kill_records"]
    mutate = next(r for r in rows if r["scenario"] == "mutate_kill")
    assert mutate["mutation_batches"] > 0, "mutation scenario applied no batches"

    payload = {
        "benchmark": "fabric",
        "graph": graph_name,
        "scale": SCALE,
        "seed": seed,
        "horizon": HORIZON,
        "max_queries": MAX_QUERIES,
        "mix": MIX_SPEC,
        "workloads": {"steady": steady, "mmpp": MMPP_SPEC},
        "kill": KILL_SPEC,
        "rows": rows,
    }
    json_path = REPO_ROOT / "BENCH_fabric.json"
    json_path.write_text(json.dumps(payload, indent=2) + "\n")
    text = slo_text(
        rows,
        title=(
            f"fabric SLO — graph={graph_name} scale={SCALE} seed={seed} "
            f"horizon={HORIZON}s replicas=3"
        ),
    )
    out_path = REPO_ROOT / "results" / "fabric_slo.txt"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(text + "\n")

    print(f"\n{text}")
    print(
        f"\n{len(rows)} scenarios in {wall:.1f}s wall "
        f"-> BENCH_fabric.json, results/fabric_slo.txt"
    )


if __name__ == "__main__":
    main()
