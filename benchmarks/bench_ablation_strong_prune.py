"""Ablation — the edge-level Lemma-4.2 extension (``strong_edge_prune``).

The paper prunes edges only by weight (> b).  This library also implements
the edge-level analogue of Lemma 4.2 — drop (u,v) whenever
``spSrc[u] + w + spTgt[v] > b`` — which is sound by the same argument and
strictly stronger.  The sweep quantifies how many extra edges it removes
and what that does to end-to-end time.
"""

import time

import numpy as np

from repro.core.peek import PeeK
from repro.core.pruning import k_upper_bound_prune


def run(runner, k: int):
    rows = []
    for name in runner.graph_names():
        g = runner.graph(name)
        extra_removed = []
        t_weak, t_strong = [], []
        for s, t in runner.pairs(name):
            weak = k_upper_bound_prune(g, s, t, k)
            strong = k_upper_bound_prune(g, s, t, k, strong_edge_prune=True)
            extra_removed.append(
                100.0
                * (int(weak.keep_edges.sum()) - int(strong.keep_edges.sum()))
                / max(g.num_edges, 1)
            )
            t0 = time.perf_counter()
            a = PeeK(g, s, t).run(k)
            t_weak.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            b = PeeK(g, s, t, strong_edge_prune=True).run(k)
            t_strong.append(time.perf_counter() - t0)
            assert np.allclose(a.distances, b.distances), (
                "strong edge pruning must preserve the K shortest paths"
            )
        rows.append(
            (
                name,
                float(np.mean(extra_removed)),
                float(np.mean(t_weak)),
                float(np.mean(t_strong)),
            )
        )
    return rows


def test_ablation_strong_edge_prune(benchmark, runner, emit):
    from repro.bench.experiments import ExperimentReport

    rows = benchmark.pedantic(lambda: run(runner, 8), rounds=1, iterations=1)
    emit(
        ExperimentReport(
            experiment="ablation_strong_prune",
            title="Ablation — edge-level Lemma 4.2 pruning (K=8)",
            header=["graph", "extra E pruned %", "weak (s)", "strong (s)"],
            rows=[list(r) for r in rows],
            digits=4,
        )
    )
    # soundness was asserted per pair inside run(); the extension must
    # never prune a negative number of extra edges
    assert all(extra >= 0 for _, extra, _, _ in rows)
