"""Novelty iii — K-upper-bound pruning as a preprocessing stage for every
existing baseline ("PeeK can integrate with existing KSP algorithms to
boost their performance", §1.3).

Measures each baseline plain vs pruned+compacted on the Twitter analogue
and reports the speedup each algorithm gains from the preprocessing.
"""

import time

import numpy as np

from repro.core.integrate import PrunedKSP
from repro.ksp import make_algorithm

INNERS = ("Yen", "NC", "OptYen", "SB", "SB*")


def run(runner, graph_name: str, k: int):
    g = runner.graph(graph_name)
    pairs = runner.pairs(graph_name)
    rows = []
    for inner in INNERS:
        plain_s, boosted_s = [], []
        for s, t in pairs:
            t0 = time.perf_counter()
            ref = make_algorithm(inner, g, s, t).run(k)
            plain_s.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            got = PrunedKSP(g, s, t, inner=inner).run(k)
            boosted_s.append(time.perf_counter() - t0)
            assert np.allclose(got.distances, ref.distances), inner
        rows.append(
            (inner, float(np.mean(plain_s)), float(np.mean(boosted_s)))
        )
    return rows


def test_integration_boost(benchmark, runner, emit):
    from repro.bench.experiments import ExperimentReport

    rows = benchmark.pedantic(
        lambda: run(runner, "GT", 32), rounds=1, iterations=1
    )
    boosts = []
    table = []
    for inner, plain, boosted in rows:
        boost = plain / max(boosted, 1e-9)
        boosts.append(boost)
        table.append([inner, plain, boosted, boost])
    emit(
        ExperimentReport(
            experiment="integration_boost",
            title="Novelty iii — pruning as preprocessing, GT, K=32",
            header=["algorithm", "plain (s)", "pruned (s)", "boost x"],
            rows=table,
            digits=4,
        )
    )
    # the majority of baselines must benefit measurably
    assert sum(1 for b in boosts if b > 1.3) >= 3
