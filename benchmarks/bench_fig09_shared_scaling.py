"""Figure 9 — shared-memory scalability of PeeK, 1→32 threads, K = 8.

Paper's result: a stable, monotone speedup reaching ~4× on average at 32
threads (4.8× on GT).  The curves here replay each graph's real measured
work decomposition through the calibrated machine model (DESIGN.md §1).

``test_fig09_real_mp_rows`` complements the simulation with *measured*
wall-clock of the real shared-memory mp backend
(:mod:`repro.parallel.mp_backend`) at 1 and 2 workers on the SSSP
substrate.  No scaling shape is asserted — real speedup needs real cores,
and the host's cpu count is recorded in the report so the numbers are
interpretable either way.
"""

import os
import time

from repro.bench import experiments

THREADS = (1, 2, 4, 8, 16, 32)
MP_WORKERS = (1, 2)


def test_fig09_shared_scaling(benchmark, runner, emit):
    report = benchmark.pedantic(
        lambda: experiments.fig09_shared_scaling(
            runner, k=8, threads=THREADS
        ),
        rounds=1,
        iterations=1,
    )
    emit(report)
    avg = report.rows[-1]
    assert avg[0] == "AVG"
    speedups = avg[1:]
    assert speedups[0] == 1.0
    # monotone non-decreasing within tolerance, like the paper's curves
    for a, b in zip(speedups, speedups[1:]):
        assert b >= a * 0.97
    # lands in the paper's regime (~4x at 32 threads), not embarrassingly
    # linear and not flat
    assert 2.0 < speedups[-1] < 10.0


def test_fig09_real_mp_rows(runner, emit):
    """Measured mp-backend SSSP wall-clock at 1 and 2 workers (real cores)."""
    import numpy as np

    from repro.bench.experiments import ExperimentReport
    from repro.sssp.delta_stepping import delta_stepping

    rows = []
    for name in runner.graph_names():
        g = runner.graph(name)
        s, _ = runner.pairs(name)[0]
        ref = delta_stepping(g, s, backend="vectorized")
        row = [name]
        for workers in MP_WORKERS:
            t0 = time.perf_counter()
            res = delta_stepping(g, s, backend="mp", num_workers=workers)
            row.append(time.perf_counter() - t0)
            # scaling numbers are only meaningful if the answer is exact
            assert np.array_equal(ref.dist, res.dist, equal_nan=True)
            assert np.array_equal(ref.parent, res.parent)
        rows.append(row)
    emit(
        ExperimentReport(
            experiment="fig09_real_mp",
            title=(
                "Figure 9 companion — measured mp-backend SSSP seconds "
                f"(host_cpus={os.cpu_count()}; scale={runner.scale})"
            ),
            header=["graph"] + [f"mp-{w} (s)" for w in MP_WORKERS],
            rows=rows,
            digits=4,
        )
    )
    assert rows  # every suite graph produced a measured row
