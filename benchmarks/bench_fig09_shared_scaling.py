"""Figure 9 — shared-memory scalability of PeeK, 1→32 threads, K = 8.

Paper's result: a stable, monotone speedup reaching ~4× on average at 32
threads (4.8× on GT).  The curves here replay each graph's real measured
work decomposition through the calibrated machine model (DESIGN.md §1).
"""

from repro.bench import experiments

THREADS = (1, 2, 4, 8, 16, 32)


def test_fig09_shared_scaling(benchmark, runner, emit):
    report = benchmark.pedantic(
        lambda: experiments.fig09_shared_scaling(
            runner, k=8, threads=THREADS
        ),
        rounds=1,
        iterations=1,
    )
    emit(report)
    avg = report.rows[-1]
    assert avg[0] == "AVG"
    speedups = avg[1:]
    assert speedups[0] == 1.0
    # monotone non-decreasing within tolerance, like the paper's curves
    for a, b in zip(speedups, speedups[1:]):
        assert b >= a * 0.97
    # lands in the paper's regime (~4x at 32 threads), not embarrassingly
    # linear and not flat
    assert 2.0 < speedups[-1] < 10.0
