#!/usr/bin/env python
"""Live-graph serving benchmark: prune-bound reuse under mutation streams.

Sweeps 2 incident profiles x 2 graph families x 3 repetitions — 12
cells, each driving a fresh :class:`~repro.serve.QueryServer` over a
:class:`~repro.dyn.live.LiveGraph` through the discrete-event load
harness with a seeded :class:`~repro.dyn.stream.IncidentStream`:

* **increase-only** — closures and congestion only (``p_clear=0``,
  ``p_reopen=0``): every batch can satisfy the Yamane–Kitajima-style
  reuse certificate, so the prune-bound reuse rate should be high;
* **full-mix** — clears (weight decreases) and reopenings (inserts)
  included: those batches defeat the certificate and force cold
  re-solves, so reuse drops but must not vanish.

Each row reports the obs counters the acceptance criteria name: the
prune-bound reuse rate (``prune_reused / (prune_reused + prune_cold)``)
and the cache entries retained/invalidated across version rebinds.
The run aborts unless the increase-only profile demonstrates reuse.

Outputs (same convention as ``bench_serving.py``):

* ``BENCH_dyn_serving.json`` — descriptor + one flat row per cell;
* ``results/dyn_serving.txt`` — the rendered table.

Everything is simulated-clock and seeded: rerunning reproduces both
files byte-for-byte.

Environment knobs:

* ``REPRO_DYN_SEED``    — master seed (default: 0)
* ``REPRO_DYN_HORIZON`` — simulated seconds per cell (default: 4.0)
"""

from __future__ import annotations

import json
import os
import time
import zlib
from pathlib import Path

from repro.dyn.cli import run_smoke

REPO_ROOT = Path(__file__).resolve().parent.parent

PROFILES = {
    "increase-only": {"p_clear": 0.0, "p_reopen": 0.0},
    "full-mix": {},
}
GRAPHS = ("LJ", "WL")
REPS = 3


def cell_seed(master: int, profile: str, graph: str, rep: int) -> int:
    key = f"dyn:{master}:{profile}:{graph}:{rep}"
    return zlib.crc32(key.encode("utf-8"))


def main() -> None:
    master = int(os.environ.get("REPRO_DYN_SEED", "0"))
    horizon = float(os.environ.get("REPRO_DYN_HORIZON", "4.0"))

    t0 = time.perf_counter()
    rows = []
    for profile, stream_kwargs in PROFILES.items():
        for graph in GRAPHS:
            for rep in range(REPS):
                seed = cell_seed(master, profile, graph, rep)
                payload = run_smoke(
                    graph_name=graph,
                    scale="tiny",
                    seed=seed,
                    horizon=horizon,
                    stream_kwargs=stream_kwargs,
                )
                m = payload["metrics"]
                info = payload["cache_info"]
                row = {
                    "profile": profile,
                    "graph": graph,
                    "rep": rep,
                    "seed": seed,
                    "queries": m["queries"],
                    "served": m["served"],
                    "complete_rate": m["complete_rate"],
                    "failed_rate": m["failed_rate"],
                    "mutation_batches": m["mutation_batches"],
                    "final_version": payload["final_version"],
                    "prune_reused": info["prune_reused"],
                    "prune_cold": info["prune_cold"],
                    "prune_reuse_rate": payload["prune_reuse_rate"],
                    "cache_retained": info["retained"],
                    "cache_invalidated": info["invalidated"],
                    "sssp_cache_hits": info["hits"],
                    "sssp_cache_misses": info["misses"],
                }
                rows.append(row)
                print(
                    f"{profile:>14} {graph} rep{rep}: "
                    f"reuse {row['prune_reuse_rate']:.3f} "
                    f"({row['prune_reused']}/{row['prune_reused'] + row['prune_cold']}), "
                    f"retained {row['cache_retained']}, "
                    f"v{row['final_version']}"
                )
    wall = time.perf_counter() - t0

    inc = [r for r in rows if r["profile"] == "increase-only"]
    assert any(r["prune_reuse_rate"] > 0 for r in inc), (
        "increase-only profile demonstrated no prune-bound reuse — "
        "the certificate path is dead; recalibrate or investigate"
    )
    assert all(r["mutation_batches"] > 0 for r in rows), (
        "a cell applied no mutation batches — the stream never fired"
    )

    payload = {
        "benchmark": "dyn_serving",
        "seed": master,
        "horizon": horizon,
        "profiles": sorted(PROFILES),
        "graphs": list(GRAPHS),
        "reps": REPS,
        "rows": rows,
    }
    json_path = REPO_ROOT / "BENCH_dyn_serving.json"
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    lines = [
        "Live-graph serving: prune-bound reuse under mutation streams",
        f"(seed {master}, horizon {horizon}s per cell, scale tiny)",
        "",
        f"{'profile':>14} {'graph':>6} {'rep':>3} {'reuse':>7} "
        f"{'reused':>7} {'cold':>5} {'retained':>9} {'invalid':>8} {'ver':>4}",
    ]
    for r in rows:
        lines.append(
            f"{r['profile']:>14} {r['graph']:>6} {r['rep']:>3} "
            f"{r['prune_reuse_rate']:>7.3f} {r['prune_reused']:>7} "
            f"{r['prune_cold']:>5} {r['cache_retained']:>9} "
            f"{r['cache_invalidated']:>8} {r['final_version']:>4}"
        )
    summary_path = REPO_ROOT / "results" / "dyn_serving.txt"
    summary_path.parent.mkdir(exist_ok=True)
    summary_path.write_text("\n".join(lines) + "\n")

    print("\n" + "\n".join(lines))
    print(
        f"\n{len(rows)} cells in {wall:.1f}s wall "
        f"-> BENCH_dyn_serving.json, results/dyn_serving.txt"
    )


if __name__ == "__main__":
    main()
