"""Figure 8 — technique benefits (ablation), K = 8 and 128, 32 threads.

Paper's result: K-upper-bound pruning alone gives 4.9× (K=8) / 16.8×
(K=128) over the no-pruning base; adaptive compaction adds a further 1.5× /
33×, for 6.4× / 50× combined.  Every variant here is a real serial run
whose measured decomposition is replayed on 32 simulated threads.
"""

from repro.bench import experiments


def test_fig08_ablation(benchmark, runner, emit):
    report = benchmark.pedantic(
        lambda: experiments.fig08_ablation(runner, ks=(8, 128)),
        rounds=1,
        iterations=1,
    )
    emit(report)
    avg = report.rows[-1]
    prune_k8, full_k8, prune_k128, full_k128 = avg[1], avg[2], avg[3], avg[4]
    # pruning is the dominant technique and must speed the base up
    assert prune_k8 > 1.2
    assert prune_k128 > 1.2
    # compaction must add on top of pruning (paper: 1.5x / 33x further)
    assert full_k8 >= prune_k8 * 0.9
    assert full_k128 >= prune_k128 * 0.9
