"""Figure 12 — adaptive graph compaction vs a Terrace-like dynamic graph,
end-to-end (update + SSSP) on the Twitter analogue.

Paper's result: at 0.001% kept edges PeeK's compaction beats Terrace by
23,129× end-to-end; the gap narrows to ~7× at 65.53% kept, and the SSSP
times themselves are comparable.  Both sides here are real Python
executions (the Terrace container physically point-deletes every edge).
"""

from repro.bench import experiments

FRACTIONS = (0.0005, 0.005, 0.05, 0.2, 0.655, 1.0)


def test_fig12_terrace(benchmark, runner, emit):
    report = benchmark.pedantic(
        lambda: experiments.fig12_terrace(
            runner, graph_name="GT", fractions=FRACTIONS
        ),
        rounds=1,
        iterations=1,
    )
    emit(report)
    # columns: frac%, strategy, peek_compact, peek_sssp, terr_update, terr_sssp
    smallest = report.rows[0]
    peek_total = smallest[2] + smallest[3]
    terrace_total = smallest[4] + smallest[5]
    # deleting ~everything: compaction must crush per-edge point updates
    assert terrace_total > 3.0 * peek_total, (
        f"Terrace {terrace_total:.4f}s vs PeeK {peek_total:.4f}s"
    )
    # the advantage must shrink as fewer edges are deleted (paper obs. iii)
    biggest = report.rows[-1]
    ratio_small = terrace_total / max(peek_total, 1e-9)
    ratio_big = (biggest[4] + biggest[5]) / max(biggest[2] + biggest[3], 1e-9)
    assert ratio_big < ratio_small
