"""Ablation — the adaptive-compaction coefficient α (paper §5.4).

The α rule decides when regeneration beats edge-swap.  The paper argues a
heavier downstream task justifies a larger α (suggesting 0.6 for KSP-heavy
workloads).  This sweep measures end-to-end PeeK time with α pinned at
several values plus the two pure strategies, confirming the adaptive
choice is never much worse than the best pure strategy.
"""

import time

import numpy as np

from repro.core.peek import PeeK

ALPHAS = (0.0, 0.05, 0.1, 0.3, 0.6, 1.0)


def run_sweep(runner, graph_name: str, k: int):
    g = runner.graph(graph_name)
    pairs = runner.pairs(graph_name)
    rows = []
    for alpha in ALPHAS:
        secs = []
        strategies = set()
        for s, t in pairs:
            t0 = time.perf_counter()
            res = PeeK(g, s, t, alpha=alpha).run(k)
            secs.append(time.perf_counter() - t0)
            strategies.add(res.compaction.strategy)
        rows.append((alpha, float(np.mean(secs)), "/".join(sorted(strategies))))
    return rows


def test_ablation_alpha(benchmark, runner, emit):
    from repro.bench.experiments import ExperimentReport

    rows = benchmark.pedantic(
        lambda: run_sweep(runner, "GT", 32), rounds=1, iterations=1
    )
    emit(
        ExperimentReport(
            experiment="ablation_alpha",
            title="Ablation — adaptive-compaction alpha on GT (K=32)",
            header=["alpha", "seconds", "strategy"],
            rows=[list(r) for r in rows],
            digits=4,
        )
    )
    times = {alpha: secs for alpha, secs, _ in rows}
    # pruning keeps the remnant tiny at K=32, so any alpha that enables
    # regeneration must not lose to alpha=0 (pure edge-swap) by much —
    # and usually wins
    assert min(times.values()) <= times[0.0] * 1.05
