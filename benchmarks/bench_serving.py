#!/usr/bin/env python
"""Serving-capacity benchmark: the medium run table on simulated time.

Sweeps 4 traffic patterns (steady Poisson, 7x-overload Poisson, bursty
MMPP, a closed-loop population) x 2 graph families (LJ, WL) x 2 server
configs (relaxed deadline vs tight deadline with tier-1 budget
splitting) x 3 repetitions — 48 cells, each driving a fresh
:class:`~repro.serve.QueryServer` through the discrete-event load
harness.  Two regimes must show up or the run aborts:

* **overload shedding** — the overload pattern exceeds station capacity
  (~max_in_flight / mean service time), so the baseline config sheds;
* **deadline degradation** — the tight config's budget split reserves
  headroom for the OptYen fallback, so tight deadlines degrade instead
  of failing wholesale.

Outputs (same convention as ``bench_hot_path.py``):

* ``BENCH_serving.json`` — the run-table payload, one row per cell;
* ``results/serving_capacity.txt`` — the rendered capacity table.

Everything is simulated-clock: the numbers are properties of the
configuration, not of this machine, and rerunning with the same seed
reproduces both files byte-for-byte.

Environment knobs:

* ``REPRO_LOAD_TABLE`` — tiny / medium (default: medium)
* ``REPRO_LOAD_SEED``  — table master seed (default: 0)
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.load.runner import TABLES, capacity_summary, run_table, write_outputs

REPO_ROOT = Path(__file__).resolve().parent.parent


def main() -> None:
    table_name = os.environ.get("REPRO_LOAD_TABLE", "medium")
    seed = int(os.environ.get("REPRO_LOAD_SEED", "0"))
    table = TABLES[table_name](seed=seed)

    t0 = time.perf_counter()
    payload = run_table(table, progress=print)
    wall = time.perf_counter() - t0

    # regime asserts read the unified disposition summary (the same
    # counts the fabric report uses), not the legacy per-rate fields
    rows = payload["rows"]
    shed_cells = [r for r in rows if r["dispositions"]["shed"] > 0]
    degraded_cells = [r for r in rows if r["dispositions"]["degraded"] > 0]
    assert shed_cells, "no cell demonstrated overload shedding — recalibrate"
    assert degraded_cells, (
        "no cell demonstrated deadline degradation — recalibrate"
    )
    for r in rows:
        d = r["dispositions"]
        assert d["issued"] >= d["answered"], "disposition summary inconsistent"

    write_outputs(
        payload,
        json_path=REPO_ROOT / "BENCH_serving.json",
        summary_path=REPO_ROOT / "results" / "serving_capacity.txt",
    )
    print(f"\n{capacity_summary(payload)}")
    print(
        f"\n{len(rows)} cells in {wall:.1f}s wall "
        f"({len(shed_cells)} shedding, {len(degraded_cells)} degrading) "
        f"-> BENCH_serving.json, results/serving_capacity.txt"
    )


if __name__ == "__main__":
    main()
