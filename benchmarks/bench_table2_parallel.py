"""Table 2 — parallel runtime (32 threads) of Yen, NC, OptYen and PeeK at
K = 8 and K = 128.

Paper's result: PeeK wins every cell, 5.1× over the best baseline on
average at K = 8 and 28.8× at K = 128 (and NC cannot finish GW/GT at
K = 128 within an hour — the hyphens).  Each method's real serial run
calibrates the simulator, which then replays its measured decomposition on
32 threads (DESIGN.md §1).
"""

import numpy as np

from repro.bench import experiments


def test_table2_parallel(benchmark, runner, emit):
    report = benchmark.pedantic(
        lambda: experiments.table2_parallel(
            runner, ks=(8, 128), methods=("Yen", "NC", "OptYen", "PeeK")
        ),
        rounds=1,
        iterations=1,
    )
    emit(report)

    def row(k, method):
        return next(
            r[2:] for r in report.rows if r[0] == f"K={k}" and r[1] == method
        )

    for k in (8, 128):
        peek = row(k, "PeeK")
        optyen = row(k, "OptYen")
        wins = 0
        comparable = 0
        for p, o in zip(peek, optyen):
            if p is not None and o is not None:
                comparable += 1
                if p <= o:
                    wins += 1
        assert comparable > 0
        # PeeK must win on the clear majority of graphs (paper: all)
        assert wins >= comparable * 0.75, f"K={k}: PeeK won {wins}/{comparable}"
    # the headline ratio is recorded in the notes
    assert "PeeK vs best baseline" in report.notes
