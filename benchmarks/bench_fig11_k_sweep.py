"""Figure 11 — runtime vs K (2 → 128) for Yen, NC, OptYen and PeeK.

Paper's headline: growing K 64× grows PeeK's runtime only 1.1×, while
OptYen grows 10.3×, Yen 18× and NC 60.7×.  Real serial wall-clock, same
s–t pairs for every method; '-' marks deadline overruns (the paper's
1-hour hyphens, scaled down).
"""

from repro.bench import experiments

KS = (2, 4, 8, 16, 32, 64, 128)


def test_fig11_k_sweep(benchmark, runner, emit):
    report = benchmark.pedantic(
        lambda: experiments.fig11_k_sweep(
            runner, ks=KS, methods=("Yen", "NC", "OptYen", "PeeK")
        ),
        rounds=1,
        iterations=1,
    )
    emit(report)

    def growth(method):
        ratios = []
        for row in report.rows:
            if row[1] == method and row[2] and row[-1]:
                ratios.append(row[-1] / row[2])
        return sum(ratios) / len(ratios) if ratios else None

    peek_growth = growth("PeeK")
    optyen_growth = growth("OptYen")
    yen_growth = growth("Yen")
    assert peek_growth is not None and optyen_growth is not None
    # the paper's K-insensitivity claim: PeeK grows far slower than the
    # baselines.  (At reproduction scale K=128 covers a much larger graph
    # fraction than on billion-edge graphs, so PeeK's absolute growth is
    # bigger than the paper's 1.1x — the *relative* ordering is the
    # reproduced shape; see EXPERIMENTS.md.)
    assert peek_growth < optyen_growth
    if yen_growth is not None:
        assert peek_growth < yen_growth

    def growth_to_16(method):
        ratios = []
        for row in report.rows:
            if row[1] == method and row[2] and row[5]:
                ratios.append(row[5] / row[2])
        return sum(ratios) / len(ratios) if ratios else None

    # in the regime where K's coverage stays tiny (K<=16 here), PeeK is
    # nearly flat — the direct analogue of the paper's 1.1x
    flat = growth_to_16("PeeK")
    assert flat is not None and flat < 4.0, f"PeeK K=2->16 grew {flat:.1f}x"
