#!/usr/bin/env python
"""Substrate ablation — SSSP kernel and execution backend (paper §6.2).

The paper builds everything on Δ-stepping "instead of sequentially
processing one-vertex-at-a-time in Dijkstra's algorithm".  This bench has
two modes:

* **pytest** (``test_sssp_kernel_choice``, via ``make bench-tests``):
  compares the three kernels on the suite's largest graph — real serial
  seconds, traversal rate (MTEPS), and the parallel-phase structure that
  justifies Δ-stepping.
* **standalone** (``PYTHONPATH=src python benchmarks/bench_sssp_kernels.py``):
  sweeps the Δ-stepping *execution backends* (scalar reference loop,
  vectorized frontier kernel, shared-memory multiprocessing at 1 and 2
  workers) across the medium suite, asserting bitwise-identical
  ``dist``/``parent`` per row before recording anything, and writes
  ``BENCH_sssp_kernels.json`` (the ``BENCH_hot_path.json`` row schema) plus
  ``results/sssp_kernels.txt``.

``speedup`` on each row is wall-clock relative to the **scalar** backend on
the same (graph, source) — the honest baseline, since the scalar engine
runs the identical bucket/batch sequence.  ``host_cpus`` is recorded
because mp speedups are physically bounded by real cores: on a single-core
host the mp rows measure orchestration overhead, not parallelism.

Environment knobs / CLI:

* ``REPRO_SCALE``        — tiny / small / medium (default: medium)
* ``REPRO_SSSP_GRAPHS``  — comma-separated suite names (default: LJ,GT,WL)
* ``REPRO_SSSP_SOURCES`` — sources per graph (default: 1)
* ``--backend {scalar,vectorized,mp}`` — restrict the swept backends
  (repeatable; default: all, plus a Dijkstra context row)
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.sssp import bellman_ford, delta_stepping, dijkstra

REPO_ROOT = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# pytest mode — kernel-choice ablation (unchanged contract)
# ---------------------------------------------------------------------------
def run(runner, graph_name: str):
    g = runner.graph(graph_name)
    s, _ = runner.pairs(graph_name)[0]
    rows = []
    ref = None
    for name, kernel in (
        ("Dijkstra", dijkstra),
        ("Delta-stepping", delta_stepping),
        ("Bellman-Ford", bellman_ford),
    ):
        t0 = time.perf_counter()
        res = kernel(g, s)
        secs = time.perf_counter() - t0
        if ref is None:
            ref = res.dist
        else:
            assert np.allclose(
                np.nan_to_num(res.dist, posinf=-1),
                np.nan_to_num(ref, posinf=-1),
            ), name
        mteps = res.stats.edges_relaxed / max(secs, 1e-9) / 1e6
        rows.append(
            [
                name,
                secs,
                res.stats.edges_relaxed,
                res.stats.phases,
                mteps,
            ]
        )
    return rows


def test_sssp_kernel_choice(benchmark, runner, emit):
    from repro.bench.experiments import ExperimentReport

    rows = benchmark.pedantic(
        lambda: run(runner, "GT"), rounds=1, iterations=1
    )
    emit(
        ExperimentReport(
            experiment="sssp_kernels",
            title="Substrate ablation — SSSP kernel choice on GT (§6.2)",
            header=["kernel", "seconds", "relaxations", "phases", "MTEPS"],
            rows=rows,
            digits=4,
        )
    )
    by_name = {r[0]: r for r in rows}
    # the parallel-structure argument: Δ-stepping needs orders of magnitude
    # fewer synchronisation phases than Dijkstra's one-vertex-at-a-time
    assert by_name["Delta-stepping"][3] < by_name["Dijkstra"][3] / 10
    # ...while relaxing far fewer edges than Bellman-Ford's full sweeps
    assert (
        by_name["Delta-stepping"][2] < by_name["Bellman-Ford"][2]
    )


# ---------------------------------------------------------------------------
# standalone mode — Δ-stepping backend sweep
# ---------------------------------------------------------------------------
def _time_variant(variant, graph, source):
    """Run one (variant, graph, source) cell; returns (result, wall)."""
    t0 = time.perf_counter()
    if variant == "dijkstra":
        res = dijkstra(graph, source)
    elif variant == "scalar":
        res = delta_stepping(graph, source, backend="scalar")
    elif variant == "vectorized":
        res = delta_stepping(graph, source, backend="vectorized")
    elif variant.startswith("mp-"):
        workers = int(variant.split("-", 1)[1])
        res = delta_stepping(
            graph, source, backend="mp", num_workers=workers
        )
    else:  # pragma: no cover - guarded by argparse choices
        raise ValueError(variant)
    return res, time.perf_counter() - t0


def _variants_for(backends):
    out = ["dijkstra"]  # context row: the serial-substrate alternative
    if "scalar" in backends:
        out.append("scalar")
    if "vectorized" in backends:
        out.append("vectorized")
    if "mp" in backends:
        out += ["mp-1", "mp-2"]
    return out


def run_backend_suite(scale, graph_names, sources_per_graph, backends):
    from repro.graph.suite import random_st_pairs, suite_graph

    rows = []
    variants = _variants_for(backends)
    for name in graph_names:
        graph = suite_graph(name, scale)
        pairs = random_st_pairs(graph, sources_per_graph, seed=17)
        for source, _ in pairs:
            results = {}
            for variant in variants:
                results[variant], wall = _time_variant(
                    variant, graph, int(source)
                )
                res = results[variant]
                common = {
                    "algo": "SSSP",
                    "graph": name,
                    "scale": scale,
                    "n": graph.num_vertices,
                    "m": graph.num_edges,
                    "source": int(source),
                    "k": 0,  # schema compatibility; SSSP has no K
                    "variant": variant,
                    "wall_seconds": round(wall, 6),
                    "edges_relaxed": int(res.stats.edges_relaxed),
                }
                rows.append(common)
                print(
                    f"{name:>4} s={int(source):>7} {variant:>10}: "
                    f"{wall:8.3f}s  {res.stats.edges_relaxed:>10} relaxed"
                )
            # bitwise acceptance gate: every Δ-stepping backend must agree
            # exactly (dist AND parent) before any number is recorded
            if "scalar" in results:
                ref = results["scalar"]
                for variant, res in results.items():
                    if variant in ("dijkstra", "scalar"):
                        continue
                    assert np.array_equal(
                        ref.dist, res.dist, equal_nan=True
                    ), f"{name}/{variant}: dist mismatch vs scalar"
                    assert np.array_equal(ref.parent, res.parent), (
                        f"{name}/{variant}: parent mismatch vs scalar"
                    )
                base_wall = next(
                    r["wall_seconds"]
                    for r in rows
                    if r["graph"] == name
                    and r["source"] == int(source)
                    and r["variant"] == "scalar"
                )
                for r in rows:
                    if (
                        r["graph"] == name
                        and r["source"] == int(source)
                        and r["variant"] not in ("dijkstra", "scalar")
                        and r["wall_seconds"]
                    ):
                        r["speedup"] = round(
                            base_wall / r["wall_seconds"], 3
                        )
    return rows


def render(rows, scale):
    lines = [
        "Δ-stepping execution backends: scalar vs vectorized vs mp",
        f"scale={scale}  host_cpus={os.cpu_count()}  "
        "(bitwise-identical dist/parent asserted per row; "
        "speedup is vs the scalar backend)",
        "",
        f"{'graph':>5} {'source':>8} {'variant':>10} {'wall (s)':>10} "
        f"{'edges relaxed':>14} {'speedup':>8}",
    ]
    for r in rows:
        speedup = f"{r['speedup']:.2f}x" if r.get("speedup") else ""
        lines.append(
            f"{r['graph']:>5} {r['source']:>8} {r['variant']:>10} "
            f"{r['wall_seconds']:>10.3f} {r['edges_relaxed']:>14} {speedup:>8}"
        )
    by_variant: dict[str, list[float]] = {}
    for r in rows:
        if r.get("speedup"):
            by_variant.setdefault(r["variant"], []).append(r["speedup"])
    lines.append("")
    for variant, sp in sorted(by_variant.items()):
        mean = sum(sp) / len(sp)
        lines.append(
            f"{variant}: mean speedup {mean:.2f}x over {len(sp)} runs"
        )
    if os.cpu_count() == 1:
        lines.append(
            "note: single-core host — mp rows measure orchestration "
            "overhead, not parallelism; real-core scaling needs >= 2 cpus"
        )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        action="append",
        choices=["scalar", "vectorized", "mp"],
        help="restrict swept backends (repeatable; default: all)",
    )
    ns = parser.parse_args()
    backends = ns.backend or ["scalar", "vectorized", "mp"]

    scale = os.environ.get("REPRO_SCALE", "medium")
    graph_names = [
        g.strip()
        for g in os.environ.get("REPRO_SSSP_GRAPHS", "LJ,GT,WL").split(",")
        if g.strip()
    ]
    sources = int(os.environ.get("REPRO_SSSP_SOURCES", "1"))

    rows = run_backend_suite(scale, graph_names, sources, backends)
    payload = {
        "benchmark": "sssp_kernels",
        "scale": scale,
        "k": 0,
        "pairs_per_graph": sources,
        "host_cpus": os.cpu_count(),
        "rows": rows,
    }
    json_path = REPO_ROOT / "BENCH_sssp_kernels.json"
    json_path.write_text(json.dumps(payload, indent=2) + "\n")

    report = render(rows, scale)
    txt_path = REPO_ROOT / "results" / "sssp_kernels.txt"
    txt_path.parent.mkdir(exist_ok=True)
    txt_path.write_text(report + "\n")
    print(f"\n{report}\n\n[saved to {json_path} and {txt_path}]")


if __name__ == "__main__":
    main()
