"""Substrate ablation — the SSSP kernel choice (paper §6.2).

The paper builds everything on Δ-stepping "instead of sequentially
processing one-vertex-at-a-time in Dijkstra's algorithm".  This bench
compares the three kernels on the suite's largest graph: real serial
seconds, traversal rate (MTEPS), and the parallel-phase structure that
justifies Δ-stepping — Dijkstra has n sequential phases, Δ-stepping a few
dozen bucket steps, Bellman–Ford the fewest phases but the most wasted
relaxations.
"""

import time

import numpy as np

from repro.sssp import bellman_ford, delta_stepping, dijkstra


def run(runner, graph_name: str):
    g = runner.graph(graph_name)
    s, _ = runner.pairs(graph_name)[0]
    rows = []
    ref = None
    for name, kernel in (
        ("Dijkstra", dijkstra),
        ("Delta-stepping", delta_stepping),
        ("Bellman-Ford", bellman_ford),
    ):
        t0 = time.perf_counter()
        res = kernel(g, s)
        secs = time.perf_counter() - t0
        if ref is None:
            ref = res.dist
        else:
            assert np.allclose(
                np.nan_to_num(res.dist, posinf=-1),
                np.nan_to_num(ref, posinf=-1),
            ), name
        mteps = res.stats.edges_relaxed / max(secs, 1e-9) / 1e6
        rows.append(
            [
                name,
                secs,
                res.stats.edges_relaxed,
                res.stats.phases,
                mteps,
            ]
        )
    return rows


def test_sssp_kernel_choice(benchmark, runner, emit):
    from repro.bench.experiments import ExperimentReport

    rows = benchmark.pedantic(
        lambda: run(runner, "GT"), rounds=1, iterations=1
    )
    emit(
        ExperimentReport(
            experiment="sssp_kernels",
            title="Substrate ablation — SSSP kernel choice on GT (§6.2)",
            header=["kernel", "seconds", "relaxations", "phases", "MTEPS"],
            rows=rows,
            digits=4,
        )
    )
    by_name = {r[0]: r for r in rows}
    # the parallel-structure argument: Δ-stepping needs orders of magnitude
    # fewer synchronisation phases than Dijkstra's one-vertex-at-a-time
    assert by_name["Delta-stepping"][3] < by_name["Dijkstra"][3] / 10
    # ...while relaxing far fewer edges than Bellman-Ford's full sweeps
    assert (
        by_name["Delta-stepping"][2] < by_name["Bellman-Ford"][2]
    )
