"""Figure 10 — distributed scalability of PeeK, 1→64 nodes ×16 cores, K=8.

Paper's result: a stable speedup reaching ~30× at 64 nodes (1,024 cores)
and 3.4 GTEPS on average.  Every point here runs the real distributed
algorithms (Δ-stepping with owner-routed requests, sample sort) through
the BSP-accounted SimComm with constants rescaled to the benchmark graph
sizes (DESIGN.md §1).
"""

from repro.bench import experiments

NODES = (1, 2, 4, 8, 16, 32, 64)


def test_fig10_distributed_scaling(benchmark, runner, emit):
    report = benchmark.pedantic(
        lambda: experiments.fig10_distributed_scaling(
            runner, k=8, nodes=NODES
        ),
        rounds=1,
        iterations=1,
    )
    emit(report)
    avg = report.rows[-1]
    speedups = avg[1:]
    assert speedups[0] == 1.0
    # speedup keeps growing with node count (paper: up to 30x at 64 nodes)
    assert speedups[-1] > speedups[1]
    assert speedups[-1] > 4.0
    # but communication keeps it clearly sublinear
    assert speedups[-1] < 64.0
    assert "GTEPS" in report.notes
