"""Extension bench — the sidetrack family's time/space trade-off (paper §8).

The paper discusses SB (fast, memory-hungry), SB* (faster via resumable
SSSPs, even more state), and the parsimonious PSB family (bounded memory).
This bench measures all five on one query and reports runtime together
with ``peak_tree_bytes`` — the axis the whole family exists to trade on.
"""

import time

import numpy as np

from repro.ksp import make_algorithm

FAMILY = ("SB", "SB*", "PSB", "PSB-v2", "PSB-v3")


def run(runner, graph_name: str, k: int):
    g = runner.graph(graph_name)
    s, t = runner.pairs(graph_name)[0]
    rows = []
    base = None
    for method in FAMILY:
        algo = make_algorithm(method, g, s, t)
        t0 = time.perf_counter()
        res = algo.run(k)
        secs = time.perf_counter() - t0
        if base is None:
            base = res.distances
        else:
            assert np.allclose(res.distances, base), method
        rows.append((method, secs, algo.stats.peak_tree_bytes))
    return rows


def test_psb_memory_tradeoff(benchmark, runner, emit):
    from repro.bench.experiments import ExperimentReport

    rows = benchmark.pedantic(
        lambda: run(runner, "LJ", 32), rounds=1, iterations=1
    )
    peaks = {}
    table = []
    for method, secs, peak in rows:
        peaks[method] = peak
        table.append([method, secs, peak / 1e6])
    emit(
        ExperimentReport(
            experiment="psb_memory",
            title="Sidetrack family time/space trade-off — LJ, K=32 (§8)",
            header=["method", "seconds", "peak tree MB"],
            rows=table,
            digits=4,
        )
    )
    # the §8 ordering: parsimonious variants never exceed SB's memory
    assert peaks["PSB"] <= peaks["SB"]
    assert peaks["PSB-v2"] <= peaks["SB"]
    assert peaks["PSB-v3"] <= peaks["SB"]
