"""Shared configuration for the table/figure regeneration benchmarks.

Each ``bench_*`` file regenerates one of the paper's tables or figures via
:mod:`repro.bench.experiments`, wrapped in pytest-benchmark so runtimes are
recorded.  The reports are printed and saved under ``results/``.

Environment knobs (see also repro.bench.harness):

* ``REPRO_SCALE``    — tiny / small / medium    (default: small)
* ``REPRO_PAIRS``    — s-t pairs per graph      (default here: 1)
* ``REPRO_DEADLINE`` — per-run deadline seconds (default here: 30)

The defaults keep a full ``pytest benchmarks/ --benchmark-only`` run in the
tens of minutes on one laptop core; raise them to approach the paper's
setup (32 pairs, 1-hour deadline).
"""

import os

import pytest

from repro.bench.harness import ExperimentRunner


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner(
        scale=os.environ.get("REPRO_SCALE", "small"),
        pairs_per_graph=int(os.environ.get("REPRO_PAIRS", "1")),
        deadline_seconds=float(os.environ.get("REPRO_DEADLINE", "30")),
    )


@pytest.fixture(scope="session")
def emit():
    """A helper that prints a regenerated report and saves it to results/."""

    def _emit(report) -> None:
        path = report.save("results")
        print(f"\n{report.render()}\n[saved to {path}]")

    return _emit
